//! Named benchmark catalogue with fixed seeds.
//!
//! Names mirror the paper's datasets:
//!
//! * partially inductive: `wn.v1..v4`, `fb.v1..v4`, `nell.v1..v4`
//!   (synthetic stand-ins for the GraIL splits of WN18RR, FB15k-237 and
//!   NELL-995 — see DESIGN.md for the substitution argument);
//! * fully inductive: `nell.v1.v3`, `nell.v2.v3`, `nell.v4.v3`, `fb.v1.v4`;
//! * MaKEr-style: `fb-ext`, `nell-ext`.
//!
//! Family profiles differ the way the real datasets differ: the `wn` family
//! is sparse with few relations (many empty enclosing subgraphs — where the
//! NE module matters), `fb` is dense with a large vocabulary and noise
//! (where attention matters), `nell` sits in between and carries the
//! ontology experiments.

use crate::benchmark::{partial_benchmark, Benchmark};
use crate::ext::ext_benchmark;
use crate::fully::fully_inductive_benchmark;
use crate::rules::GroupKind;
use crate::world::{GraphGenConfig, World, WorldConfig};

/// Generation scale: `Quick` for minutes-long runs, `Full` for paper-scale
/// graphs (~4x the entities and base facts).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// Scaled-down graphs for fast experimentation and CI.
    Quick,
    /// Paper-scale graphs.
    Full,
}

impl Scale {
    fn factor(self) -> usize {
        match self {
            Scale::Quick => 1,
            Scale::Full => 4,
        }
    }
}

/// The three dataset families.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Family {
    /// WN18RR-like: sparse, few relations, hierarchy/symmetry heavy.
    Wn,
    /// FB15k-237-like: dense, many relations, composition heavy, noisy.
    Fb,
    /// NELL-995-like: medium density, carries the ontology experiments.
    Nell,
}

impl Family {
    /// The family's name tag as used in benchmark names.
    pub fn tag(self) -> &'static str {
        match self {
            Family::Wn => "wn",
            Family::Fb => "fb",
            Family::Nell => "nell",
        }
    }

    /// The family's world (deterministic).
    pub fn world(self) -> World {
        let cfg = match self {
            Family::Wn => WorldConfig {
                num_classes: 6,
                num_archetypes: 2,
                comp_groups: 1,
                long_groups: 1,
                inv_groups: 2,
                sym_groups: 2,
                sub_groups: 1,
                noise_relations: 0,
                seed: 0x574e,
            },
            Family::Fb => WorldConfig {
                num_classes: 12,
                num_archetypes: 4,
                comp_groups: 30,
                long_groups: 10,
                inv_groups: 10,
                sym_groups: 5,
                sub_groups: 10,
                noise_relations: 5,
                seed: 0xfb15,
            },
            Family::Nell => WorldConfig {
                num_classes: 10,
                num_archetypes: 3,
                comp_groups: 14,
                long_groups: 6,
                inv_groups: 8,
                sym_groups: 4,
                sub_groups: 6,
                noise_relations: 4,
                seed: 0x4e11,
            },
        };
        World::new(cfg)
    }

    /// The fraction of (interleaved) rule groups active in each version,
    /// tuned so relation counts follow the paper's Table Ia trend.
    fn version_fraction(self, version: usize) -> f64 {
        match (self, version) {
            (Family::Wn, 1) => 0.60,
            (Family::Wn, 2) => 0.75,
            (Family::Wn, 3) => 0.90,
            (Family::Wn, 4) => 0.60,
            (Family::Fb, 1) => 0.85,
            (Family::Fb, 2) => 0.92,
            (Family::Fb, 3) => 0.97,
            (Family::Fb, 4) => 1.00,
            (Family::Nell, 1) => 0.13,
            (Family::Nell, 2) => 0.75,
            (Family::Nell, 3) => 1.00,
            (Family::Nell, 4) => 0.65,
            _ => panic!("version must be 1..=4, got {version}"),
        }
    }

    /// Graph sizes `(tr_entities, tr_base, te_entities, te_base)` per
    /// version at scale 1.
    fn sizes(self, version: usize) -> (usize, usize, usize, usize) {
        // versions grow the way the paper's do (v3 largest)
        let vf = match version {
            1 => 1.0,
            2 => 1.5,
            3 => 2.0,
            4 => 1.3,
            _ => panic!("version must be 1..=4"),
        };
        let (te0, tb0, ee0, eb0) = match self {
            Family::Wn => (520, 420, 360, 300),
            Family::Fb => (240, 1900, 170, 1300),
            Family::Nell => (300, 1100, 220, 800),
        };
        let s = |x: usize| (x as f64 * vf) as usize;
        (s(te0), s(tb0), s(ee0), s(eb0))
    }

    /// Per-family generation knobs (sparsity and noise).
    fn gen_knobs(self) -> (f64, usize, f64) {
        // (rule_apply_prob, closure_passes, noise_frac)
        match self {
            Family::Wn => (0.75, 1, 0.03),
            Family::Fb => (0.70, 2, 0.08),
            Family::Nell => (0.80, 2, 0.05),
        }
    }
}

/// Round-robin the world's groups across their kinds, so a prefix of the
/// ordering contains every rule archetype.
fn interleaved_groups(world: &World) -> Vec<usize> {
    let kinds = [
        GroupKind::Composition,
        GroupKind::LongPair,
        GroupKind::Inverse,
        GroupKind::Symmetric,
        GroupKind::Subsumption,
    ];
    let mut buckets: Vec<Vec<usize>> = kinds
        .iter()
        .map(|k| {
            world
                .groups()
                .iter()
                .enumerate()
                .filter(|(_, g)| g.kind == *k)
                .map(|(i, _)| i)
                .collect()
        })
        .collect();
    let mut out = Vec::with_capacity(world.groups().len());
    let mut i = 0;
    while out.len() < world.groups().len() {
        let b = &mut buckets[i % kinds.len()];
        if let Some(g) = b.first().copied() {
            b.remove(0);
            out.push(g);
        }
        i += 1;
    }
    out
}

/// The active groups of one family version.
pub fn version_groups(family: Family, version: usize) -> Vec<usize> {
    let world = family.world();
    let order = interleaved_groups(&world);
    let n = ((order.len() as f64) * family.version_fraction(version)).ceil() as usize;
    let n = n.clamp(1, order.len());
    let mut g: Vec<usize> = order[..n].to_vec();
    g.sort_unstable();
    g
}

fn gen_cfg(family: Family, entities: usize, base: usize, seed: u64) -> GraphGenConfig {
    let (p, passes, noise) = family.gen_knobs();
    GraphGenConfig {
        num_entities: entities,
        num_base_triples: base,
        entity_offset: 0,
        rule_apply_prob: p,
        closure_passes: passes,
        noise_frac: noise,
        max_triples: 400_000,
        seed,
    }
}

/// All catalogue names.
pub fn registry_names() -> Vec<&'static str> {
    vec![
        "wn.v1",
        "wn.v2",
        "wn.v3",
        "wn.v4",
        "fb.v1",
        "fb.v2",
        "fb.v3",
        "fb.v4",
        "nell.v1",
        "nell.v2",
        "nell.v3",
        "nell.v4",
        "nell.v1.v3",
        "nell.v2.v3",
        "nell.v4.v3",
        "fb.v1.v4",
        "fb-ext",
        "nell-ext",
    ]
}

/// Build a catalogue benchmark by name. Panics on unknown names — the
/// catalogue is a closed, static set (see [`registry_names`]).
pub fn build_benchmark(name: &str, scale: Scale) -> Benchmark {
    let f = scale.factor();
    let parse_family = |tag: &str| match tag {
        "wn" => Family::Wn,
        "fb" => Family::Fb,
        "nell" => Family::Nell,
        other => panic!("unknown family {other:?}"),
    };

    let parts: Vec<&str> = name.split('.').collect();
    match parts.as_slice() {
        // partially inductive: family.vi
        [fam, v] if v.starts_with('v') && !name.contains("ext") => {
            let family = parse_family(fam);
            let version: usize = v[1..].parse().expect("version digit");
            let groups = version_groups(family, version);
            let (tre, trb, tee, teb) = family.sizes(version);
            let seed = hash_name(name);
            partial_benchmark(
                name,
                family.world(),
                &groups,
                gen_cfg(family, tre * f, trb * f, seed),
                gen_cfg(family, tee * f, teb * f, seed.wrapping_add(100)),
            )
        }
        // fully inductive: family.vi.vj
        [fam, vi, vj] => {
            let family = parse_family(fam);
            let i: usize = vi[1..].parse().expect("version digit");
            let j: usize = vj[1..].parse().expect("version digit");
            let train_groups = version_groups(family, i);
            let test_groups = version_groups(family, j);
            let (tre, trb, _, _) = family.sizes(i);
            let (_, _, tee, teb) = family.sizes(j);
            let seed = hash_name(name);
            fully_inductive_benchmark(
                name,
                family.world(),
                &train_groups,
                &test_groups,
                gen_cfg(family, tre * f, trb * f, seed),
                gen_cfg(family, tee * f, teb * f, seed.wrapping_add(100)),
            )
        }
        // ext benchmarks
        [tag] if tag.ends_with("-ext") => {
            let family = parse_family(&tag[..tag.len() - 4]);
            let world = family.world();
            let all: Vec<usize> = (0..world.groups().len()).collect();
            let train_groups = version_groups(family, 2);
            let (tre, trb, tee, _) = family.sizes(2);
            let seed = hash_name(name);
            ext_benchmark(
                name,
                world,
                &train_groups,
                &all,
                gen_cfg(family, tre * f, trb * f, seed),
                tee * f,
                seed.wrapping_add(100),
            )
        }
        _ => panic!("unknown benchmark name {name:?} (see registry_names())"),
    }
}

fn hash_name(name: &str) -> u64 {
    // FNV-1a, deterministic across runs/platforms
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Paper-reported statistics for Table I (for side-by-side printing).
/// Returns `(tr_r, tr_e, tr_t, te_r, te_e, te_t)`.
pub fn paper_table1_stats(name: &str) -> Option<(usize, usize, usize, usize, usize, usize)> {
    Some(match name {
        "wn.v1" => (9, 2746, 6678, 8, 922, 1991),
        "wn.v2" => (10, 6954, 18968, 10, 2757, 4863),
        "wn.v3" => (11, 12078, 32150, 11, 5084, 7470),
        "wn.v4" => (9, 3861, 9842, 9, 7084, 15157),
        "fb.v1" => (180, 1594, 5226, 142, 1093, 2404),
        "fb.v2" => (200, 2608, 12085, 172, 1660, 5092),
        "fb.v3" => (215, 3668, 22394, 183, 2501, 9137),
        "fb.v4" => (219, 4707, 33916, 200, 3051, 14554),
        "nell.v1" => (14, 3103, 5540, 14, 225, 1034),
        "nell.v2" => (88, 2564, 10109, 79, 2086, 5521),
        "nell.v3" => (142, 4647, 20117, 122, 3566, 9668),
        "nell.v4" => (76, 2092, 9289, 61, 2795, 8520),
        // fully inductive (semi rows; TE(fully) printed separately)
        "nell.v1.v3" => (14, 3103, 5540, 106, 2271, 5550),
        "nell.v2.v3" => (88, 2564, 10109, 116, 2803, 6749),
        "nell.v4.v3" => (76, 2092, 9289, 110, 2678, 6754),
        "fb.v1.v4" => (180, 1594, 5226, 200, 3001, 14327),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_name_builds_quick() {
        for name in registry_names() {
            let b = build_benchmark(name, Scale::Quick);
            assert!(!b.train.targets.is_empty(), "{name}: no train targets");
            assert!(
                b.tests.iter().all(|t| !t.targets.is_empty() || t.name == "u_rel"),
                "{name}: empty test targets"
            );
        }
    }

    #[test]
    fn version_relation_counts_follow_paper_trend() {
        // nell: v1 < v4 < v2 < v3 as in Table Ia
        let count = |v: usize| {
            let groups = version_groups(Family::Nell, v);
            Family::Nell.world().active_relations(&groups).len()
        };
        let (c1, c2, c3, c4) = (count(1), count(2), count(3), count(4));
        assert!(c1 < c4 && c4 < c2 && c2 < c3, "nell counts {c1} {c2} {c3} {c4}");
        assert!(c1 <= 20, "nell v1 should be small, got {c1}");
        assert_eq!(c3, Family::Nell.world().num_relations());
    }

    #[test]
    fn fully_inductive_names_have_unseen_relations() {
        for name in ["nell.v1.v3", "nell.v2.v3", "nell.v4.v3", "fb.v1.v4"] {
            let b = build_benchmark(name, Scale::Quick);
            let semi = b.test("TE(semi)").expect("semi");
            let unseen = semi.graph.present_relations().iter().filter(|r| b.is_unseen(**r)).count();
            assert!(unseen > 0, "{name}: no unseen relations in TE(semi)");
            let fully = b.test("TE(fully)").expect("fully");
            assert!(!fully.targets.is_empty(), "{name}: TE(fully) empty");
        }
    }

    #[test]
    fn deterministic_builds() {
        let a = build_benchmark("nell.v1", Scale::Quick);
        let b = build_benchmark("nell.v1", Scale::Quick);
        assert_eq!(a.train.targets, b.train.targets);
    }

    #[test]
    fn full_scale_is_larger() {
        let q = build_benchmark("wn.v1", Scale::Quick);
        let f = build_benchmark("wn.v1", Scale::Full);
        assert!(f.train.graph.num_triples() > 2 * q.train.graph.num_triples());
    }

    #[test]
    fn wn_family_is_sparser_than_fb() {
        let wn = build_benchmark("wn.v1", Scale::Quick);
        let fb = build_benchmark("fb.v1", Scale::Quick);
        let deg =
            |g: &rmpi_kg::KnowledgeGraph| g.num_triples() as f64 / g.num_present_entities() as f64;
        assert!(
            deg(&wn.train.graph) < deg(&fb.train.graph),
            "wn {} vs fb {}",
            deg(&wn.train.graph),
            deg(&fb.train.graph)
        );
    }

    #[test]
    #[should_panic(expected = "unknown benchmark name")]
    fn unknown_name_panics() {
        build_benchmark("made-up", Scale::Quick);
    }

    #[test]
    fn paper_stats_cover_table1() {
        for name in registry_names() {
            if name.contains("ext") {
                continue;
            }
            assert!(paper_table1_stats(name).is_some(), "{name} missing paper stats");
        }
    }
}
