//! Streaming world generation: millions of entities with bounded RSS.
//!
//! [`World::generate_triples`] materialises a whole graph in a `BTreeSet`,
//! which is fine at benchmark scale and hopeless at a million entities.
//! [`StreamingWorld`] instead carves the entity range into contiguous
//! *chunks* and generates each chunk as an independent small world over its
//! own entity sub-range, emitting triples chunk by chunk. Peak memory is
//! one chunk's triple set, whatever the total world size.
//!
//! Two properties make the output directly consumable by
//! `rmpi_store::StoreBuilder` with no external sort:
//!
//! * each chunk's triples are sorted `(head, relation, tail)` (the
//!   generator returns sorted output), and
//! * chunk `c`'s entities are all strictly below chunk `c+1`'s, and
//!   [`rmpi_kg::Triple`]'s ordering is head-major — so the concatenation of
//!   chunks is globally sorted.
//!
//! The trade-off is connectivity: edges never cross chunk boundaries, so a
//! streamed world is a disjoint union of island graphs that all share the
//! same relational regularities (same world, same rules). For inductive
//! relational message passing this is the property that matters — every
//! k-hop neighbourhood is still rule-structured — and it is what lets
//! generation scale without a distributed join. Use one chunk when you need
//! a single connected component and can afford the RAM.

use crate::world::{GraphGenConfig, World};
use rmpi_kg::Triple;

/// A lazily generated large world: `World` semantics, chunked emission.
#[derive(Clone, Debug)]
pub struct StreamingWorld<'w> {
    world: &'w World,
    active_groups: Vec<usize>,
    gen: GraphGenConfig,
    chunk_entities: usize,
}

impl<'w> StreamingWorld<'w> {
    /// Stream `gen.num_entities` entities in chunks of `chunk_entities`.
    /// Base-triple and cap budgets are split proportionally across chunks.
    pub fn new(
        world: &'w World,
        active_groups: &[usize],
        gen: GraphGenConfig,
        chunk_entities: usize,
    ) -> Self {
        assert!(chunk_entities > 0, "chunk_entities must be positive");
        StreamingWorld { world, active_groups: active_groups.to_vec(), gen, chunk_entities }
    }

    /// Number of chunks (the last may be smaller).
    pub fn num_chunks(&self) -> usize {
        self.gen.num_entities.div_ceil(self.chunk_entities)
    }

    /// The generation config of chunk `c`: its entity sub-range, its
    /// proportional share of the base-triple and cap budgets, and a
    /// chunk-decorrelated seed.
    pub fn chunk_config(&self, c: usize) -> GraphGenConfig {
        let n = self.num_chunks();
        assert!(c < n, "chunk {c} out of {n}");
        let lo = c * self.chunk_entities;
        let hi = ((c + 1) * self.chunk_entities).min(self.gen.num_entities);
        // Exact proportional split: Σ_c share(c) == total, no drift.
        let share = |total: usize| total * (c + 1) / n - total * c / n;
        GraphGenConfig {
            num_entities: hi - lo,
            num_base_triples: share(self.gen.num_base_triples),
            entity_offset: self.gen.entity_offset + lo as u32,
            max_triples: share(self.gen.max_triples),
            seed: self.gen.seed ^ (c as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            ..self.gen
        }
    }

    /// Generate chunk `c`'s triples (sorted, entities within the chunk's
    /// sub-range). This is the only allocation the stream makes.
    pub fn chunk_triples(&self, c: usize) -> Vec<Triple> {
        self.world.generate_triples(&self.active_groups, &self.chunk_config(c))
    }

    /// Visit every triple of the world in ascending `(head, relation,
    /// tail)` order, holding at most one chunk in memory.
    pub fn for_each_triple(&self, mut f: impl FnMut(Triple)) {
        for c in 0..self.num_chunks() {
            for t in self.chunk_triples(c) {
                f(t);
            }
        }
    }

    /// Iterator form of [`StreamingWorld::for_each_triple`]; chunks are
    /// generated lazily as the iterator crosses their boundary.
    pub fn iter(&self) -> impl Iterator<Item = Triple> + '_ {
        (0..self.num_chunks()).flat_map(move |c| self.chunk_triples(c).into_iter())
    }

    /// Total triples the stream will emit. Generates every chunk (cheap
    /// relative to consuming them twice; prefer counting while consuming).
    pub fn count_triples(&self) -> usize {
        (0..self.num_chunks()).map(|c| self.chunk_triples(c).len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;

    fn world() -> World {
        World::new(WorldConfig::default())
    }

    fn gen(entities: usize) -> GraphGenConfig {
        GraphGenConfig {
            num_entities: entities,
            num_base_triples: entities * 3,
            entity_offset: 500,
            max_triples: entities * 40,
            ..Default::default()
        }
    }

    #[test]
    fn concatenation_is_globally_sorted() {
        let w = world();
        let active: Vec<usize> = (0..w.groups().len()).collect();
        let sw = StreamingWorld::new(&w, &active, gen(900), 200);
        assert_eq!(sw.num_chunks(), 5);
        let mut out = Vec::new();
        sw.for_each_triple(|t| out.push(t));
        assert!(!out.is_empty());
        assert!(out.windows(2).all(|p| p[0] <= p[1]), "stream must be sorted");
    }

    #[test]
    fn iterator_matches_for_each() {
        let w = world();
        let active: Vec<usize> = (0..w.groups().len()).collect();
        let sw = StreamingWorld::new(&w, &active, gen(400), 150);
        let mut pushed = Vec::new();
        sw.for_each_triple(|t| pushed.push(t));
        let pulled: Vec<Triple> = sw.iter().collect();
        assert_eq!(pushed, pulled);
        assert_eq!(sw.count_triples(), pulled.len());
    }

    #[test]
    fn chunks_cover_disjoint_entity_ranges() {
        let w = world();
        let active: Vec<usize> = (0..w.groups().len()).collect();
        let sw = StreamingWorld::new(&w, &active, gen(500), 200);
        for c in 0..sw.num_chunks() {
            let cfg = sw.chunk_config(c);
            let lo = cfg.entity_offset;
            let hi = lo + cfg.num_entities as u32;
            for t in sw.chunk_triples(c) {
                assert!((lo..hi).contains(&t.head.0), "chunk {c}: head {t}");
                assert!((lo..hi).contains(&t.tail.0), "chunk {c}: tail {t}");
            }
        }
        // Shares sum exactly to the totals.
        let base: usize = (0..sw.num_chunks()).map(|c| sw.chunk_config(c).num_base_triples).sum();
        assert_eq!(base, sw.gen.num_base_triples);
        let ents: usize = (0..sw.num_chunks()).map(|c| sw.chunk_config(c).num_entities).sum();
        assert_eq!(ents, sw.gen.num_entities);
    }

    #[test]
    fn single_chunk_matches_materialised_generator() {
        let w = world();
        let active: Vec<usize> = (0..w.groups().len()).collect();
        let base = gen(300);
        let sw = StreamingWorld::new(&w, &active, base, 300);
        assert_eq!(sw.num_chunks(), 1);
        // One chunk, chunk seed = gen.seed ^ 0: identical to the one-shot path.
        let want = w.generate_triples(&active, &base);
        let got: Vec<Triple> = sw.iter().collect();
        assert_eq!(got, want);
    }

    #[test]
    fn deterministic_across_runs() {
        let w = world();
        let active: Vec<usize> = (0..w.groups().len()).collect();
        let a: Vec<Triple> = StreamingWorld::new(&w, &active, gen(600), 250).iter().collect();
        let b: Vec<Triple> = StreamingWorld::new(&w, &active, gen(600), 250).iter().collect();
        assert_eq!(a, b);
    }
}
