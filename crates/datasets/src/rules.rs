//! Entity-independent logical rules planted in generated worlds.

use rmpi_kg::RelationId;

/// A horn rule over relations (entity variables implicit).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Rule {
    /// `conclusion(x, z) ← p1(x, y) ∧ p2(y, z)`.
    Composition {
        /// First premise.
        p1: RelationId,
        /// Second premise.
        p2: RelationId,
        /// Derived relation.
        conclusion: RelationId,
    },
    /// `conclusion(x, w) ← p1(x, y) ∧ mid(y, z) ∧ p3(z, w)`.
    ///
    /// Long chains are what separates multi-hop relational message passing
    /// from one-hop relation-correlation models: the `mid` relation is two
    /// hops from the target in the relation view.
    LongComposition {
        /// First premise.
        p1: RelationId,
        /// Middle premise (only visible at hop 2).
        mid: RelationId,
        /// Last premise.
        p3: RelationId,
        /// Derived relation.
        conclusion: RelationId,
    },
    /// `inverse(y, x) ← of(x, y)`.
    Inverse {
        /// The base relation.
        of: RelationId,
        /// Its inverse.
        inverse: RelationId,
    },
    /// `relation(y, x) ← relation(x, y)`.
    Symmetric {
        /// The symmetric relation.
        relation: RelationId,
    },
    /// `parent(x, y) ← child(x, y)`.
    Subsumption {
        /// The more specific relation.
        child: RelationId,
        /// The more general relation.
        parent: RelationId,
    },
}

impl Rule {
    /// The relation the rule derives facts for.
    pub fn conclusion(&self) -> RelationId {
        match *self {
            Rule::Composition { conclusion, .. } => conclusion,
            Rule::LongComposition { conclusion, .. } => conclusion,
            Rule::Inverse { inverse, .. } => inverse,
            Rule::Symmetric { relation } => relation,
            Rule::Subsumption { parent, .. } => parent,
        }
    }

    /// Every relation the rule mentions.
    pub fn relations(&self) -> Vec<RelationId> {
        match *self {
            Rule::Composition { p1, p2, conclusion } => vec![p1, p2, conclusion],
            Rule::LongComposition { p1, mid, p3, conclusion } => vec![p1, mid, p3, conclusion],
            Rule::Inverse { of, inverse } => vec![of, inverse],
            Rule::Symmetric { relation } => vec![relation],
            Rule::Subsumption { child, parent } => vec![child, parent],
        }
    }
}

/// The archetype of a rule group — what bundle of relations and rules it
/// instantiates.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GroupKind {
    /// One short composition rule (3 relations).
    Composition,
    /// Two confusable long chains sharing first/last premises
    /// (6 relations: p1, midA, midB, p3, conclA, conclB).
    LongPair,
    /// A relation and its inverse.
    Inverse,
    /// A single symmetric relation.
    Symmetric,
    /// A child/parent subsumption pair.
    Subsumption,
}

/// The role a relation plays inside its group — relations with the same
/// `(archetype, role)` share an abstract schema parent, which is how the
/// ontology relates unseen relations to seen ones.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Role {
    /// First premise of a (long) composition.
    First,
    /// Second premise of a short composition.
    Second,
    /// Middle premise A of a long pair.
    MidA,
    /// Middle premise B of a long pair.
    MidB,
    /// Conclusion (of a short composition, or chain A of a long pair).
    Conclusion,
    /// Conclusion of chain B of a long pair.
    ConclusionB,
    /// Base relation of an inverse pair.
    Base,
    /// Inverse relation of an inverse pair.
    Inverted,
    /// A symmetric relation.
    Sym,
    /// Child of a subsumption pair.
    Child,
    /// Parent of a subsumption pair.
    Parent,
    /// A free noise relation (no rules).
    Noise,
}

/// One instantiated rule group: its kind, its rules and its relations with
/// their roles.
#[derive(Clone, Debug)]
pub struct RuleGroup {
    /// Archetype index (groups of the same archetype share schema parents).
    pub archetype: usize,
    /// What kind of group this is.
    pub kind: GroupKind,
    /// The instantiated rules.
    pub rules: Vec<Rule>,
    /// `(relation, role)` pairs owned by this group.
    pub relations: Vec<(RelationId, Role)>,
}

impl RuleGroup {
    /// The relation ids owned by this group.
    pub fn relation_ids(&self) -> Vec<RelationId> {
        self.relations.iter().map(|(r, _)| *r).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conclusion_and_relations_consistent() {
        let r =
            Rule::Composition { p1: RelationId(0), p2: RelationId(1), conclusion: RelationId(2) };
        assert_eq!(r.conclusion(), RelationId(2));
        assert_eq!(r.relations().len(), 3);
        let l = Rule::LongComposition {
            p1: RelationId(0),
            mid: RelationId(1),
            p3: RelationId(2),
            conclusion: RelationId(3),
        };
        assert!(l.relations().contains(&l.conclusion()));
        assert_eq!(Rule::Symmetric { relation: RelationId(7) }.conclusion(), RelationId(7));
    }

    #[test]
    fn group_relation_ids() {
        let g = RuleGroup {
            archetype: 0,
            kind: GroupKind::Inverse,
            rules: vec![Rule::Inverse { of: RelationId(3), inverse: RelationId(4) }],
            relations: vec![(RelationId(3), Role::Base), (RelationId(4), Role::Inverted)],
        };
        assert_eq!(g.relation_ids(), vec![RelationId(3), RelationId(4)]);
    }
}
