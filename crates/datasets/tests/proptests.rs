//! Property-based tests for world generation and benchmark construction.

use proptest::prelude::*;
use rmpi_datasets::world::{GraphGenConfig, WorldConfig};
use rmpi_datasets::{benchmark, World};
use rmpi_kg::EntityId;
use std::collections::HashSet;

fn arb_world_config() -> impl Strategy<Value = WorldConfig> {
    (
        2usize..10,
        1usize..4,
        0usize..4,
        0usize..3,
        0usize..3,
        0usize..3,
        0usize..3,
        0usize..3,
        0u64..100,
    )
        .prop_map(|(classes, arch, comp, long, inv, sym, sub, noise, seed)| WorldConfig {
            num_classes: classes,
            num_archetypes: arch,
            comp_groups: comp.max(1), // at least one group so graphs are non-trivial
            long_groups: long,
            inv_groups: inv,
            sym_groups: sym,
            sub_groups: sub,
            noise_relations: noise,
            seed,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn relation_count_matches_group_arithmetic(cfg in arb_world_config()) {
        let w = World::new(cfg);
        let expect = 3 * cfg.comp_groups
            + 6 * cfg.long_groups
            + 2 * cfg.inv_groups
            + cfg.sym_groups
            + 2 * cfg.sub_groups
            + cfg.noise_relations;
        prop_assert_eq!(w.num_relations(), expect);
        prop_assert!(w.num_schema_relations() >= w.num_relations());
    }

    #[test]
    fn generation_stays_in_entity_range(cfg in arb_world_config(), offset in 0u32..1000, n in 20usize..120) {
        let w = World::new(cfg);
        let groups: Vec<usize> = (0..w.groups().len()).collect();
        let gen = GraphGenConfig {
            num_entities: n,
            num_base_triples: 3 * n,
            entity_offset: offset,
            seed: 42,
            ..Default::default()
        };
        for t in w.generate_triples(&groups, &gen) {
            prop_assert!(t.head.0 >= offset && t.head.0 < offset + n as u32);
            prop_assert!(t.tail.0 >= offset && t.tail.0 < offset + n as u32);
            prop_assert!(t.relation.index() < w.num_relations());
            prop_assert!(!t.is_self_loop());
        }
    }

    #[test]
    fn schema_graph_edges_use_rdfs_vocab_only(cfg in arb_world_config()) {
        let w = World::new(cfg);
        let schema = w.schema_graph();
        for t in schema.graph().triples() {
            prop_assert!(t.relation.index() < 4, "schema edge label {} out of RDFS vocab", t.relation);
        }
    }

    #[test]
    fn partial_benchmarks_have_disjoint_entities(seed in 0u64..50) {
        let w = World::new(WorldConfig { seed, ..Default::default() });
        let groups: Vec<usize> = (0..w.groups().len()).collect();
        let b = benchmark::partial_benchmark(
            "prop",
            w,
            &groups,
            GraphGenConfig { num_entities: 100, num_base_triples: 300, seed, ..Default::default() },
            GraphGenConfig { num_entities: 80, num_base_triples: 240, seed: seed + 1, ..Default::default() },
        );
        let tr: HashSet<EntityId> = b.train.graph.present_entities().into_iter().collect();
        let te: HashSet<EntityId> = b.tests[0].graph.present_entities().into_iter().collect();
        prop_assert!(tr.is_disjoint(&te));
        for t in &b.tests[0].targets {
            prop_assert!(!b.tests[0].graph.contains(t));
        }
    }
}
