//! Crash-safety of the store build pipeline: a build interrupted at any
//! armed failpoint — or killed outright mid-publish — must never leave a
//! readable half-store behind. The manifest is the commit point: until it
//! lands, `StoreReader::open` answers `NotAStore`, and rebuilding over the
//! partial directory is idempotent.

use rmpi_kg::Triple;
use rmpi_store::{
    build_from_sorted, ReadMode, StoreConfig, StoreError, StoreReader, INDEX_WRITE_FAILPOINT,
    PUBLISH_FAILPOINT, SEG_CLOSE_FAILPOINT, SEG_WRITE_FAILPOINT,
};
use rmpi_testutil::failpoint::{self, Action};
use std::path::{Path, PathBuf};

/// Child-mode marker: when set, this test binary is being re-executed to
/// run one build that a failpoint will abort mid-flight.
const CHILD_ENV: &str = "RMPI_STORE_CRASH_CHILD";

fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rmpi-store-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn triples(n: u32) -> Vec<Triple> {
    let mut out: Vec<Triple> =
        (0..n).map(|i| Triple::new(i % 50, i % 7, (i * 13 + 1) % 50)).collect();
    out.sort_unstable();
    out
}

/// Build with small segments so every failpoint (segment write, segment
/// close, index write, publish) is actually reachable.
fn build(dir: &Path, n: u32) -> Result<(), StoreError> {
    let cfg = StoreConfig { seg_records: 64, ..StoreConfig::default() };
    build_from_sorted(dir, cfg, triples(n)).map(|_| ())
}

fn assert_not_a_store(dir: &Path) {
    for mode in [ReadMode::Resident, ReadMode::Stream { cache_blocks: 2 }] {
        let err = StoreReader::open(dir, mode).unwrap_err();
        assert!(matches!(err, StoreError::NotAStore(_)), "{mode:?}: {err}");
    }
}

fn assert_complete_store(dir: &Path, n: u32) {
    let reader = StoreReader::open(dir, ReadMode::default()).unwrap();
    assert_eq!(reader.num_triples(), n as usize);
    reader.verify().unwrap();
}

#[test]
fn interruption_at_every_failpoint_leaves_no_store_and_rebuild_recovers() {
    let _lock = failpoint::exclusive();
    // (point, after): segment faults fire mid-stream so the partial
    // directory holds closed segments plus a half-written one; the index
    // write and publish fire on their single hit.
    for (i, (point, after)) in [
        (SEG_WRITE_FAILPOINT, 100),
        (SEG_CLOSE_FAILPOINT, 2),
        (INDEX_WRITE_FAILPOINT, 0),
        (PUBLISH_FAILPOINT, 0),
    ]
    .iter()
    .enumerate()
    {
        let dir = temp_store(&format!("fp{i}"));
        // A good store exists first, so a failed rebuild must *revoke* it —
        // surviving stale data would be a silently-wrong store, not a crash.
        build(&dir, 300).unwrap();

        failpoint::arm_after(point, Action::IoError("injected crash".into()), *after);
        let err = build(&dir, 300).unwrap_err();
        failpoint::disarm_all();
        assert!(matches!(err, StoreError::Io(_)), "{point}: {err}");
        assert_not_a_store(&dir);

        // Rebuilding over the partial directory is idempotent.
        build(&dir, 300).unwrap();
        assert_complete_store(&dir, 300);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// Re-executed in child mode: run the build that the `abort` failpoint
/// (armed via `RMPI_FAILPOINTS` in the parent) kills mid-flight. The
/// `#[test]` shell is inert in the parent run — it exits immediately when
/// the env marker is absent.
#[test]
fn crash_child_entry() {
    let Ok(dir) = std::env::var(CHILD_ENV) else { return };
    let _ = build(Path::new(&dir), 300);
    // an armed abort must have killed us above; exiting cleanly makes the
    // parent's !status.success() assertion fail, which is the point
}

fn spawn_crash_child(dir: &Path, failpoints: &str) -> std::process::ExitStatus {
    let exe = std::env::current_exe().expect("current_exe");
    std::process::Command::new(exe)
        .args(["crash_child_entry", "--exact", "--nocapture", "--test-threads=1"])
        .env(CHILD_ENV, dir)
        .env("RMPI_FAILPOINTS", failpoints)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .expect("spawn store crash child")
}

#[test]
fn real_process_death_mid_build_leaves_no_store() {
    let _lock = failpoint::exclusive();
    // (failpoint spec, tag): one death just before the manifest publish —
    // the worst case, everything else already durable — and one mid-segment.
    for (spec, tag) in
        [("store::publish=abort", "publish"), ("store::seg_write=abort@100", "segwrite")]
    {
        let dir = temp_store(&format!("kill-{tag}"));
        build(&dir, 300).unwrap();

        let status = spawn_crash_child(&dir, spec);
        assert!(!status.success(), "{tag}: child must die mid-build, got {status}");

        assert_not_a_store(&dir);
        build(&dir, 300).unwrap();
        assert_complete_store(&dir, 300);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
