//! The satellite equivalence property: `StoreReader`-backed `GraphAccess`
//! (through a pinned [`NeighborhoodView`]) must be observationally
//! identical to `CsrGraph` and to the naive reference extractor on random
//! worlds. Because every `Subgraph` field is sorted, equality here is
//! bit-equality — the same property the serve-path bit-identity test
//! builds on.

use proptest::prelude::*;
use rmpi_kg::{CsrGraph, EntityId, GraphAccess, KnowledgeGraph, Triple};
use rmpi_store::{
    build_from_sorted, fnv64, Fnv64, NeighborhoodView, ReadMode, StoreConfig, StoreError,
    StoreReader,
};
use rmpi_subgraph::{disclosing_subgraph, enclosing_subgraph};
use std::sync::atomic::{AtomicU64, Ordering};

fn arb_world() -> impl Strategy<Value = (Vec<Triple>, Triple)> {
    (prop::collection::vec((0u32..24, 0u32..6, 0u32..24), 1..100), (0u32..24, 0u32..6, 0u32..24))
        .prop_map(|(edges, (h, r, t))| {
            let mut triples: Vec<Triple> =
                edges.into_iter().map(|(a, rel, b)| Triple::new(a, rel, b)).collect();
            triples.sort_unstable();
            (triples, Triple::new(h, r, t))
        })
}

/// Fresh on-disk store per case (tiny segments to exercise boundaries).
fn store_for(triples: &[Triple]) -> (std::path::PathBuf, StoreReader) {
    static CASE: AtomicU64 = AtomicU64::new(0);
    let case = CASE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("rmpi-store-prop-{}-{case}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = StoreConfig { seg_records: 37, transpose_budget_bytes: 1024 };
    build_from_sorted(&dir, cfg, triples.iter().copied()).unwrap();
    let reader = StoreReader::open(&dir, ReadMode::Stream { cache_blocks: 3 }).unwrap();
    (dir, reader)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pinned_view_extraction_matches_csr_and_reference(
        (triples, target) in arb_world(),
        k in 0usize..4,
    ) {
        let (dir, reader) = store_for(&triples);
        let graph = KnowledgeGraph::from_triples(triples.clone());
        let csr = CsrGraph::from_triples(triples);

        let want_en = rmpi_subgraph::extraction::reference::enclosing_subgraph(&graph, target, k);
        let want_di = rmpi_subgraph::extraction::reference::disclosing_subgraph(&graph, target, k);
        let csr_en = enclosing_subgraph(&csr, target, k);
        let csr_di = disclosing_subgraph(&csr, target, k);
        prop_assert_eq!(&csr_en.triples, &want_en.triples);
        prop_assert_eq!(&csr_di.triples, &want_di.triples);

        let mut view = NeighborhoodView::new(&reader);
        view.pin(target.head, target.tail, k).unwrap();
        let got_en = enclosing_subgraph(&view, target, k);
        let got_di = disclosing_subgraph(&view, target, k);

        prop_assert_eq!(&got_en.triples, &want_en.triples, "enclosing triples (store)");
        prop_assert_eq!(&got_en.entities, &want_en.entities, "enclosing entities (store)");
        prop_assert_eq!(
            got_en.distance_rows(), want_en.distance_rows(), "enclosing distances (store)"
        );
        prop_assert_eq!(&got_di.triples, &want_di.triples, "disclosing triples (store)");
        prop_assert_eq!(&got_di.entities, &want_di.entities, "disclosing entities (store)");
        prop_assert_eq!(
            got_di.distance_rows(), want_di.distance_rows(), "disclosing distances (store)"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pinned_view_adjacency_matches_csr(
        (triples, _target) in arb_world(),
        k in 1usize..3,
        probe in 0u32..24,
    ) {
        let (dir, reader) = store_for(&triples);
        let csr = CsrGraph::from_triples(triples);
        let mut view = NeighborhoodView::new(&reader);
        view.pin(EntityId(probe), EntityId(probe), k).unwrap();
        // The pin sources themselves must serve full CSR-identical slices.
        prop_assert_eq!(view.out_edges(EntityId(probe)), csr.out_edges(EntityId(probe)));
        prop_assert_eq!(view.in_edges(EntityId(probe)), csr.in_edges(EntityId(probe)));
        // …and so must every 1-hop neighbour (pinned at k >= 1).
        for edge in csr.out_edges(EntityId(probe)).iter().chain(csr.in_edges(EntityId(probe))) {
            let n = edge.neighbor;
            prop_assert_eq!(view.out_edges(n), csr.out_edges(n), "out({})", n);
            prop_assert_eq!(view.in_edges(n), csr.in_edges(n), "in({})", n);
        }
        // Trait-level scalars agree regardless of the pin.
        prop_assert_eq!(GraphAccess::num_entities(&view), GraphAccess::num_entities(&csr));
        prop_assert_eq!(GraphAccess::num_triples(&view), GraphAccess::num_triples(&csr));
        prop_assert_eq!(GraphAccess::num_relations(&view), GraphAccess::num_relations(&csr));
        for idx in 0..GraphAccess::num_triples(&csr) {
            prop_assert_eq!(GraphAccess::triple(&view, idx), GraphAccess::triple(&csr, idx));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn membership_matches_csr(
        (triples, probe) in arb_world(),
    ) {
        let (dir, reader) = store_for(&triples);
        let csr = CsrGraph::from_triples(triples.clone());
        prop_assert_eq!(reader.contains(&probe).unwrap(), csr.contains(&probe));
        for t in triples.iter().take(30) {
            prop_assert!(reader.contains(t).unwrap());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Durability property: flip one bit anywhere in a finished store —
    /// manifest, index or any segment — and a full read pass either fails
    /// (a corruption/parse error, never a panic) or observes adjacency
    /// bit-identical to the pristine store. Silently wrong data is the one
    /// outcome that must be impossible, in both read modes.
    #[test]
    fn any_single_bit_flip_is_never_silently_wrong(
        file_sel in 0usize..10_000,
        byte_sel in 0usize..10_000_000,
        bit in 0u8..8,
    ) {
        let triples = {
            let mut v: Vec<Triple> = (0..400u32)
                .map(|i| Triple::new(i % 40, i % 6, (i * 13 + 1) % 40))
                .collect();
            v.sort_unstable();
            v
        };
        let (dir, reader) = store_for(&triples);
        let pristine = observe_everything_via(reader).unwrap();

        let mut files: Vec<std::path::PathBuf> =
            std::fs::read_dir(&dir).unwrap().map(|e| e.unwrap().path()).collect();
        files.sort();
        let victim = &files[file_sel % files.len()];
        let mut bytes = std::fs::read(victim).unwrap();
        prop_assert!(!bytes.is_empty(), "no store file is empty");
        let at = byte_sel % bytes.len();
        bytes[at] ^= 1u8 << bit;
        std::fs::write(victim, &bytes).unwrap();

        for mode in [ReadMode::Resident, ReadMode::Stream { cache_blocks: 2 }] {
            match observe_everything(&dir, mode) {
                Ok(digest) => prop_assert_eq!(
                    digest, pristine,
                    "flip {:?}[{at}] bit {bit} in {mode:?} read back silently different data",
                    victim.file_name().unwrap()
                ),
                // Any error is acceptable — a flipped MANIFEST byte can even
                // break UTF-8 — as long as it is permanent (never classified
                // retryable: the damage is on disk, not in flight).
                Err(e) => prop_assert!(!e.is_transient(), "flip classified transient: {e}"),
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// Open `dir` and read every adjacency surface the store serves — out/in
/// edges per entity, point lookups, membership, the sequential sweep — and
/// fold all of it into one digest.
fn observe_everything(dir: &std::path::Path, mode: ReadMode) -> Result<u64, StoreError> {
    observe_everything_via(StoreReader::open(dir, mode)?)
}

fn observe_everything_via(reader: StoreReader) -> Result<u64, StoreError> {
    fn note(h: &mut Fnv64, t: Triple) {
        h.update(&t.head.0.to_le_bytes());
        h.update(&t.relation.0.to_le_bytes());
        h.update(&t.tail.0.to_le_bytes());
    }
    fn note_edge(h: &mut Fnv64, e: rmpi_kg::Edge) {
        h.update(&e.neighbor.0.to_le_bytes());
        h.update(&e.relation.0.to_le_bytes());
        h.update(&(e.triple_idx as u64).to_le_bytes());
    }
    let mut h = Fnv64::new();
    for e in 0..reader.num_entities() as u32 {
        reader.for_each_out_edge(EntityId(e), |edge| note_edge(&mut h, edge))?;
        reader.for_each_in_edge(EntityId(e), |edge| note_edge(&mut h, edge))?;
    }
    for idx in 0..reader.num_triples() as u64 {
        note(&mut h, reader.triple_at(idx)?);
    }
    reader.for_each_triple(|t| note(&mut h, t))?;
    let head = fnv64(&(reader.num_entities() as u64).to_le_bytes());
    Ok(h.finish() ^ head ^ fnv64(&(reader.num_triples() as u64).to_le_bytes()))
}
