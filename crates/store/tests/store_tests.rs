//! Integration tests: build → open → query equivalence against the
//! in-memory CSR backend, plus corruption rejection.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rmpi_kg::{CsrGraph, EntityId, Triple};
use rmpi_store::{build_from_sorted, ReadMode, StoreBuilder, StoreConfig, StoreError, StoreReader};
use std::path::PathBuf;

fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rmpi-store-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn random_triples(seed: u64, n: usize, entities: u32, relations: u32) -> Vec<Triple> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut triples: Vec<Triple> = (0..n)
        .map(|_| {
            Triple::new(
                rng.gen_range(0..entities),
                rng.gen_range(0..relations),
                rng.gen_range(0..entities),
            )
        })
        .collect();
    triples.sort_unstable();
    triples
}

/// Exhaustive cross-check of one reader against the CSR built from the same
/// sorted triple list (identical triple indices by construction).
fn assert_matches_csr(reader: &StoreReader, csr: &CsrGraph) {
    assert_eq!(reader.num_triples(), csr.num_triples());
    assert_eq!(reader.num_relations(), csr.num_relations());
    // CSR may have a smaller entity space if the max id has no edges; the
    // builder sizes by max id seen, which matches from_triples.
    assert_eq!(reader.num_entities(), csr.num_entities());
    for e in 0..reader.num_entities() as u32 {
        let e = EntityId(e);
        let mut out = Vec::new();
        reader.for_each_out_edge(e, |edge| out.push(edge)).unwrap();
        assert_eq!(out.as_slice(), csr.out_edges(e), "out_edges({e})");
        let mut inn = Vec::new();
        reader.for_each_in_edge(e, |edge| inn.push(edge)).unwrap();
        assert_eq!(inn.as_slice(), csr.in_edges(e), "in_edges({e})");
        assert_eq!(reader.out_degree(e), csr.out_edges(e).len());
        assert_eq!(reader.in_degree(e), csr.in_edges(e).len());
    }
    for idx in 0..reader.num_triples() {
        assert_eq!(reader.triple_at(idx as u64).unwrap(), csr.triple(idx), "triple({idx})");
    }
    let mut swept = Vec::new();
    reader.for_each_triple(|t| swept.push(t)).unwrap();
    assert_eq!(swept.as_slice(), csr.triples());
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..200 {
        let probe = Triple::new(
            rng.gen_range(0..reader.num_entities().max(1) as u32),
            rng.gen_range(0..reader.num_relations().max(1) as u32),
            rng.gen_range(0..reader.num_entities().max(1) as u32),
        );
        assert_eq!(reader.contains(&probe).unwrap(), csr.contains(&probe), "contains({probe})");
    }
    for &t in csr.triples().iter().take(50) {
        assert!(reader.contains(&t).unwrap());
    }
}

#[test]
fn roundtrip_matches_csr_both_modes() {
    let dir = temp_store("roundtrip");
    let triples = random_triples(1, 4000, 300, 12);
    // Tiny segments + tiny transpose budget: forces segment rolling and
    // multi-pass transpose on a graph small enough to cross-check fully.
    let cfg = StoreConfig { seg_records: 512, transpose_budget_bytes: 4096 };
    let summary = build_from_sorted(&dir, cfg, triples.iter().copied()).unwrap();
    assert_eq!(summary.num_triples, triples.len());
    assert!(summary.segments > 4, "expected rolled segments, got {}", summary.segments);
    assert!(summary.transpose_passes > 1, "expected multi-pass transpose");

    let csr = CsrGraph::from_triples(triples);
    for mode in [ReadMode::Resident, ReadMode::Stream { cache_blocks: 4 }] {
        let reader = StoreReader::open(&dir, mode).unwrap();
        assert_matches_csr(&reader, &csr);
        reader.verify().unwrap();
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn present_entities_match_negative_sampler_pool() {
    let dir = temp_store("present");
    let triples = random_triples(2, 500, 80, 4);
    build_from_sorted(&dir, StoreConfig::default(), triples.iter().copied()).unwrap();
    let reader = StoreReader::open(&dir, ReadMode::default()).unwrap();
    let g = rmpi_kg::KnowledgeGraph::from_triples(triples);
    assert_eq!(reader.present_entities(), g.present_entities());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn empty_store_roundtrips() {
    let dir = temp_store("empty");
    let summary = build_from_sorted(&dir, StoreConfig::default(), std::iter::empty()).unwrap();
    assert_eq!(summary.num_triples, 0);
    let reader = StoreReader::open(&dir, ReadMode::default()).unwrap();
    assert_eq!(reader.num_entities(), 0);
    assert_eq!(reader.num_triples(), 0);
    assert!(reader.present_entities().is_empty());
    reader.verify().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn unsorted_input_rejected() {
    let dir = temp_store("unsorted");
    let mut b = StoreBuilder::create(&dir, StoreConfig::default()).unwrap();
    b.push(Triple::new(5u32, 0u32, 1u32)).unwrap();
    let err = b.push(Triple::new(4u32, 0u32, 1u32)).unwrap_err();
    assert!(matches!(err, StoreError::Unsorted { index: 1, .. }), "{err}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn duplicates_are_kept() {
    let dir = temp_store("dups");
    let t = Triple::new(1u32, 0u32, 2u32);
    build_from_sorted(&dir, StoreConfig::default(), [t, t, t]).unwrap();
    let reader = StoreReader::open(&dir, ReadMode::default()).unwrap();
    assert_eq!(reader.num_triples(), 3);
    assert_eq!(reader.out_degree(EntityId(1)), 3);
    assert_eq!(reader.in_degree(EntityId(2)), 3);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn missing_manifest_is_not_a_store() {
    let dir = temp_store("nostore");
    std::fs::create_dir_all(&dir).unwrap();
    let err = StoreReader::open(&dir, ReadMode::default()).unwrap_err();
    assert!(matches!(err, StoreError::NotAStore(_)), "{err}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupted_segment_rejected_with_file_name() {
    let dir = temp_store("corrupt");
    let triples = random_triples(3, 2000, 100, 6);
    let cfg = StoreConfig { seg_records: 512, ..StoreConfig::default() };
    build_from_sorted(&dir, cfg, triples).unwrap();

    // Flip one byte in the middle of the second forward segment.
    let victim = dir.join("fwd-00001.seg");
    let mut bytes = std::fs::read(&victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&victim, &bytes).unwrap();

    // Stream open succeeds (sizes match) but verify() names the file…
    let reader = StoreReader::open(&dir, ReadMode::Stream { cache_blocks: 4 }).unwrap();
    let err = reader.verify().unwrap_err();
    match err {
        StoreError::Corrupt { ref file, .. } => assert_eq!(file, "fwd-00001.seg"),
        other => panic!("unexpected: {other}"),
    }
    // …and resident open refuses outright.
    let err = StoreReader::open(&dir, ReadMode::Resident).unwrap_err();
    assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn truncated_segment_rejected_at_open_with_offset() {
    let dir = temp_store("truncated");
    let triples = random_triples(4, 1000, 60, 4);
    build_from_sorted(&dir, StoreConfig::default(), triples).unwrap();
    let victim = dir.join("fwd-00000.seg");
    let bytes = std::fs::read(&victim).unwrap();
    let keep = bytes.len() - 24;
    std::fs::write(&victim, &bytes[..keep]).unwrap();
    let err = StoreReader::open(&dir, ReadMode::default()).unwrap_err();
    match err {
        StoreError::Corrupt { ref file, offset, .. } => {
            assert_eq!(file, "fwd-00000.seg");
            assert_eq!(offset, keep as u64, "offset reports the actual length");
        }
        other => panic!("unexpected: {other}"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn tampered_manifest_rejected_with_line() {
    let dir = temp_store("badmanifest");
    build_from_sorted(&dir, StoreConfig::default(), [Triple::new(0u32, 0u32, 1u32)]).unwrap();
    let path = dir.join("MANIFEST");
    let text = std::fs::read_to_string(&path).unwrap().replace("triples 1", "triples one");
    std::fs::write(&path, text).unwrap();
    let err = StoreReader::open(&dir, ReadMode::default()).unwrap_err();
    assert!(matches!(err, StoreError::Manifest { line: 4, .. }), "{err}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupted_index_rejected() {
    let dir = temp_store("badindex");
    build_from_sorted(&dir, StoreConfig::default(), random_triples(5, 300, 40, 3)).unwrap();
    let path = dir.join("index.bin");
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&path, bytes).unwrap();
    let err = StoreReader::open(&dir, ReadMode::default()).unwrap_err();
    match err {
        StoreError::Corrupt { ref file, .. } => assert_eq!(file, "index.bin"),
        other => panic!("unexpected: {other}"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn interrupted_build_leaves_no_store() {
    let dir = temp_store("interrupted");
    // First build succeeds…
    build_from_sorted(&dir, StoreConfig::default(), [Triple::new(0u32, 0u32, 1u32)]).unwrap();
    // …then a rebuild starts (clearing the manifest) and never finishes.
    let mut b = StoreBuilder::create(&dir, StoreConfig::default()).unwrap();
    b.push(Triple::new(0u32, 0u32, 1u32)).unwrap();
    drop(b);
    let err = StoreReader::open(&dir, ReadMode::default()).unwrap_err();
    assert!(matches!(err, StoreError::NotAStore(_)), "{err}");
    std::fs::remove_dir_all(&dir).unwrap();
}
