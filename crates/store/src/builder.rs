//! Building a store from a sorted triple stream.
//!
//! [`StoreBuilder`] accepts triples in ascending `(head, relation, tail)`
//! order — exactly what the chunked world generators and a sorted
//! in-memory graph emit — and writes forward segments as it goes, so peak
//! RSS is independent of triple count. Because the input is sorted by head,
//! the out-edge CSR offsets fall out of boundary tracking for free: the
//! `i`-th accepted triple *is* triple index `i`, and an entity's out-edges
//! are a contiguous run of forward records.
//!
//! Inverse segments (the in-edge view) need a transpose, which is the only
//! non-streaming step. It runs out-of-core: in-degrees are counted during
//! ingest (4 bytes per entity resident), then the forward segments are
//! re-scanned once per *tail bucket* — a contiguous entity range whose
//! inverse records fit in `transpose_budget_bytes` — and each bucket is
//! sorted and appended to the inverse segment chain. A 10M-triple world
//! with the default 64 MiB budget takes 3 scan passes.
//!
//! The MANIFEST is written last via write-to-temp + rename (the same
//! atomic-publish discipline as `rmpi_autograd::io::atomic_write_bytes`):
//! a crashed build leaves no manifest, and [`crate::StoreReader::open`]
//! refuses the directory instead of reading half a store.

use crate::format::{
    encode_fwd, encode_inv, Fnv64, FWD_BLOCK_BYTES, FWD_RECORD_BYTES, INV_BLOCK_BYTES,
    INV_RECORD_BYTES,
};
use crate::manifest::{fwd_name, inv_name, Manifest, SegmentMeta, INDEX_NAME, MANIFEST_NAME};
use crate::{Result, StoreError};
use rmpi_kg::{KnowledgeGraph, Triple};
use rmpi_testutil::failpoint;
use std::fs::{self, File};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// Failpoint hit once per record appended to a segment (`arm_after` to
/// interrupt a build mid-segment).
pub const SEG_WRITE_FAILPOINT: &str = "store::seg_write";

/// Failpoint hit when a finished segment is flushed and fsynced.
pub const SEG_CLOSE_FAILPOINT: &str = "store::seg_close";

/// Failpoint hit before the offsets index is written.
pub const INDEX_WRITE_FAILPOINT: &str = "store::index_write";

/// Failpoint hit before the manifest is atomically published — the last
/// moment a crash leaves a directory without a commit point.
pub const PUBLISH_FAILPOINT: &str = "store::publish";

/// Tuning knobs for [`StoreBuilder`]. The defaults build a 10M-triple world
/// comfortably inside a couple hundred MiB of RSS.
#[derive(Clone, Copy, Debug)]
pub struct StoreConfig {
    /// Records per segment file (the last segment of each kind may be
    /// shorter). Smaller segments mean more files but finer verification
    /// granularity.
    pub seg_records: usize,
    /// RAM ceiling for one transpose bucket, in bytes. A single entity
    /// whose in-edges alone exceed the budget still transposes correctly
    /// but overshoots it.
    pub transpose_budget_bytes: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig { seg_records: 1 << 20, transpose_budget_bytes: 64 << 20 }
    }
}

/// What a finished build produced, for logs and benches.
#[derive(Clone, Debug)]
pub struct StoreSummary {
    /// Entity id-space capacity.
    pub num_entities: usize,
    /// Relation id-space capacity.
    pub num_relations: usize,
    /// Total triples stored.
    pub num_triples: usize,
    /// Forward + inverse segment files written.
    pub segments: usize,
    /// Total bytes across all data files (segments + index).
    pub bytes: u64,
    /// Scan passes the transpose needed.
    pub transpose_passes: usize,
}

/// One segment file being written: bytes are hashed as they are handed to
/// the `BufWriter` — both a whole-file sum and a rolling per-64 KiB-block
/// sum — so closing a segment yields its full checksum table without a
/// second read. `block_bytes` is a record multiple, so block boundaries
/// always land between records.
struct SegWriter {
    file: String,
    out: BufWriter<File>,
    hash: Fnv64,
    block_hash: Fnv64,
    block_bytes: u64,
    block_sums: Vec<u64>,
    bytes: u64,
    records: u64,
}

impl SegWriter {
    fn create(dir: &Path, file: String, block_bytes: u64) -> Result<SegWriter> {
        let f = File::create(dir.join(&file))?;
        Ok(SegWriter {
            file,
            out: BufWriter::new(f),
            hash: Fnv64::new(),
            block_hash: Fnv64::new(),
            block_bytes,
            block_sums: Vec::new(),
            bytes: 0,
            records: 0,
        })
    }

    fn write_record(&mut self, rec: &[u8]) -> Result<()> {
        failpoint::io(SEG_WRITE_FAILPOINT)?;
        self.hash.update(rec);
        self.block_hash.update(rec);
        self.out.write_all(rec)?;
        self.bytes += rec.len() as u64;
        self.records += 1;
        if self.bytes % self.block_bytes == 0 {
            self.block_sums.push(self.block_hash.finish());
            self.block_hash = Fnv64::new();
        }
        Ok(())
    }

    fn close(mut self) -> Result<SegmentMeta> {
        failpoint::io(SEG_CLOSE_FAILPOINT)?;
        if self.bytes % self.block_bytes != 0 {
            self.block_sums.push(self.block_hash.finish());
        }
        let meta = SegmentMeta {
            file: self.file,
            records: self.records,
            bytes: self.bytes,
            checksum: self.hash.finish(),
            block_sums: self.block_sums,
        };
        let file = self.out.into_inner().map_err(|e| StoreError::Io(e.into_error()))?;
        file.sync_all()?;
        Ok(meta)
    }
}

/// Streaming store writer. See the module docs for the overall shape.
pub struct StoreBuilder {
    dir: PathBuf,
    cfg: StoreConfig,
    cur: Option<SegWriter>,
    fwd: Vec<SegmentMeta>,
    /// `out_off[e]` = triple index of e's first out-edge; grown as heads
    /// advance, completed to length `num_entities + 1` at finish.
    out_off: Vec<u64>,
    /// In-degree per entity, grown on demand as tails appear.
    in_deg: Vec<u32>,
    total: u64,
    last: Option<Triple>,
    max_entity: u64,
    max_relation: u64,
}

impl StoreBuilder {
    /// Start a build in `dir` (created if absent). Existing segment files
    /// are overwritten; the directory only becomes a valid store when
    /// [`StoreBuilder::finish`] publishes the manifest.
    pub fn create(dir: impl AsRef<Path>, cfg: StoreConfig) -> Result<StoreBuilder> {
        assert!(cfg.seg_records > 0, "seg_records must be positive");
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        // A stale manifest from a previous build would make a half-written
        // directory look valid; remove it first.
        let manifest_path = dir.join(MANIFEST_NAME);
        if manifest_path.exists() {
            fs::remove_file(&manifest_path)?;
        }
        Ok(StoreBuilder {
            dir,
            cfg,
            cur: None,
            fwd: Vec::new(),
            out_off: Vec::new(),
            in_deg: Vec::new(),
            total: 0,
            last: None,
            max_entity: 0,
            max_relation: 0,
        })
    }

    /// Append one triple. Input must be sorted ascending by
    /// `(head, relation, tail)`; duplicates are allowed and kept.
    pub fn push(&mut self, t: Triple) -> Result<()> {
        if let Some(prev) = self.last {
            if t < prev {
                return Err(StoreError::Unsorted {
                    index: self.total,
                    message: format!("{t} after {prev}"),
                });
            }
        }
        assert!(self.total < u32::MAX as u64, "store capped at u32::MAX triples");
        self.last = Some(t);
        let h = t.head.0 as u64;
        let ta = t.tail.0 as u64;
        self.max_entity = self.max_entity.max(h + 1).max(ta + 1);
        self.max_relation = self.max_relation.max(t.relation.0 as u64 + 1);
        // Heads are non-decreasing: entities in (prev_head, head] start
        // their out-run at this triple index.
        while self.out_off.len() <= h as usize {
            self.out_off.push(self.total);
        }
        let ti = t.tail.index();
        if self.in_deg.len() <= ti {
            self.in_deg.resize(ti + 1, 0);
        }
        self.in_deg[ti] += 1;

        if self.cur.is_none() {
            self.cur =
                Some(SegWriter::create(&self.dir, fwd_name(self.fwd.len()), FWD_BLOCK_BYTES)?);
        }
        let mut rec = [0u8; FWD_RECORD_BYTES];
        encode_fwd(t, &mut rec);
        let seg = self.cur.as_mut().expect("segment open");
        seg.write_record(&rec)?;
        self.total += 1;
        if seg.records as usize >= self.cfg.seg_records {
            let seg = self.cur.take().expect("segment open");
            self.fwd.push(seg.close()?);
        }
        Ok(())
    }

    /// Transpose, write the offsets index, publish the manifest.
    pub fn finish(mut self) -> Result<StoreSummary> {
        if let Some(seg) = self.cur.take() {
            self.fwd.push(seg.close()?);
        }
        let n = self.max_entity as usize;
        // Complete out_off to length n + 1 (entities past the last head
        // have empty out-runs).
        while self.out_off.len() <= n {
            self.out_off.push(self.total);
        }
        self.in_deg.resize(n, 0);

        let mut in_off = Vec::with_capacity(n + 1);
        let mut acc = 0u64;
        in_off.push(0);
        for &d in &self.in_deg {
            acc += d as u64;
            in_off.push(acc);
        }
        debug_assert_eq!(acc, self.total);

        let (inv, passes) = self.transpose(&in_off)?;

        // Offsets index: out_off ++ in_off, u64 LE, hashed on the way out.
        failpoint::io(INDEX_WRITE_FAILPOINT)?;
        let mut index_hash = Fnv64::new();
        let mut index_bytes = 0u64;
        {
            let f = File::create(self.dir.join(INDEX_NAME))?;
            let mut w = BufWriter::new(f);
            for &v in self.out_off.iter().chain(in_off.iter()) {
                let b = v.to_le_bytes();
                index_hash.update(&b);
                w.write_all(&b)?;
                index_bytes += 8;
            }
            let f = w.into_inner().map_err(|e| StoreError::Io(e.into_error()))?;
            f.sync_all()?;
        }

        let manifest = Manifest {
            version: 2,
            num_entities: n as u64,
            num_relations: self.max_relation,
            num_triples: self.total,
            seg_records: self.cfg.seg_records as u64,
            index_bytes,
            index_checksum: index_hash.finish(),
            fwd: self.fwd,
            inv,
        };
        atomic_publish(&self.dir, MANIFEST_NAME, manifest.to_text().as_bytes())?;

        let data_bytes: u64 = manifest.fwd.iter().chain(manifest.inv.iter()).map(|s| s.bytes).sum();
        Ok(StoreSummary {
            num_entities: n,
            num_relations: manifest.num_relations as usize,
            num_triples: self.total as usize,
            segments: manifest.fwd.len() + manifest.inv.len(),
            bytes: data_bytes + index_bytes,
            transpose_passes: passes,
        })
    }

    /// Out-of-core transpose: re-scan forward segments once per tail
    /// bucket, emit `(tail, rel, head, fwd_idx)` sorted by `(tail, fwd_idx)`.
    fn transpose(&self, in_off: &[u64]) -> Result<(Vec<SegmentMeta>, usize)> {
        let n = in_off.len() - 1;
        // Carve entities into contiguous buckets whose inverse records fit
        // the budget.
        let budget_records = (self.cfg.transpose_budget_bytes / INV_RECORD_BYTES).max(1) as u64;
        let mut buckets: Vec<(usize, usize)> = Vec::new();
        let mut start = 0usize;
        while start < n {
            let mut end = start;
            while end < n {
                let records = in_off[end + 1] - in_off[start];
                if records > budget_records && end > start {
                    break;
                }
                end += 1;
                if records > budget_records {
                    break; // single over-budget entity gets its own bucket
                }
            }
            buckets.push((start, end));
            start = end;
        }

        let mut inv_segs: Vec<SegmentMeta> = Vec::new();
        let mut cur: Option<SegWriter> = None;
        let mut scratch: Vec<(u32, u32, u32, u32)> = Vec::new();
        for &(lo, hi) in &buckets {
            scratch.clear();
            scratch.reserve((in_off[hi] - in_off[lo]) as usize);
            let mut idx = 0u32;
            for seg in &self.fwd {
                let f = File::open(self.dir.join(&seg.file))?;
                let mut r = BufReader::with_capacity(1 << 16, f);
                let mut rec = [0u8; FWD_RECORD_BYTES];
                for _ in 0..seg.records {
                    r.read_exact(&mut rec)?;
                    let t = crate::format::decode_fwd(&rec);
                    let tail = t.tail.index();
                    if tail >= lo && tail < hi {
                        scratch.push((t.tail.0, t.relation.0, t.head.0, idx));
                    }
                    idx += 1;
                }
            }
            // Scan order is ascending fwd_idx, so a sort by (tail, idx)
            // equals a stable sort by tail; unstable sort with the full key
            // is cheapest.
            scratch.sort_unstable_by_key(|&(tail, _, _, fi)| (tail, fi));
            let mut rec = [0u8; INV_RECORD_BYTES];
            for &(tail, rel, head, fi) in &scratch {
                if cur.is_none() {
                    cur = Some(SegWriter::create(
                        &self.dir,
                        inv_name(inv_segs.len()),
                        INV_BLOCK_BYTES,
                    )?);
                }
                encode_inv(
                    rmpi_kg::EntityId(tail),
                    rmpi_kg::RelationId(rel),
                    rmpi_kg::EntityId(head),
                    fi,
                    &mut rec,
                );
                let seg = cur.as_mut().expect("segment open");
                seg.write_record(&rec)?;
                if seg.records as usize >= self.cfg.seg_records {
                    let seg = cur.take().expect("segment open");
                    inv_segs.push(seg.close()?);
                }
            }
        }
        if let Some(seg) = cur {
            inv_segs.push(seg.close()?);
        }
        Ok((inv_segs, buckets.len().max(1)))
    }
}

/// Build a store from an already-sorted triple iterator.
pub fn build_from_sorted(
    dir: impl AsRef<Path>,
    cfg: StoreConfig,
    triples: impl IntoIterator<Item = Triple>,
) -> Result<StoreSummary> {
    let mut b = StoreBuilder::create(dir, cfg)?;
    for t in triples {
        b.push(t)?;
    }
    b.finish()
}

/// Build a store from an in-memory graph (sorts a copy of the triples; a
/// convenience for tests and bundle export, not the streaming path).
pub fn build_from_graph(
    dir: impl AsRef<Path>,
    cfg: StoreConfig,
    g: &KnowledgeGraph,
) -> Result<StoreSummary> {
    let mut triples = g.triples().to_vec();
    triples.sort_unstable();
    build_from_sorted(dir, cfg, triples)
}

/// Write `bytes` to `dir/name` atomically: temp file, fsync, rename, then
/// directory fsync. The directory fsync is what makes the *rename* durable;
/// when it fails the publish still completed, so the failure is counted and
/// logged (`io.dir_fsync_failures`) rather than returned.
fn atomic_publish(dir: &Path, name: &str, bytes: &[u8]) -> Result<()> {
    failpoint::io(PUBLISH_FAILPOINT)?;
    let tmp = dir.join(format!("{name}.tmp"));
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, dir.join(name))?;
    match File::open(dir).and_then(|d| d.sync_all()) {
        Ok(()) => {}
        Err(e) => rmpi_obs::note_dir_fsync_failure(dir, &e),
    }
    Ok(())
}

impl StoreBuilder {
    /// Expose the builder methods on the type for discoverability; the
    /// free functions above are thin wrappers.
    pub fn build_from_sorted(
        dir: impl AsRef<Path>,
        cfg: StoreConfig,
        triples: impl IntoIterator<Item = Triple>,
    ) -> Result<StoreSummary> {
        build_from_sorted(dir, cfg, triples)
    }

    /// See [`build_from_graph`].
    pub fn build_from_graph(
        dir: impl AsRef<Path>,
        cfg: StoreConfig,
        g: &KnowledgeGraph,
    ) -> Result<StoreSummary> {
        build_from_graph(dir, cfg, g)
    }
}
