//! The store MANIFEST: a line-oriented text file, written last.
//!
//! The manifest is the commit point of a build. Segment and index files are
//! written first; only once they are all durable does the builder write
//! `MANIFEST` via write-to-temp + rename, so a crashed build leaves a
//! directory without a manifest — recognisably not a store — rather than a
//! plausible-looking broken one. Every data file is listed with its record
//! count, byte length, and FNV-64 checksum, which is what lets
//! [`crate::StoreReader::verify`] detect truncation and bit-rot and name
//! the offending file.
//!
//! Version 1 format (all one-line records, checksums as 16 hex digits):
//!
//! ```text
//! rmpi-store v1
//! entities <n>
//! relations <n>
//! triples <n>
//! seg_records <n>
//! index index.bin <bytes> <fnv64>
//! fwd fwd-00000.seg <records> <bytes> <fnv64>
//! inv inv-00000.seg <records> <bytes> <fnv64>
//! end
//! ```
//!
//! Version 2 (what the builder writes today; v1 stays readable) adds two
//! durability features:
//!
//! * After each segment line, a `blocks <file> <fnv64>...` line carries one
//!   checksum per 64 KiB block (geometry from [`crate::format`]), so a
//!   streaming reader can verify each block at cache-fill time instead of
//!   trusting whole-file sums it never recomputes.
//! * A `sum <fnv64>` line just before `end` is the FNV-64 of every manifest
//!   byte above it, making the manifest itself tamper-evident: any byte
//!   flip in the metadata — a digit of `seg_records`, a hex digit of a
//!   checksum — is caught at parse time instead of silently re-mapping
//!   records to the wrong segment.
//!
//! Parsing also cross-checks structure in both versions: segment byte
//! lengths must equal `records × record_size`, every segment but the last
//! of each kind must hold exactly `seg_records` records, and (v2) each
//! segment's block-checksum count must match its length.

use crate::format::{fnv64, FWD_BLOCK_BYTES, FWD_RECORD_BYTES, INV_BLOCK_BYTES, INV_RECORD_BYTES};
use crate::{Result, StoreError};
use std::fmt::Write as _;

/// File name of the manifest inside a store directory.
pub const MANIFEST_NAME: &str = "MANIFEST";

/// Magic first line of a version-1 manifest (still accepted).
pub const MAGIC: &str = "rmpi-store v1";

/// Magic first line of a version-2 manifest (what the builder writes).
pub const MAGIC_V2: &str = "rmpi-store v2";

/// Name of the resident offsets index file.
pub const INDEX_NAME: &str = "index.bin";

/// File name of forward segment `i`.
pub fn fwd_name(i: usize) -> String {
    format!("fwd-{i:05}.seg")
}

/// File name of inverse segment `i`.
pub fn inv_name(i: usize) -> String {
    format!("inv-{i:05}.seg")
}

/// Manifest entry for one data segment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SegmentMeta {
    /// File name relative to the store directory.
    pub file: String,
    /// Fixed-width records in the file.
    pub records: u64,
    /// Byte length (always `records * record_size`).
    pub bytes: u64,
    /// FNV-1a 64 of the raw file bytes.
    pub checksum: u64,
    /// FNV-1a 64 per 64 KiB block (v2; empty for a v1 manifest). Block
    /// geometry is `FWD_BLOCK_BYTES`/`INV_BLOCK_BYTES` from
    /// [`crate::format`]; the final block covers the file tail.
    pub block_sums: Vec<u64>,
}

impl SegmentMeta {
    /// How many checksum blocks a segment of `bytes` length has.
    pub fn block_count(bytes: u64, block_bytes: u64) -> u64 {
        bytes.div_ceil(block_bytes)
    }
}

/// Parsed contents of a store MANIFEST.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Manifest {
    /// Format version (1 or 2) — decides what `to_text` emits and what
    /// `parse` demanded.
    pub version: u32,
    /// Entity id-space capacity (max id + 1).
    pub num_entities: u64,
    /// Relation id-space capacity (max id + 1).
    pub num_relations: u64,
    /// Total triples across all forward segments.
    pub num_triples: u64,
    /// Records per full segment (the last segment of each kind may be
    /// shorter).
    pub seg_records: u64,
    /// Byte length of `index.bin`.
    pub index_bytes: u64,
    /// FNV-1a 64 of `index.bin`.
    pub index_checksum: u64,
    /// Forward segments in order.
    pub fwd: Vec<SegmentMeta>,
    /// Inverse segments in order.
    pub inv: Vec<SegmentMeta>,
}

impl Manifest {
    /// Serialise to the text format of `self.version`.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        let magic = if self.version >= 2 { MAGIC_V2 } else { MAGIC };
        let _ = writeln!(s, "{magic}");
        let _ = writeln!(s, "entities {}", self.num_entities);
        let _ = writeln!(s, "relations {}", self.num_relations);
        let _ = writeln!(s, "triples {}", self.num_triples);
        let _ = writeln!(s, "seg_records {}", self.seg_records);
        let _ = writeln!(s, "index {INDEX_NAME} {} {:016x}", self.index_bytes, self.index_checksum);
        let seg_line = |s: &mut String, kind: &str, seg: &SegmentMeta| {
            let _ = writeln!(
                s,
                "{kind} {} {} {} {:016x}",
                seg.file, seg.records, seg.bytes, seg.checksum
            );
            if self.version >= 2 && !seg.block_sums.is_empty() {
                let _ = write!(s, "blocks {}", seg.file);
                for sum in &seg.block_sums {
                    let _ = write!(s, " {sum:016x}");
                }
                s.push('\n');
            }
        };
        for seg in &self.fwd {
            seg_line(&mut s, "fwd", seg);
        }
        for seg in &self.inv {
            seg_line(&mut s, "inv", seg);
        }
        if self.version >= 2 {
            let sum = fnv64(s.as_bytes());
            let _ = writeln!(s, "sum {sum:016x}");
        }
        let _ = writeln!(s, "end");
        s
    }

    /// Parse the text format (v1 or v2), reporting the offending line on
    /// error. A v2 manifest must carry a valid `sum` self-checksum and one
    /// `blocks` line per segment.
    pub fn parse(text: &str) -> Result<Manifest> {
        let bad = |line: usize, message: String| StoreError::Manifest { line, message };
        let mut lines = text.lines().enumerate();
        let version = match lines.next() {
            Some((_, l)) if l == MAGIC => 1,
            Some((_, l)) if l == MAGIC_V2 => 2,
            Some((i, l)) => {
                return Err(bad(i + 1, format!("expected `{MAGIC}` or `{MAGIC_V2}`, found `{l}`")))
            }
            None => return Err(bad(1, "empty manifest".into())),
        };
        let mut num_entities = None;
        let mut num_relations = None;
        let mut num_triples = None;
        let mut seg_records = None;
        let mut index: Option<(u64, u64)> = None;
        let mut fwd: Vec<SegmentMeta> = Vec::new();
        let mut inv: Vec<SegmentMeta> = Vec::new();
        // Which vec got the most recent segment line — a `blocks` line must
        // immediately follow its segment's own line.
        let mut last_seg: Option<(bool, usize)> = None;
        let mut saw_end = false;
        let mut saw_sum = false;
        for (i, line) in lines {
            let lineno = i + 1;
            if saw_end {
                return Err(bad(lineno, "content after `end`".into()));
            }
            let mut parts = line.split_whitespace();
            let key = parts.next().unwrap_or("");
            if saw_sum && key != "end" {
                return Err(bad(lineno, "content between `sum` and `end`".into()));
            }
            let mut next_u64 = |what: &str| -> Result<u64> {
                let tok = parts.next().ok_or_else(|| bad(lineno, format!("missing {what}")))?;
                tok.parse::<u64>().map_err(|_| bad(lineno, format!("bad {what} `{tok}`")))
            };
            match key {
                "entities" => num_entities = Some(next_u64("entity count")?),
                "relations" => num_relations = Some(next_u64("relation count")?),
                "triples" => num_triples = Some(next_u64("triple count")?),
                "seg_records" => seg_records = Some(next_u64("segment size")?),
                "index" => {
                    let file = parts
                        .next()
                        .ok_or_else(|| bad(lineno, "missing index file name".into()))?
                        .to_string();
                    if file != INDEX_NAME {
                        return Err(bad(lineno, format!("unexpected index file `{file}`")));
                    }
                    let bytes = parse_u64(parts.next(), lineno, "index bytes")?;
                    let checksum = parse_hex(parts.next(), lineno, "index checksum")?;
                    index = Some((bytes, checksum));
                }
                "fwd" | "inv" => {
                    let file = parts
                        .next()
                        .ok_or_else(|| bad(lineno, "missing segment file name".into()))?
                        .to_string();
                    let records = parse_u64(parts.next(), lineno, "segment records")?;
                    let bytes = parse_u64(parts.next(), lineno, "segment bytes")?;
                    let checksum = parse_hex(parts.next(), lineno, "segment checksum")?;
                    let meta =
                        SegmentMeta { file, records, bytes, checksum, block_sums: Vec::new() };
                    if key == "fwd" {
                        fwd.push(meta);
                        last_seg = Some((true, fwd.len() - 1));
                    } else {
                        inv.push(meta);
                        last_seg = Some((false, inv.len() - 1));
                    }
                }
                "blocks" => {
                    let file = parts
                        .next()
                        .ok_or_else(|| bad(lineno, "missing blocks file name".into()))?;
                    let meta = match last_seg {
                        Some((true, i)) => &mut fwd[i],
                        Some((false, i)) => &mut inv[i],
                        None => return Err(bad(lineno, "`blocks` line before any segment".into())),
                    };
                    if meta.file != file {
                        return Err(bad(
                            lineno,
                            format!("`blocks {file}` does not follow its segment line (last segment: {})", meta.file),
                        ));
                    }
                    if !meta.block_sums.is_empty() {
                        return Err(bad(lineno, format!("duplicate `blocks` line for {file}")));
                    }
                    for tok in parts.by_ref() {
                        let sum = u64::from_str_radix(tok, 16)
                            .map_err(|_| bad(lineno, format!("bad block checksum `{tok}`")))?;
                        meta.block_sums.push(sum);
                    }
                    if meta.block_sums.is_empty() {
                        return Err(bad(lineno, format!("`blocks {file}` lists no checksums")));
                    }
                }
                "sum" => {
                    let expect = parse_hex(parts.next(), lineno, "manifest checksum")?;
                    // The sum covers every manifest byte before this line.
                    // `line` is a subslice of `text`, so its offset is the
                    // pointer distance from the start.
                    let line_start = line.as_ptr() as usize - text.as_ptr() as usize;
                    let got = fnv64(&text.as_bytes()[..line_start]);
                    if got != expect {
                        return Err(bad(
                            lineno,
                            format!("manifest self-checksum mismatch: recorded {expect:016x}, computed {got:016x} — the manifest was altered after it was written"),
                        ));
                    }
                    saw_sum = true;
                }
                "end" => saw_end = true,
                other => return Err(bad(lineno, format!("unknown key `{other}`"))),
            }
            if parts.next().is_some() && key != "end" {
                return Err(bad(lineno, "trailing tokens".into()));
            }
        }
        if !saw_end {
            return Err(bad(text.lines().count(), "missing `end` (truncated manifest)".into()));
        }
        let last_line = text.lines().count();
        if version >= 2 && !saw_sum {
            return Err(bad(last_line, "v2 manifest missing `sum` self-checksum line".into()));
        }
        let require = |v: Option<u64>, what: &str| {
            v.ok_or_else(|| bad(last_line, format!("missing `{what}` line")))
        };
        let (index_bytes, index_checksum) =
            index.ok_or_else(|| bad(last_line, "missing `index` line".into()))?;
        let m = Manifest {
            version,
            num_entities: require(num_entities, "entities")?,
            num_relations: require(num_relations, "relations")?,
            num_triples: require(num_triples, "triples")?,
            seg_records: require(seg_records, "seg_records")?,
            index_bytes,
            index_checksum,
            fwd,
            inv,
        };
        m.validate().map_err(|message| bad(last_line, message))?;
        Ok(m)
    }

    /// Structural cross-checks over a parsed manifest. Returns the problem
    /// description on failure (the caller attaches a line number).
    fn validate(&self) -> std::result::Result<(), String> {
        let fwd_total: u64 = self.fwd.iter().map(|s| s.records).sum();
        if fwd_total != self.num_triples {
            return Err(format!(
                "fwd segments hold {fwd_total} records, manifest says {} triples",
                self.num_triples
            ));
        }
        let inv_total: u64 = self.inv.iter().map(|s| s.records).sum();
        if inv_total != self.num_triples {
            return Err(format!(
                "inv segments hold {inv_total} records, expected {}",
                self.num_triples
            ));
        }
        for (kind, segs, rec_bytes, block_bytes) in [
            ("fwd", &self.fwd, FWD_RECORD_BYTES as u64, FWD_BLOCK_BYTES),
            ("inv", &self.inv, INV_RECORD_BYTES as u64, INV_BLOCK_BYTES),
        ] {
            for (i, seg) in segs.iter().enumerate() {
                if seg.bytes != seg.records * rec_bytes {
                    return Err(format!(
                        "{kind} segment {} declares {} bytes for {} records ({}-byte records)",
                        seg.file, seg.bytes, seg.records, rec_bytes
                    ));
                }
                if seg.records == 0 {
                    return Err(format!("{kind} segment {} is empty", seg.file));
                }
                if i + 1 < segs.len() && seg.records != self.seg_records {
                    return Err(format!(
                        "{kind} segment {} holds {} records but only the last segment may be short (seg_records {})",
                        seg.file, seg.records, self.seg_records
                    ));
                }
                if seg.records > self.seg_records {
                    return Err(format!(
                        "{kind} segment {} holds {} records, over seg_records {}",
                        seg.file, seg.records, self.seg_records
                    ));
                }
                if self.version >= 2 {
                    let want = SegmentMeta::block_count(seg.bytes, block_bytes);
                    if seg.block_sums.len() as u64 != want {
                        return Err(format!(
                            "{kind} segment {} has {} block checksums, {} bytes need {want}",
                            seg.file,
                            seg.block_sums.len(),
                            seg.bytes
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

fn parse_u64(tok: Option<&str>, line: usize, what: &str) -> Result<u64> {
    let tok =
        tok.ok_or_else(|| StoreError::Manifest { line, message: format!("missing {what}") })?;
    tok.parse::<u64>()
        .map_err(|_| StoreError::Manifest { line, message: format!("bad {what} `{tok}`") })
}

fn parse_hex(tok: Option<&str>, line: usize, what: &str) -> Result<u64> {
    let tok =
        tok.ok_or_else(|| StoreError::Manifest { line, message: format!("missing {what}") })?;
    u64::from_str_radix(tok, 16)
        .map_err(|_| StoreError::Manifest { line, message: format!("bad {what} `{tok}`") })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            version: 1,
            num_entities: 10,
            num_relations: 3,
            num_triples: 7,
            seg_records: 4,
            index_bytes: 176,
            index_checksum: 0xdead_beef,
            fwd: vec![
                SegmentMeta {
                    file: fwd_name(0),
                    records: 4,
                    bytes: 48,
                    checksum: 1,
                    block_sums: vec![],
                },
                SegmentMeta {
                    file: fwd_name(1),
                    records: 3,
                    bytes: 36,
                    checksum: 2,
                    block_sums: vec![],
                },
            ],
            inv: vec![
                SegmentMeta {
                    file: inv_name(0),
                    records: 4,
                    bytes: 64,
                    checksum: 3,
                    block_sums: vec![],
                },
                SegmentMeta {
                    file: inv_name(1),
                    records: 3,
                    bytes: 48,
                    checksum: 4,
                    block_sums: vec![],
                },
            ],
        }
    }

    fn sample_v2() -> Manifest {
        let mut m = sample();
        m.version = 2;
        // Segments are far below one block, so one checksum each.
        for seg in m.fwd.iter_mut().chain(m.inv.iter_mut()) {
            seg.block_sums = vec![0xabcd];
        }
        m
    }

    #[test]
    fn roundtrip() {
        let m = sample();
        assert_eq!(Manifest::parse(&m.to_text()).unwrap(), m);
    }

    #[test]
    fn roundtrip_v2() {
        let m = sample_v2();
        let text = m.to_text();
        assert!(text.starts_with(MAGIC_V2), "{text}");
        assert!(text.contains("blocks fwd-00000.seg 000000000000abcd"), "{text}");
        assert!(text.contains("\nsum "), "{text}");
        assert_eq!(Manifest::parse(&text).unwrap(), m);
    }

    #[test]
    fn rejects_bad_magic() {
        let err = Manifest::parse("rmpi-store v9\nend\n").unwrap_err();
        assert!(matches!(err, StoreError::Manifest { line: 1, .. }), "{err}");
    }

    #[test]
    fn rejects_truncation() {
        let text = sample().to_text();
        let cut = text.strip_suffix("end\n").unwrap();
        let err = Manifest::parse(cut).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
    }

    #[test]
    fn rejects_record_count_mismatch() {
        let mut m = sample();
        m.num_triples = 99;
        let err = Manifest::parse(&m.to_text()).unwrap_err();
        assert!(err.to_string().contains("99"), "{err}");
    }

    #[test]
    fn rejects_byte_length_mismatch() {
        let mut m = sample();
        m.fwd[0].bytes = 47;
        let err = Manifest::parse(&m.to_text()).unwrap_err();
        assert!(err.to_string().contains("47 bytes"), "{err}");
    }

    #[test]
    fn rejects_short_non_final_segment() {
        let mut m = sample();
        m.fwd[0].records = 3;
        m.fwd[0].bytes = 36;
        m.fwd[1].records = 4;
        m.fwd[1].bytes = 48;
        let err = Manifest::parse(&m.to_text()).unwrap_err();
        assert!(err.to_string().contains("only the last segment may be short"), "{err}");
    }

    #[test]
    fn v2_requires_self_checksum() {
        let mut text = sample_v2().to_text();
        let sum_start = text.find("\nsum ").unwrap();
        let end_start = text.rfind("end\n").unwrap();
        text.replace_range(sum_start + 1..end_start, "");
        let err = Manifest::parse(&text).unwrap_err();
        assert!(err.to_string().contains("missing `sum`"), "{err}");
    }

    #[test]
    fn v2_requires_block_sums() {
        let m = sample_v2();
        let text = m.to_text().replace("blocks fwd-00001.seg 000000000000abcd\n", "");
        let err = Manifest::parse(&text).unwrap_err();
        // Dropping a line invalidates the self-checksum first — also a
        // detection, but assert the structural check alone by rebuilding
        // the sum line.
        assert!(err.to_string().contains("self-checksum"), "{err}");
        let m2 = {
            let mut m2 = m;
            m2.fwd[1].block_sums.clear();
            m2
        };
        // to_text skips empty block_sums, and parse rejects the count.
        let err2 = Manifest::parse(&m2.to_text()).unwrap_err();
        assert!(err2.to_string().contains("block checksums"), "{err2}");
    }

    #[test]
    fn any_single_byte_flip_in_v2_text_is_detected() {
        let text = sample_v2().to_text();
        let bytes = text.as_bytes();
        for pos in (0..bytes.len()).step_by(7) {
            for bit in [0, 3, 6] {
                let mut copy = bytes.to_vec();
                copy[pos] ^= 1 << bit;
                if copy == bytes {
                    continue;
                }
                // Non-UTF8 bytes cannot even reach the parser. Otherwise:
                // either the parser rejects the damage, or the flip was
                // semantically invisible (e.g. whitespace after the summed
                // region) and the result is identical — never a silently
                // *different* manifest.
                if let Ok(flipped) = String::from_utf8(copy) {
                    if let Ok(parsed) = Manifest::parse(&flipped) {
                        assert_eq!(
                            parsed,
                            sample_v2(),
                            "flip at byte {pos} bit {bit} silently altered the manifest:\n{flipped}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn names_offending_line() {
        let mut text = sample().to_text();
        text = text.replace("seg_records 4", "seg_records four");
        let err = Manifest::parse(&text).unwrap_err();
        match err {
            StoreError::Manifest { line, ref message } => {
                assert_eq!(line, 5);
                assert!(message.contains("four"));
            }
            other => panic!("unexpected: {other}"),
        }
    }
}
