//! The store MANIFEST: a line-oriented text file, written last.
//!
//! The manifest is the commit point of a build. Segment and index files are
//! written first; only once they are all durable does the builder write
//! `MANIFEST` via write-to-temp + rename, so a crashed build leaves a
//! directory without a manifest — recognisably not a store — rather than a
//! plausible-looking broken one. Every data file is listed with its record
//! count, byte length, and FNV-64 checksum, which is what lets
//! [`crate::StoreReader::verify`] detect truncation and bit-rot and name
//! the offending file.
//!
//! Format (all one-line records, checksums as 16 hex digits):
//!
//! ```text
//! rmpi-store v1
//! entities <n>
//! relations <n>
//! triples <n>
//! seg_records <n>
//! index index.bin <bytes> <fnv64>
//! fwd fwd-00000.seg <records> <bytes> <fnv64>
//! inv inv-00000.seg <records> <bytes> <fnv64>
//! end
//! ```

use crate::{Result, StoreError};
use std::fmt::Write as _;

/// File name of the manifest inside a store directory.
pub const MANIFEST_NAME: &str = "MANIFEST";

/// Magic first line; bump the version to break old readers loudly.
pub const MAGIC: &str = "rmpi-store v1";

/// Name of the resident offsets index file.
pub const INDEX_NAME: &str = "index.bin";

/// File name of forward segment `i`.
pub fn fwd_name(i: usize) -> String {
    format!("fwd-{i:05}.seg")
}

/// File name of inverse segment `i`.
pub fn inv_name(i: usize) -> String {
    format!("inv-{i:05}.seg")
}

/// Manifest entry for one data segment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SegmentMeta {
    /// File name relative to the store directory.
    pub file: String,
    /// Fixed-width records in the file.
    pub records: u64,
    /// Byte length (always `records * record_size`).
    pub bytes: u64,
    /// FNV-1a 64 of the raw file bytes.
    pub checksum: u64,
}

/// Parsed contents of a store MANIFEST.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Manifest {
    /// Entity id-space capacity (max id + 1).
    pub num_entities: u64,
    /// Relation id-space capacity (max id + 1).
    pub num_relations: u64,
    /// Total triples across all forward segments.
    pub num_triples: u64,
    /// Records per full segment (the last segment of each kind may be
    /// shorter).
    pub seg_records: u64,
    /// Byte length of `index.bin`.
    pub index_bytes: u64,
    /// FNV-1a 64 of `index.bin`.
    pub index_checksum: u64,
    /// Forward segments in order.
    pub fwd: Vec<SegmentMeta>,
    /// Inverse segments in order.
    pub inv: Vec<SegmentMeta>,
}

impl Manifest {
    /// Serialise to the text format.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{MAGIC}");
        let _ = writeln!(s, "entities {}", self.num_entities);
        let _ = writeln!(s, "relations {}", self.num_relations);
        let _ = writeln!(s, "triples {}", self.num_triples);
        let _ = writeln!(s, "seg_records {}", self.seg_records);
        let _ = writeln!(s, "index {INDEX_NAME} {} {:016x}", self.index_bytes, self.index_checksum);
        for seg in &self.fwd {
            let _ = writeln!(s, "fwd {} {} {} {:016x}", seg.file, seg.records, seg.bytes, seg.checksum);
        }
        for seg in &self.inv {
            let _ = writeln!(s, "inv {} {} {} {:016x}", seg.file, seg.records, seg.bytes, seg.checksum);
        }
        let _ = writeln!(s, "end");
        s
    }

    /// Parse the text format, reporting the offending line on error.
    pub fn parse(text: &str) -> Result<Manifest> {
        let bad = |line: usize, message: String| StoreError::Manifest { line, message };
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, l)) if l == MAGIC => {}
            Some((i, l)) => return Err(bad(i + 1, format!("expected `{MAGIC}`, found `{l}`"))),
            None => return Err(bad(1, "empty manifest".into())),
        }
        let mut num_entities = None;
        let mut num_relations = None;
        let mut num_triples = None;
        let mut seg_records = None;
        let mut index: Option<(u64, u64)> = None;
        let mut fwd = Vec::new();
        let mut inv = Vec::new();
        let mut saw_end = false;
        for (i, line) in lines {
            let lineno = i + 1;
            if saw_end {
                return Err(bad(lineno, "content after `end`".into()));
            }
            let mut parts = line.split_whitespace();
            let key = parts.next().unwrap_or("");
            let mut next_u64 = |what: &str| -> Result<u64> {
                let tok = parts
                    .next()
                    .ok_or_else(|| bad(lineno, format!("missing {what}")))?;
                tok.parse::<u64>().map_err(|_| bad(lineno, format!("bad {what} `{tok}`")))
            };
            match key {
                "entities" => num_entities = Some(next_u64("entity count")?),
                "relations" => num_relations = Some(next_u64("relation count")?),
                "triples" => num_triples = Some(next_u64("triple count")?),
                "seg_records" => seg_records = Some(next_u64("segment size")?),
                "index" => {
                    let file = parts
                        .next()
                        .ok_or_else(|| bad(lineno, "missing index file name".into()))?
                        .to_string();
                    if file != INDEX_NAME {
                        return Err(bad(lineno, format!("unexpected index file `{file}`")));
                    }
                    let bytes = parse_u64(parts.next(), lineno, "index bytes")?;
                    let checksum = parse_hex(parts.next(), lineno, "index checksum")?;
                    index = Some((bytes, checksum));
                }
                "fwd" | "inv" => {
                    let file = parts
                        .next()
                        .ok_or_else(|| bad(lineno, "missing segment file name".into()))?
                        .to_string();
                    let records = parse_u64(parts.next(), lineno, "segment records")?;
                    let bytes = parse_u64(parts.next(), lineno, "segment bytes")?;
                    let checksum = parse_hex(parts.next(), lineno, "segment checksum")?;
                    let meta = SegmentMeta { file, records, bytes, checksum };
                    if key == "fwd" {
                        fwd.push(meta);
                    } else {
                        inv.push(meta);
                    }
                }
                "end" => saw_end = true,
                other => return Err(bad(lineno, format!("unknown key `{other}`"))),
            }
            if parts.next().is_some() && key != "end" {
                return Err(bad(lineno, "trailing tokens".into()));
            }
        }
        if !saw_end {
            return Err(bad(text.lines().count(), "missing `end` (truncated manifest)".into()));
        }
        let line_of_missing = text.lines().count();
        let require = |v: Option<u64>, what: &str| {
            v.ok_or_else(|| bad(line_of_missing, format!("missing `{what}` line")))
        };
        let (index_bytes, index_checksum) =
            index.ok_or_else(|| bad(line_of_missing, "missing `index` line".into()))?;
        let m = Manifest {
            num_entities: require(num_entities, "entities")?,
            num_relations: require(num_relations, "relations")?,
            num_triples: require(num_triples, "triples")?,
            seg_records: require(seg_records, "seg_records")?,
            index_bytes,
            index_checksum,
            fwd,
            inv,
        };
        let fwd_total: u64 = m.fwd.iter().map(|s| s.records).sum();
        if fwd_total != m.num_triples {
            return Err(bad(
                line_of_missing,
                format!("fwd segments hold {fwd_total} records, manifest says {} triples", m.num_triples),
            ));
        }
        let inv_total: u64 = m.inv.iter().map(|s| s.records).sum();
        if inv_total != m.num_triples {
            return Err(bad(
                line_of_missing,
                format!("inv segments hold {inv_total} records, expected {}", m.num_triples),
            ));
        }
        Ok(m)
    }
}

fn parse_u64(tok: Option<&str>, line: usize, what: &str) -> Result<u64> {
    let tok = tok.ok_or_else(|| StoreError::Manifest { line, message: format!("missing {what}") })?;
    tok.parse::<u64>()
        .map_err(|_| StoreError::Manifest { line, message: format!("bad {what} `{tok}`") })
}

fn parse_hex(tok: Option<&str>, line: usize, what: &str) -> Result<u64> {
    let tok = tok.ok_or_else(|| StoreError::Manifest { line, message: format!("missing {what}") })?;
    u64::from_str_radix(tok, 16)
        .map_err(|_| StoreError::Manifest { line, message: format!("bad {what} `{tok}`") })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            num_entities: 10,
            num_relations: 3,
            num_triples: 7,
            seg_records: 4,
            index_bytes: 176,
            index_checksum: 0xdead_beef,
            fwd: vec![
                SegmentMeta { file: fwd_name(0), records: 4, bytes: 48, checksum: 1 },
                SegmentMeta { file: fwd_name(1), records: 3, bytes: 36, checksum: 2 },
            ],
            inv: vec![
                SegmentMeta { file: inv_name(0), records: 4, bytes: 64, checksum: 3 },
                SegmentMeta { file: inv_name(1), records: 3, bytes: 48, checksum: 4 },
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let m = sample();
        assert_eq!(Manifest::parse(&m.to_text()).unwrap(), m);
    }

    #[test]
    fn rejects_bad_magic() {
        let err = Manifest::parse("rmpi-store v9\nend\n").unwrap_err();
        assert!(matches!(err, StoreError::Manifest { line: 1, .. }), "{err}");
    }

    #[test]
    fn rejects_truncation() {
        let text = sample().to_text();
        let cut = text.strip_suffix("end\n").unwrap();
        let err = Manifest::parse(cut).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
    }

    #[test]
    fn rejects_record_count_mismatch() {
        let mut m = sample();
        m.num_triples = 99;
        let err = Manifest::parse(&m.to_text()).unwrap_err();
        assert!(err.to_string().contains("99"), "{err}");
    }

    #[test]
    fn names_offending_line() {
        let mut text = sample().to_text();
        text = text.replace("seg_records 4", "seg_records four");
        let err = Manifest::parse(&text).unwrap_err();
        match err {
            StoreError::Manifest { line, ref message } => {
                assert_eq!(line, 5);
                assert!(message.contains("four"));
            }
            other => panic!("unexpected: {other}"),
        }
    }
}
