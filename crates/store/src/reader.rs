//! Reading a store: resident offsets, cold segment data.
//!
//! A [`StoreReader`] always keeps the offsets index in RAM — 16 bytes per
//! entity, ~16 MiB at a million entities — because every adjacency query
//! starts there. Segment data is served one of two ways:
//!
//! * [`ReadMode::Stream`] (default): point reads go through a small LRU
//!   block cache of 64 KiB-aligned blocks fetched with positioned reads
//!   (`pread`), so RSS is `index + cache` regardless of graph size. This is
//!   the mode the acceptance criteria measure.
//! * [`ReadMode::Resident`]: segment bytes are loaded (and checksum-verified)
//!   up front. Same code paths, zero read syscalls after open — the
//!   baseline the bench compares against, and a reasonable choice for
//!   small graphs.
//!
//! `mmap` was considered and rejected: it needs either a platform syscall
//! shim or an external crate (the build is offline/dependency-free), makes
//! checksum verification lazy (a bit flip faults at use time, far from
//!   open), and its page cache is invisible to the `store.*` metrics. The
//! explicit block cache keeps failure modes at `open`/`verify` time and
//! every disk touch observable. See DESIGN.md §13.
//!
//! Block sizes are multiples of the record sizes, so a record never
//! straddles two blocks and every point read is one cache probe.

use crate::format::{
    decode_fwd, decode_inv, fnv64, Fnv64, FWD_BLOCK_BYTES, FWD_BLOCK_RECORDS, FWD_RECORD_BYTES,
    INV_BLOCK_BYTES, INV_BLOCK_RECORDS, INV_RECORD_BYTES,
};
use crate::manifest::{Manifest, SegmentMeta, INDEX_NAME, MANIFEST_NAME};
use crate::{io_error_is_transient, Result, StoreError};
use rmpi_kg::{Edge, EntityId, Triple};
use rmpi_obs::{Counter, Gauge, MetricsRegistry};
use rmpi_testutil::chaosfile::{ChaosFile, ChaosFileConfig};
use rmpi_testutil::failpoint;
use std::collections::{HashMap, HashSet};
use std::fs::File;
use std::io::{BufReader, Read};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Failpoint hit before every positioned segment read (the `pread` path
/// behind the block cache). Arm with an `io_error` action to exercise the
/// retry loop without a chaos file.
pub const PREAD_FAILPOINT: &str = "store::pread";

/// Bounded-retry policy for transient `pread` failures. Attempt `k`
/// (0-based, after the first) sleeps `backoff << (k - 1)` before re-reading;
/// with the defaults that is 0.5/1/2 ms — long enough to ride out an
/// interrupted syscall or device hiccup, short enough that a request-path
/// read never stalls noticeably.
#[derive(Clone, Copy, Debug)]
pub struct RetryConfig {
    /// Total read attempts (first try included). Clamped to at least 1.
    pub attempts: u32,
    /// Base backoff before the second attempt; doubles per further attempt.
    pub backoff: Duration,
}

impl Default for RetryConfig {
    fn default() -> Self {
        // At a 10% transient-fault rate, 4 attempts leave ~1e-4 residual
        // failure per block read — the bench_diskfault availability floor.
        RetryConfig { attempts: 4, backoff: Duration::from_micros(500) }
    }
}

/// Everything [`StoreReader::open_opts`] accepts beyond the directory:
/// read mode, retry policy, and an optional seeded disk-fault injector for
/// tests and benches.
#[derive(Clone, Debug, Default)]
pub struct StoreOptions {
    /// How segment data reaches queries.
    pub mode: ReadMode,
    /// Transient-failure retry policy for positioned reads.
    pub retry: RetryConfig,
    /// When set, every segment file's `pread` path goes through a
    /// [`ChaosFile`] with this configuration. Sequential sweeps
    /// ([`StoreReader::for_each_triple`], [`StoreReader::verify`]) open
    /// fresh file handles and are not disturbed.
    pub chaos: Option<ChaosFileConfig>,
}

impl From<ReadMode> for StoreOptions {
    fn from(mode: ReadMode) -> Self {
        StoreOptions { mode, ..Default::default() }
    }
}

/// A segment file handle for positioned reads — plain, or wrapped in a
/// seeded fault injector.
enum SegFile {
    Plain(File),
    Chaos(ChaosFile),
}

impl SegFile {
    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
        match self {
            SegFile::Plain(f) => f.read_exact_at(buf, offset),
            SegFile::Chaos(c) => c.read_exact_at(buf, offset),
        }
    }
}

/// How segment data reaches queries. See the module docs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadMode {
    /// Load all segment bytes into RAM at open (verifying checksums).
    Resident,
    /// Keep segments on disk; cache up to `cache_blocks` 64 KiB blocks.
    Stream {
        /// LRU capacity in blocks (64 KiB each).
        cache_blocks: usize,
    },
}

impl Default for ReadMode {
    fn default() -> Self {
        // 256 blocks = 16 MiB: enough for a k-hop working set, far below
        // any interesting graph size.
        ReadMode::Stream { cache_blocks: 256 }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum Kind {
    Fwd,
    Inv,
}

struct CacheEntry {
    data: Arc<Vec<u8>>,
    last_used: u64,
}

/// Tiny LRU keyed by (kind, segment, block). Capacity is small (hundreds),
/// so eviction by linear min-scan is cheaper than a linked structure.
struct BlockCache {
    cap: usize,
    tick: u64,
    map: HashMap<(Kind, u32, u32), CacheEntry>,
}

impl BlockCache {
    fn get(&mut self, key: (Kind, u32, u32)) -> Option<Arc<Vec<u8>>> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(&key).map(|e| {
            e.last_used = tick;
            Arc::clone(&e.data)
        })
    }

    fn insert(&mut self, key: (Kind, u32, u32), data: Arc<Vec<u8>>) {
        self.tick += 1;
        if self.map.len() >= self.cap && !self.map.contains_key(&key) {
            if let Some((&victim, _)) = self.map.iter().min_by_key(|(_, e)| e.last_used) {
                self.map.remove(&victim);
            }
        }
        let tick = self.tick;
        self.map.insert(key, CacheEntry { data, last_used: tick });
    }
}

/// `store.*` instruments, shared by all handles of one reader.
#[derive(Clone)]
struct StoreMetrics {
    /// Disk block fetches (cache misses + sequential sweep reads).
    segment_reads: Counter,
    /// Bytes pulled off disk.
    bytes_scanned: Counter,
    /// Block-cache hits (point queries answered without IO).
    index_hits: Counter,
    /// Neighbourhood pins served (incremented by `NeighborhoodView`).
    pins: Counter,
    /// Transient `pread` failures that were retried.
    read_retries: Counter,
    /// Reads that failed for good (transient retries exhausted, or a
    /// permanent I/O error).
    read_errors: Counter,
    /// Block-checksum mismatches that triggered a re-read (torn or
    /// in-flight corruption that a second read may heal).
    checksum_retries: Counter,
    /// Blocks confirmed corrupt (mismatch survived every re-read) and
    /// quarantined.
    corrupt_blocks: Counter,
    /// Currently quarantined blocks.
    quarantined: Gauge,
}

impl StoreMetrics {
    fn from_registry(r: &MetricsRegistry) -> StoreMetrics {
        StoreMetrics {
            segment_reads: r.counter("store.segment_reads.count"),
            bytes_scanned: r.counter("store.bytes_scanned.count"),
            index_hits: r.counter("store.index_hits.count"),
            pins: r.counter("store.pins.count"),
            read_retries: r.counter("store.read_retries.count"),
            read_errors: r.counter("store.read_errors.count"),
            checksum_retries: r.counter("store.checksum_retries.count"),
            corrupt_blocks: r.counter("store.corrupt_blocks.count"),
            quarantined: r.gauge("store.quarantined_blocks"),
        }
    }
}

/// Read handle over a store directory. Cheap to share behind an `Arc`;
/// point queries take a short cache lock, sequential sweeps use their own
/// file handles.
pub struct StoreReader {
    dir: PathBuf,
    manifest: Manifest,
    mode: ReadMode,
    retry: RetryConfig,
    /// `out_off[e] .. out_off[e+1]` = e's forward-record (triple-index) run.
    out_off: Vec<u64>,
    /// `in_off[e] .. in_off[e+1]` = e's inverse-record run.
    in_off: Vec<u64>,
    fwd_files: Vec<SegFile>,
    inv_files: Vec<SegFile>,
    /// Per-segment bytes when fully resident.
    resident_fwd: Vec<Arc<Vec<u8>>>,
    resident_inv: Vec<Arc<Vec<u8>>>,
    cache: Mutex<BlockCache>,
    /// Blocks whose checksum mismatch survived every re-read. Reads that
    /// land here fail fast with `Corrupt` instead of re-touching bad media.
    quarantine: Mutex<HashSet<(Kind, u32, u32)>>,
    metrics: StoreMetrics,
}

impl std::fmt::Debug for StoreReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreReader")
            .field("dir", &self.dir)
            .field("mode", &self.mode)
            .field("entities", &self.manifest.num_entities)
            .field("triples", &self.manifest.num_triples)
            .finish()
    }
}

impl StoreReader {
    /// Open a store with metrics on the global registry.
    pub fn open(dir: impl AsRef<Path>, mode: ReadMode) -> Result<StoreReader> {
        StoreReader::open_with_registry(dir, mode, rmpi_obs::global())
    }

    /// Open a store, registering `store.*` instruments on `registry`.
    pub fn open_with_registry(
        dir: impl AsRef<Path>,
        mode: ReadMode,
        registry: &MetricsRegistry,
    ) -> Result<StoreReader> {
        StoreReader::open_opts(dir, StoreOptions::from(mode), registry)
    }

    /// Open a store with full [`StoreOptions`] control (retry policy,
    /// optional chaos injection), registering `store.*` instruments on
    /// `registry`.
    ///
    /// Always verifies the index checksum (it is read anyway) and every
    /// file's byte length against the manifest; `Resident` mode also
    /// verifies segment checksums since it reads the bytes. With a v2
    /// manifest, `Stream` mode verifies every block's checksum at
    /// cache-fill time; a v1 store defers segment checksums to
    /// [`StoreReader::verify`].
    pub fn open_opts(
        dir: impl AsRef<Path>,
        opts: StoreOptions,
        registry: &MetricsRegistry,
    ) -> Result<StoreReader> {
        let mode = opts.mode;
        let dir = dir.as_ref().to_path_buf();
        let manifest_path = dir.join(MANIFEST_NAME);
        let text = match std::fs::read_to_string(&manifest_path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(StoreError::NotAStore(dir));
            }
            Err(e) => return Err(e.into()),
        };
        let manifest = Manifest::parse(&text)?;

        // Offsets index: read fully, hash inline, split into out/in halves.
        let index_raw = std::fs::read(dir.join(INDEX_NAME))?;
        if index_raw.len() as u64 != manifest.index_bytes {
            return Err(StoreError::Corrupt {
                file: INDEX_NAME.into(),
                offset: index_raw.len() as u64,
                message: format!(
                    "expected {} bytes, found {}",
                    manifest.index_bytes,
                    index_raw.len()
                ),
            });
        }
        let got = crate::format::fnv64(&index_raw);
        if got != manifest.index_checksum {
            return Err(StoreError::Corrupt {
                file: INDEX_NAME.into(),
                offset: 0,
                message: format!(
                    "checksum mismatch: manifest {:016x}, file {:016x}",
                    manifest.index_checksum, got
                ),
            });
        }
        let n = manifest.num_entities as usize;
        let expect_bytes = 2 * (n + 1) * 8;
        if index_raw.len() != expect_bytes {
            return Err(StoreError::Corrupt {
                file: INDEX_NAME.into(),
                offset: index_raw.len() as u64,
                message: format!(
                    "index holds {} bytes, {} entities need {}",
                    index_raw.len(),
                    n,
                    expect_bytes
                ),
            });
        }
        let word =
            |i: usize| u64::from_le_bytes(index_raw[i * 8..i * 8 + 8].try_into().expect("8 bytes"));
        let out_off: Vec<u64> = (0..=n).map(word).collect();
        let in_off: Vec<u64> = (n + 1..=2 * n + 1).map(word).collect();

        let open_seg = |meta: &crate::manifest::SegmentMeta| -> Result<File> {
            let path = dir.join(&meta.file);
            let f = File::open(&path)?;
            let len = f.metadata()?.len();
            if len != meta.bytes {
                return Err(StoreError::Corrupt {
                    file: meta.file.clone(),
                    offset: len,
                    message: format!("expected {} bytes, found {len}", meta.bytes),
                });
            }
            Ok(f)
        };
        let fwd_plain: Vec<File> = manifest.fwd.iter().map(open_seg).collect::<Result<_>>()?;
        let inv_plain: Vec<File> = manifest.inv.iter().map(open_seg).collect::<Result<_>>()?;

        let (mut resident_fwd, mut resident_inv) = (Vec::new(), Vec::new());
        if mode == ReadMode::Resident {
            let slurp = |meta: &SegmentMeta, f: &File| -> Result<Arc<Vec<u8>>> {
                let mut buf = Vec::with_capacity(meta.bytes as usize);
                let mut r = BufReader::new(f);
                r.read_to_end(&mut buf)?;
                let got = crate::format::fnv64(&buf);
                if got != meta.checksum {
                    return Err(StoreError::Corrupt {
                        file: meta.file.clone(),
                        offset: 0,
                        message: format!(
                            "checksum mismatch: manifest {:016x}, file {got:016x}",
                            meta.checksum
                        ),
                    });
                }
                Ok(Arc::new(buf))
            };
            for (m, f) in manifest.fwd.iter().zip(&fwd_plain) {
                resident_fwd.push(slurp(m, f)?);
            }
            for (m, f) in manifest.inv.iter().zip(&inv_plain) {
                resident_inv.push(slurp(m, f)?);
            }
        }

        // Fault injection applies only to the positioned-read (`pread`)
        // path; resident bytes were already read and verified above.
        let wrap = |files: Vec<File>| -> Vec<SegFile> {
            files
                .into_iter()
                .map(|f| match (mode, opts.chaos) {
                    (ReadMode::Stream { .. }, Some(cfg)) => SegFile::Chaos(ChaosFile::wrap(f, cfg)),
                    _ => SegFile::Plain(f),
                })
                .collect()
        };
        let fwd_files = wrap(fwd_plain);
        let inv_files = wrap(inv_plain);

        let cache_blocks = match mode {
            ReadMode::Resident => 1,
            ReadMode::Stream { cache_blocks } => cache_blocks.max(1),
        };
        Ok(StoreReader {
            dir,
            manifest,
            mode,
            retry: opts.retry,
            out_off,
            in_off,
            fwd_files,
            inv_files,
            resident_fwd,
            resident_inv,
            cache: Mutex::new(BlockCache { cap: cache_blocks, tick: 0, map: HashMap::new() }),
            quarantine: Mutex::new(HashSet::new()),
            metrics: StoreMetrics::from_registry(registry),
        })
    }

    /// The parsed manifest.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The mode this reader was opened in.
    pub fn mode(&self) -> ReadMode {
        self.mode
    }

    /// Entity id-space capacity.
    pub fn num_entities(&self) -> usize {
        self.manifest.num_entities as usize
    }

    /// Relation id-space capacity.
    pub fn num_relations(&self) -> usize {
        self.manifest.num_relations as usize
    }

    /// Total triples.
    pub fn num_triples(&self) -> usize {
        self.manifest.num_triples as usize
    }

    /// Out-degree of `e` (0 for out-of-range ids).
    pub fn out_degree(&self, e: EntityId) -> usize {
        let i = e.index();
        if i + 1 >= self.out_off.len() {
            return 0;
        }
        (self.out_off[i + 1] - self.out_off[i]) as usize
    }

    /// In-degree of `e` (0 for out-of-range ids).
    pub fn in_degree(&self, e: EntityId) -> usize {
        let i = e.index();
        if i + 1 >= self.in_off.len() {
            return 0;
        }
        (self.in_off[i + 1] - self.in_off[i]) as usize
    }

    /// Entities with at least one edge, ascending — the candidate pool for
    /// negative sampling. Answered entirely from the resident index.
    pub fn present_entities(&self) -> Vec<EntityId> {
        (0..self.num_entities() as u32)
            .map(EntityId)
            .filter(|&e| self.out_degree(e) + self.in_degree(e) > 0)
            .collect()
    }

    /// Fetch one block through the cache, with bounded retry on transient
    /// `pread` failures and (v2 manifests) checksum verification at
    /// cache-fill time. A checksum mismatch is first re-read — a torn read
    /// heals — and only a mismatch that survives every attempt is declared
    /// corruption: the block is quarantined and every later read of it
    /// fails fast.
    fn block(&self, kind: Kind, seg: usize, block: u64) -> Result<Arc<Vec<u8>>> {
        let resident = match kind {
            Kind::Fwd => &self.resident_fwd,
            Kind::Inv => &self.resident_inv,
        };
        if let Some(bytes) = resident.get(seg) {
            // Resident mode: the "block" is the whole segment.
            return Ok(Arc::clone(bytes));
        }
        let key = (kind, seg as u32, block as u32);
        if let Some(hit) = self.cache.lock().expect("cache lock").get(key) {
            self.metrics.index_hits.inc();
            return Ok(hit);
        }
        let (files, metas, block_bytes) = match kind {
            Kind::Fwd => (&self.fwd_files, &self.manifest.fwd, FWD_BLOCK_BYTES),
            Kind::Inv => (&self.inv_files, &self.manifest.inv, INV_BLOCK_BYTES),
        };
        let meta = &metas[seg];
        if self.quarantine.lock().expect("quarantine lock").contains(&key) {
            return Err(StoreError::Corrupt {
                file: meta.file.clone(),
                offset: block * block_bytes,
                message: format!(
                    "block {block} is quarantined after a confirmed checksum mismatch"
                ),
            });
        }
        let off = block * block_bytes;
        let len = (meta.bytes - off).min(block_bytes) as usize;
        let want = meta.block_sums.get(block as usize).copied();
        let attempts = self.retry.attempts.max(1);
        let mut buf = vec![0u8; len];
        for attempt in 0..attempts {
            if attempt > 0 {
                std::thread::sleep(self.retry.backoff * (1 << (attempt - 1)));
            }
            match failpoint::io(PREAD_FAILPOINT)
                .and_then(|()| files[seg].read_exact_at(&mut buf, off))
            {
                Err(e) if io_error_is_transient(&e) && attempt + 1 < attempts => {
                    self.metrics.read_retries.inc();
                    continue;
                }
                Err(e) => {
                    self.metrics.read_errors.inc();
                    if e.kind() == std::io::ErrorKind::UnexpectedEof {
                        // The manifest promised these bytes exist; a short
                        // file is truncation damage, not an environment
                        // problem — quarantine like any other corruption.
                        self.quarantine_block(key);
                        return Err(StoreError::Corrupt {
                            file: meta.file.clone(),
                            offset: off,
                            message: format!("unexpected EOF reading block {block}: {e}"),
                        });
                    }
                    return Err(StoreError::Io(e));
                }
                Ok(()) => {
                    self.metrics.segment_reads.inc();
                    self.metrics.bytes_scanned.add(len as u64);
                    if let Some(want) = want {
                        let got = fnv64(&buf);
                        if got != want {
                            if attempt + 1 < attempts {
                                self.metrics.checksum_retries.inc();
                                continue;
                            }
                            self.quarantine_block(key);
                            return Err(StoreError::Corrupt {
                                file: meta.file.clone(),
                                offset: off,
                                message: format!(
                                    "block {block} checksum mismatch: manifest {want:016x}, read {got:016x} (after {attempts} attempts)"
                                ),
                            });
                        }
                    }
                    let data = Arc::new(buf);
                    self.cache.lock().expect("cache lock").insert(key, Arc::clone(&data));
                    return Ok(data);
                }
            }
        }
        // Transient failures exhausted every attempt.
        self.metrics.read_errors.inc();
        Err(StoreError::Io(std::io::Error::other(format!(
            "read of {} block {block} failed after {attempts} transient errors",
            meta.file
        ))))
    }

    fn quarantine_block(&self, key: (Kind, u32, u32)) {
        let mut q = self.quarantine.lock().expect("quarantine lock");
        if q.insert(key) {
            self.metrics.corrupt_blocks.inc();
            self.metrics.quarantined.set(q.len() as i64);
        }
    }

    /// Raw record bytes for global record `idx` of `kind`, via the cache.
    /// Returns (block, offset-within-block).
    fn record_block(&self, kind: Kind, idx: u64) -> Result<(Arc<Vec<u8>>, usize)> {
        let seg_records = self.manifest.seg_records;
        let seg = (idx / seg_records) as usize;
        let local = idx % seg_records;
        let (block_records, rec_bytes) = match kind {
            Kind::Fwd => (FWD_BLOCK_RECORDS, FWD_RECORD_BYTES),
            Kind::Inv => (INV_BLOCK_RECORDS, INV_RECORD_BYTES),
        };
        let resident = match kind {
            Kind::Fwd => !self.resident_fwd.is_empty(),
            Kind::Inv => !self.resident_inv.is_empty(),
        };
        if resident {
            let data = self.block(kind, seg, 0)?;
            return Ok((data, local as usize * rec_bytes));
        }
        let block = local / block_records;
        let data = self.block(kind, seg, block)?;
        Ok((data, (local % block_records) as usize * rec_bytes))
    }

    /// The triple at global index `idx` (its position in sorted order).
    pub fn triple_at(&self, idx: u64) -> Result<Triple> {
        debug_assert!(idx < self.manifest.num_triples);
        let (data, off) = self.record_block(Kind::Fwd, idx)?;
        Ok(decode_fwd(&data[off..off + FWD_RECORD_BYTES]))
    }

    /// Visit the out-edges of `e` in ascending triple-index order.
    pub fn for_each_out_edge(&self, e: EntityId, mut f: impl FnMut(Edge)) -> Result<()> {
        let i = e.index();
        if i + 1 >= self.out_off.len() {
            return Ok(());
        }
        let (lo, hi) = (self.out_off[i], self.out_off[i + 1]);
        let mut idx = lo;
        while idx < hi {
            let (data, off) = self.record_block(Kind::Fwd, idx)?;
            // Consume the rest of this block (or segment when resident)
            // without re-probing the cache per record.
            let in_block = ((data.len() - off) / FWD_RECORD_BYTES) as u64;
            let run = in_block.min(hi - idx);
            for k in 0..run {
                let o = off + (k as usize) * FWD_RECORD_BYTES;
                let t = decode_fwd(&data[o..o + FWD_RECORD_BYTES]);
                f(Edge { neighbor: t.tail, relation: t.relation, triple_idx: (idx + k) as usize });
            }
            idx += run;
        }
        Ok(())
    }

    /// Visit the in-edges of `e` in ascending triple-index order.
    pub fn for_each_in_edge(&self, e: EntityId, mut f: impl FnMut(Edge)) -> Result<()> {
        let i = e.index();
        if i + 1 >= self.in_off.len() {
            return Ok(());
        }
        let (lo, hi) = (self.in_off[i], self.in_off[i + 1]);
        let mut pos = lo;
        while pos < hi {
            let (data, off) = self.record_block(Kind::Inv, pos)?;
            let in_block = ((data.len() - off) / INV_RECORD_BYTES) as u64;
            let run = in_block.min(hi - pos);
            for k in 0..run {
                let o = off + (k as usize) * INV_RECORD_BYTES;
                let (tail, rel, head, fwd_idx) = decode_inv(&data[o..o + INV_RECORD_BYTES]);
                debug_assert_eq!(tail, e);
                f(Edge { neighbor: head, relation: rel, triple_idx: fwd_idx as usize });
            }
            pos += run;
        }
        Ok(())
    }

    /// Membership test: binary search on `(relation, tail)` within the
    /// head's contiguous forward run. `O(log out_degree)` block-cached
    /// point reads.
    pub fn contains(&self, t: &Triple) -> Result<bool> {
        let i = t.head.index();
        if i + 1 >= self.out_off.len() {
            return Ok(false);
        }
        let (mut lo, mut hi) = (self.out_off[i], self.out_off[i + 1]);
        let key = (t.relation, t.tail);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let cand = self.triple_at(mid)?;
            match (cand.relation, cand.tail).cmp(&key) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Ok(true),
            }
        }
        Ok(false)
    }

    /// Stream every triple in ascending triple-index order with sequential
    /// segment reads (bypasses the block cache; does not disturb it).
    ///
    /// With a v2 manifest, each 64 KiB block is checksum-verified **before**
    /// its records are handed to `f` — a corrupt region stops the sweep at
    /// the block boundary instead of first delivering damaged triples.
    pub fn for_each_triple(&self, mut f: impl FnMut(Triple)) -> Result<()> {
        if !self.resident_fwd.is_empty() {
            for bytes in &self.resident_fwd {
                for rec in bytes.chunks_exact(FWD_RECORD_BYTES) {
                    f(decode_fwd(rec));
                }
            }
            return Ok(());
        }
        for meta in &self.manifest.fwd {
            let file = File::open(self.dir.join(&meta.file))?;
            let mut r = BufReader::with_capacity(FWD_BLOCK_BYTES as usize, file);
            let blocks = SegmentMeta::block_count(meta.bytes, FWD_BLOCK_BYTES);
            let mut buf = vec![0u8; FWD_BLOCK_BYTES as usize];
            for b in 0..blocks {
                let len = (meta.bytes - b * FWD_BLOCK_BYTES).min(FWD_BLOCK_BYTES) as usize;
                r.read_exact(&mut buf[..len])?;
                if let Some(&want) = meta.block_sums.get(b as usize) {
                    let got = fnv64(&buf[..len]);
                    if got != want {
                        return Err(StoreError::Corrupt {
                            file: meta.file.clone(),
                            offset: b * FWD_BLOCK_BYTES,
                            message: format!(
                                "block {b} checksum mismatch during sweep: manifest {want:016x}, read {got:016x}"
                            ),
                        });
                    }
                }
                for rec in buf[..len].chunks_exact(FWD_RECORD_BYTES) {
                    f(decode_fwd(rec));
                }
            }
            self.metrics.segment_reads.inc();
            self.metrics.bytes_scanned.add(meta.bytes);
        }
        Ok(())
    }

    /// Full integrity check: re-hash every data file and compare with the
    /// manifest. Streams; RSS stays at one IO buffer.
    pub fn verify(&self) -> Result<()> {
        for meta in self.manifest.fwd.iter().chain(self.manifest.inv.iter()) {
            let file = File::open(self.dir.join(&meta.file))?;
            let mut r = BufReader::with_capacity(1 << 16, file);
            let mut hash = Fnv64::new();
            let mut buf = [0u8; 1 << 16];
            let mut total = 0u64;
            loop {
                let n = r.read(&mut buf)?;
                if n == 0 {
                    break;
                }
                hash.update(&buf[..n]);
                total += n as u64;
            }
            self.metrics.bytes_scanned.add(total);
            if total != meta.bytes {
                return Err(StoreError::Corrupt {
                    file: meta.file.clone(),
                    offset: total,
                    message: format!("expected {} bytes, found {total}", meta.bytes),
                });
            }
            let got = hash.finish();
            if got != meta.checksum {
                return Err(StoreError::Corrupt {
                    file: meta.file.clone(),
                    offset: 0,
                    message: format!(
                        "checksum mismatch: manifest {:016x}, file {got:016x}",
                        meta.checksum
                    ),
                });
            }
        }
        Ok(())
    }

    /// Number of blocks currently quarantined on this handle (confirmed
    /// checksum mismatches).
    pub fn quarantined_blocks(&self) -> usize {
        self.quarantine.lock().expect("quarantine lock").len()
    }

    /// Count one neighbourhood pin (called by `NeighborhoodView`).
    pub(crate) fn count_pin(&self) {
        self.metrics.pins.inc();
    }
}
