//! Pinned k-hop neighbourhoods: how a streaming store serves the
//! slice-returning [`GraphAccess`] trait safely.
//!
//! `GraphAccess::out_edges` returns `&[Edge]` — a borrow that a disk reader
//! cannot hand out without materialising the data somewhere first. Instead
//! of weakening the trait (and de-optimising the CSR hot path) the store
//! splits access into two phases:
//!
//! 1. [`NeighborhoodView::pin`] (`&mut self`) runs a multi-source BFS from
//!    the query endpoints, loading the adjacency of every node within `k`
//!    hops into owned arenas. This is where all IO happens.
//! 2. The pinned view (`&self`) implements `GraphAccess`, serving arena
//!    slices. Subgraph extraction only ever reads the adjacency of nodes
//!    at distance ≤ k from an endpoint, so a pin of radius ≥ the extraction
//!    radius covers every query exactly.
//!
//! Queries against *unpinned* entities return empty adjacency — in debug
//! builds they panic instead, which is how the equivalence proptests would
//! catch a pin radius that is too small. Membership tests and triple
//! lookups don't depend on the pin; they go straight to the reader's block
//! cache.
//!
//! The view reuses its arenas and hash maps across pins, so a long-lived
//! per-worker view reaches a steady state with no per-sample allocation
//! churn beyond hash-map growth.

use crate::reader::StoreReader;
use crate::Result;
use rmpi_kg::{Edge, EntityId, GraphAccess, Triple};
use std::collections::hash_map::Entry;
use std::collections::HashMap;

#[derive(Clone, Copy, Default)]
struct Range {
    start: u32,
    len: u32,
}

/// A reusable pinned k-hop neighbourhood over a [`StoreReader`].
pub struct NeighborhoodView<'s> {
    reader: &'s StoreReader,
    /// entity -> slice of `out_arena`.
    out_ranges: HashMap<u32, Range>,
    /// entity -> slice of `in_arena`.
    in_ranges: HashMap<u32, Range>,
    out_arena: Vec<Edge>,
    in_arena: Vec<Edge>,
    /// BFS frontier scratch: (entity, depth).
    queue: Vec<(u32, u32)>,
}

impl<'s> NeighborhoodView<'s> {
    /// An empty view; nothing is pinned until [`NeighborhoodView::pin`].
    pub fn new(reader: &'s StoreReader) -> Self {
        NeighborhoodView {
            reader,
            out_ranges: HashMap::new(),
            in_ranges: HashMap::new(),
            out_arena: Vec::new(),
            in_arena: Vec::new(),
            queue: Vec::new(),
        }
    }

    /// The reader this view pins from.
    pub fn reader(&self) -> &'s StoreReader {
        self.reader
    }

    /// Load the adjacency of every entity within `k` undirected hops of
    /// `u` or `v`, replacing any previous pin. All IO for a subsequent
    /// extraction/scoring pass happens here.
    pub fn pin(&mut self, u: EntityId, v: EntityId, k: usize) -> Result<()> {
        self.out_ranges.clear();
        self.in_ranges.clear();
        self.out_arena.clear();
        self.in_arena.clear();
        self.queue.clear();
        self.reader.count_pin();

        self.queue.push((u.0, 0));
        if v != u {
            self.queue.push((v.0, 0));
        }
        // `out_ranges` doubles as the visited set: every discovered node is
        // loaded (entered into the map) before its neighbours are queued.
        let mut head = 0usize;
        self.load(u.0)?;
        if v != u {
            self.load(v.0)?;
        }
        while head < self.queue.len() {
            let (e, d) = self.queue[head];
            head += 1;
            if d as usize >= k {
                continue;
            }
            // Neighbours of e (already loaded): queue any new node at d+1
            // and load it immediately so the map stays the visited set.
            let out = self.out_ranges[&e];
            let inr = self.in_ranges[&e];
            let mut neighbors: Vec<u32> = Vec::with_capacity((out.len + inr.len) as usize);
            neighbors.extend(
                self.out_arena[out.start as usize..(out.start + out.len) as usize]
                    .iter()
                    .map(|edge| edge.neighbor.0),
            );
            neighbors.extend(
                self.in_arena[inr.start as usize..(inr.start + inr.len) as usize]
                    .iter()
                    .map(|edge| edge.neighbor.0),
            );
            for n in neighbors {
                if !self.out_ranges.contains_key(&n) {
                    self.load(n)?;
                    self.queue.push((n, d + 1));
                }
            }
        }
        Ok(())
    }

    /// Load `e`'s adjacency into the arenas and record the ranges.
    fn load(&mut self, e: u32) -> Result<()> {
        if let Entry::Vacant(slot) = self.out_ranges.entry(e) {
            let start = self.out_arena.len() as u32;
            let arena = &mut self.out_arena;
            self.reader.for_each_out_edge(EntityId(e), |edge| arena.push(edge))?;
            slot.insert(Range { start, len: self.out_arena.len() as u32 - start });

            let start = self.in_arena.len() as u32;
            let arena = &mut self.in_arena;
            self.reader.for_each_in_edge(EntityId(e), |edge| arena.push(edge))?;
            self.in_ranges.insert(e, Range { start, len: self.in_arena.len() as u32 - start });
        }
        Ok(())
    }

    /// Number of entities whose adjacency is currently pinned.
    pub fn pinned_entities(&self) -> usize {
        self.out_ranges.len()
    }

    /// Total pinned edges (out + in arenas; shared edges counted twice).
    pub fn pinned_edges(&self) -> usize {
        self.out_arena.len() + self.in_arena.len()
    }
}

impl GraphAccess for NeighborhoodView<'_> {
    fn out_edges(&self, e: EntityId) -> &[Edge] {
        match self.out_ranges.get(&e.0) {
            Some(r) => &self.out_arena[r.start as usize..(r.start + r.len) as usize],
            None => {
                debug_assert!(
                    e.index() >= self.reader.num_entities()
                        || self.reader.out_degree(e) + self.reader.in_degree(e) == 0,
                    "out_edges({e}) outside the pinned neighbourhood — pin radius too small"
                );
                &[]
            }
        }
    }

    fn in_edges(&self, e: EntityId) -> &[Edge] {
        match self.in_ranges.get(&e.0) {
            Some(r) => &self.in_arena[r.start as usize..(r.start + r.len) as usize],
            None => {
                debug_assert!(
                    e.index() >= self.reader.num_entities()
                        || self.reader.out_degree(e) + self.reader.in_degree(e) == 0,
                    "in_edges({e}) outside the pinned neighbourhood — pin radius too small"
                );
                &[]
            }
        }
    }

    fn triple(&self, idx: usize) -> Triple {
        self.reader.triple_at(idx as u64).expect("store read failed (triple)")
    }

    fn for_each_triple(&self, f: &mut dyn FnMut(Triple)) {
        self.reader.for_each_triple(f).expect("store read failed (sweep)")
    }

    fn num_entities(&self) -> usize {
        self.reader.num_entities()
    }

    fn num_triples(&self) -> usize {
        self.reader.num_triples()
    }

    fn num_relations(&self) -> usize {
        self.reader.num_relations()
    }

    fn contains(&self, t: &Triple) -> bool {
        self.reader.contains(t).expect("store read failed (contains)")
    }
}
