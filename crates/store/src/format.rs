//! Fixed-width record encodings and the FNV-1a 64 checksum.
//!
//! Records are little-endian `u32` fields, no padding, no varints: the
//! reader computes a record's file offset by multiplication, and a block of
//! records can be verified by hashing raw bytes. Block sizes elsewhere in
//! the crate are chosen as multiples of these record sizes so a record
//! never straddles a block boundary.

use rmpi_kg::{EntityId, RelationId, Triple};

/// Bytes per forward record: `(head, relation, tail)`.
pub const FWD_RECORD_BYTES: usize = 12;

/// Bytes per inverse record: `(tail, relation, head, fwd_idx)`.
pub const INV_RECORD_BYTES: usize = 16;

/// Forward records per checksum/cache block (× 12 bytes ≈ 64 KiB).
///
/// Shared by the builder (per-block checksum table in manifest v2) and the
/// reader (block cache + cache-fill verification): both sides must agree on
/// block geometry or the sums are meaningless.
pub const FWD_BLOCK_RECORDS: u64 = 5461;

/// Inverse records per checksum/cache block (× 16 bytes = 64 KiB).
pub const INV_BLOCK_RECORDS: u64 = 4096;

/// Bytes per forward block (65 532).
pub const FWD_BLOCK_BYTES: u64 = FWD_BLOCK_RECORDS * FWD_RECORD_BYTES as u64;

/// Bytes per inverse block (65 536).
pub const INV_BLOCK_BYTES: u64 = INV_BLOCK_RECORDS * INV_RECORD_BYTES as u64;

/// Encode a forward record.
#[inline]
pub fn encode_fwd(t: Triple, out: &mut [u8; FWD_RECORD_BYTES]) {
    out[0..4].copy_from_slice(&t.head.0.to_le_bytes());
    out[4..8].copy_from_slice(&t.relation.0.to_le_bytes());
    out[8..12].copy_from_slice(&t.tail.0.to_le_bytes());
}

/// Decode a forward record.
#[inline]
pub fn decode_fwd(b: &[u8]) -> Triple {
    debug_assert!(b.len() >= FWD_RECORD_BYTES);
    Triple {
        head: EntityId(u32::from_le_bytes([b[0], b[1], b[2], b[3]])),
        relation: RelationId(u32::from_le_bytes([b[4], b[5], b[6], b[7]])),
        tail: EntityId(u32::from_le_bytes([b[8], b[9], b[10], b[11]])),
    }
}

/// Encode an inverse record. `fwd_idx` is the global index of the forward
/// record this edge mirrors (the triple index).
#[inline]
pub fn encode_inv(
    tail: EntityId,
    rel: RelationId,
    head: EntityId,
    fwd_idx: u32,
    out: &mut [u8; INV_RECORD_BYTES],
) {
    out[0..4].copy_from_slice(&tail.0.to_le_bytes());
    out[4..8].copy_from_slice(&rel.0.to_le_bytes());
    out[8..12].copy_from_slice(&head.0.to_le_bytes());
    out[12..16].copy_from_slice(&fwd_idx.to_le_bytes());
}

/// Decode an inverse record as `(tail, relation, head, fwd_idx)`.
#[inline]
pub fn decode_inv(b: &[u8]) -> (EntityId, RelationId, EntityId, u32) {
    debug_assert!(b.len() >= INV_RECORD_BYTES);
    (
        EntityId(u32::from_le_bytes([b[0], b[1], b[2], b[3]])),
        RelationId(u32::from_le_bytes([b[4], b[5], b[6], b[7]])),
        EntityId(u32::from_le_bytes([b[8], b[9], b[10], b[11]])),
        u32::from_le_bytes([b[12], b[13], b[14], b[15]]),
    )
}

/// Incremental FNV-1a 64 hasher. Dependency-free, byte-order independent,
/// and fast enough to run inline with sequential segment writes.
#[derive(Clone, Copy, Debug)]
pub struct Fnv64(u64);

impl Fnv64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv64(Self::OFFSET)
    }

    /// Absorb bytes.
    #[inline]
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(Self::PRIME);
        }
        self.0 = h;
    }

    /// The digest so far.
    #[inline]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

/// One-shot FNV-1a 64 of a byte slice.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fwd_roundtrip() {
        let t = Triple::new(7u32, 3u32, 1_000_000u32);
        let mut buf = [0u8; FWD_RECORD_BYTES];
        encode_fwd(t, &mut buf);
        assert_eq!(decode_fwd(&buf), t);
    }

    #[test]
    fn inv_roundtrip() {
        let mut buf = [0u8; INV_RECORD_BYTES];
        encode_inv(EntityId(9), RelationId(2), EntityId(4), 77, &mut buf);
        assert_eq!(decode_inv(&buf), (EntityId(9), RelationId(2), EntityId(4), 77));
    }

    #[test]
    fn fnv_known_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"the quick brown fox";
        let mut h = Fnv64::new();
        h.update(&data[..7]);
        h.update(&data[7..]);
        assert_eq!(h.finish(), fnv64(data));
    }
}
