//! `rmpi-store` — an out-of-core knowledge-graph store.
//!
//! The in-memory [`rmpi_kg::CsrGraph`] caps world size at what one process
//! can hold. This crate keeps the same *access pattern* — CSR-style
//! out-edge/in-edge runs, triple lookup by index, membership tests — but
//! moves the triple data to disk, leaving only an offsets index resident
//! (16 bytes per entity). Relational message passing only ever touches a
//! k-hop neighbourhood per query, so almost all of the graph stays cold.
//!
//! # On-disk layout
//!
//! A store is a directory:
//!
//! ```text
//! world.store/
//!   MANIFEST          counts, per-file record counts + FNV-64 checksums
//!   index.bin         out_off[N+1] ++ in_off[N+1], u64 LE   (resident)
//!   fwd-00000.seg     12-byte records (h,r,t) u32 LE, sorted by (h,r,t)
//!   fwd-00001.seg     ...
//!   inv-00000.seg     16-byte records (t,r,h,fwd_idx), sorted by (t,fwd_idx)
//! ```
//!
//! Forward records are globally sorted by `(head, relation, tail)`, so a
//! record's position **is** its triple index and the out-edges of entity `e`
//! are the contiguous run `fwd[out_off[e] .. out_off[e+1]]` — no separate
//! out-edge arena exists. Inverse records are sorted by `(tail, fwd_idx)`,
//! so in-edges of `e` are the run `inv[in_off[e] .. in_off[e+1]]`, already
//! in ascending-triple-index order exactly as [`rmpi_kg::GraphAccess`]
//! promises. Everything is fixed-width little-endian; there are no pointers
//! to chase and a segment can be checksummed by a straight byte scan.
//!
//! # Reading
//!
//! [`StoreReader`] answers point queries through a small block cache
//! ([`ReadMode::Stream`]) or from fully resident segment bytes
//! ([`ReadMode::Resident`]); whole-graph sweeps stream segments
//! sequentially either way. [`NeighborhoodView`] pins a k-hop
//! neighbourhood into RAM and then implements `GraphAccess`, which is how
//! `ExtractScratch`-based subgraph extraction runs against disk unchanged.

mod builder;
mod format;
mod manifest;
mod reader;
mod scrub;
mod view;

pub use builder::{
    build_from_graph, build_from_sorted, StoreBuilder, StoreConfig, StoreSummary,
    INDEX_WRITE_FAILPOINT, PUBLISH_FAILPOINT, SEG_CLOSE_FAILPOINT, SEG_WRITE_FAILPOINT,
};
pub use format::{
    fnv64, Fnv64, FWD_BLOCK_BYTES, FWD_BLOCK_RECORDS, FWD_RECORD_BYTES, INV_BLOCK_BYTES,
    INV_BLOCK_RECORDS, INV_RECORD_BYTES,
};
pub use manifest::{Manifest, SegmentMeta, INDEX_NAME, MANIFEST_NAME};
pub use reader::{ReadMode, RetryConfig, StoreOptions, StoreReader, PREAD_FAILPOINT};
pub use scrub::{scrub_store, ScrubReport, ScrubSection};
pub use view::NeighborhoodView;

use std::fmt;
use std::io;
use std::path::PathBuf;

/// Everything that can go wrong building, opening, or reading a store.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem failure.
    Io(io::Error),
    /// The MANIFEST text could not be parsed.
    Manifest {
        /// 1-based line within MANIFEST.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
    /// A store file disagrees with its manifest entry (size or checksum).
    Corrupt {
        /// File name relative to the store directory.
        file: String,
        /// Byte offset where the mismatch was established (file length for
        /// size mismatches, 0 for whole-file checksum mismatches).
        offset: u64,
        /// What disagreed.
        message: String,
    },
    /// Triples were pushed to the builder out of `(head, relation, tail)`
    /// order.
    Unsorted {
        /// Index of the offending triple in push order.
        index: u64,
        /// The offending pair, formatted.
        message: String,
    },
    /// The directory does not contain a store.
    NotAStore(PathBuf),
}

impl StoreError {
    /// Whether this failure is worth retrying: the bytes on disk may be
    /// fine and only this attempt failed (interrupted/short `pread`,
    /// device hiccup, timeout). The permanent I/O kinds — missing file,
    /// permission, unexpected EOF against a manifest-declared length — are
    /// not transient, and neither is any structural error.
    pub fn is_transient(&self) -> bool {
        match self {
            StoreError::Io(e) => io_error_is_transient(e),
            _ => false,
        }
    }

    /// Whether this failure means the bytes themselves are wrong: checksum
    /// or size disagreement with the manifest, or a manifest that fails to
    /// parse/verify. A corrupt store must never be silently served from.
    pub fn is_corruption(&self) -> bool {
        matches!(self, StoreError::Corrupt { .. } | StoreError::Manifest { .. })
    }
}

/// Transient I/O classification shared by the retry loop: everything is
/// retryable except the kinds that cannot heal on a re-read.
pub(crate) fn io_error_is_transient(e: &io::Error) -> bool {
    !matches!(
        e.kind(),
        io::ErrorKind::NotFound
            | io::ErrorKind::PermissionDenied
            | io::ErrorKind::UnexpectedEof
            | io::ErrorKind::InvalidInput
            | io::ErrorKind::InvalidData
            | io::ErrorKind::Unsupported
    )
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store io error: {e}"),
            StoreError::Manifest { line, message } => {
                write!(f, "bad MANIFEST line {line}: {message}")
            }
            StoreError::Corrupt { file, offset, message } => {
                write!(f, "corrupt store file {file} at byte {offset}: {message}")
            }
            StoreError::Unsorted { index, message } => {
                write!(f, "triple {index} out of sort order: {message}")
            }
            StoreError::NotAStore(p) => write!(f, "{} is not a store directory", p.display()),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, StoreError>;
