//! Offline integrity scrub: walk a store directory and report per-section
//! health without opening a reader.
//!
//! [`scrub_store`] is the maintenance-window counterpart of the reader's
//! cache-fill verification: it re-hashes the index and every segment
//! against the manifest, checks per-block checksums when the manifest
//! carries them (v2), and — unlike [`crate::StoreReader::verify`] — keeps
//! going after the first problem so one pass reports *all* damage, with
//! block-precise offsets where possible.

use crate::format::{fnv64, Fnv64, FWD_BLOCK_BYTES, INV_BLOCK_BYTES};
use crate::manifest::{Manifest, SegmentMeta, INDEX_NAME, MANIFEST_NAME};
use crate::{Result, StoreError};
use std::fs::File;
use std::io::{BufReader, Read};
use std::path::Path;

/// The verdict for one file (or the manifest itself) in a scrub pass.
#[derive(Clone, Debug)]
pub struct ScrubSection {
    /// File name relative to the store directory (`MANIFEST`, `index.bin`,
    /// or a segment).
    pub file: String,
    /// Bytes the manifest declares for this file (0 for the manifest).
    pub bytes: u64,
    /// Checksum blocks verified (0 when the manifest carries no block
    /// table for this file).
    pub blocks_checked: u64,
    /// `None` when the section is healthy; otherwise what is wrong.
    pub error: Option<String>,
}

impl ScrubSection {
    fn ok(file: impl Into<String>, bytes: u64, blocks_checked: u64) -> ScrubSection {
        ScrubSection { file: file.into(), bytes, blocks_checked, error: None }
    }

    fn bad(file: impl Into<String>, bytes: u64, message: String) -> ScrubSection {
        ScrubSection { file: file.into(), bytes, blocks_checked: 0, error: Some(message) }
    }
}

/// Everything one scrub pass found.
#[derive(Clone, Debug, Default)]
pub struct ScrubReport {
    /// One entry per file, manifest first, in manifest order.
    pub sections: Vec<ScrubSection>,
}

impl ScrubReport {
    /// Whether every section verified clean.
    pub fn is_clean(&self) -> bool {
        self.sections.iter().all(|s| s.error.is_none())
    }

    /// The sections that failed verification.
    pub fn corrupt_sections(&self) -> Vec<&ScrubSection> {
        self.sections.iter().filter(|s| s.error.is_some()).collect()
    }
}

/// Scrub a store directory. Returns `Err` only when `dir` is not a store
/// at all (no `MANIFEST`) or the directory itself is unreadable; damage in
/// the manifest or any data file lands in the report instead, so a single
/// pass lists every bad section.
pub fn scrub_store(dir: impl AsRef<Path>) -> Result<ScrubReport> {
    let dir = dir.as_ref();
    let text = match std::fs::read_to_string(dir.join(MANIFEST_NAME)) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Err(StoreError::NotAStore(dir.to_path_buf()));
        }
        Err(e) => return Err(e.into()),
    };
    let mut report = ScrubReport::default();
    let manifest = match Manifest::parse(&text) {
        Ok(m) => m,
        Err(e) => {
            report.sections.push(ScrubSection::bad(
                MANIFEST_NAME,
                text.len() as u64,
                e.to_string(),
            ));
            return Ok(report);
        }
    };
    report.sections.push(ScrubSection::ok(MANIFEST_NAME, text.len() as u64, 0));

    // Index: size + whole-file hash.
    match std::fs::read(dir.join(INDEX_NAME)) {
        Ok(raw) => {
            if raw.len() as u64 != manifest.index_bytes {
                report.sections.push(ScrubSection::bad(
                    INDEX_NAME,
                    manifest.index_bytes,
                    format!("expected {} bytes, found {}", manifest.index_bytes, raw.len()),
                ));
            } else {
                let got = fnv64(&raw);
                if got != manifest.index_checksum {
                    report.sections.push(ScrubSection::bad(
                        INDEX_NAME,
                        manifest.index_bytes,
                        format!(
                            "checksum mismatch: manifest {:016x}, file {got:016x}",
                            manifest.index_checksum
                        ),
                    ));
                } else {
                    report.sections.push(ScrubSection::ok(INDEX_NAME, manifest.index_bytes, 0));
                }
            }
        }
        Err(e) => {
            report.sections.push(ScrubSection::bad(INDEX_NAME, manifest.index_bytes, e.to_string()))
        }
    }

    for (segs, block_bytes) in [(&manifest.fwd, FWD_BLOCK_BYTES), (&manifest.inv, INV_BLOCK_BYTES)]
    {
        for meta in segs {
            report.sections.push(scrub_segment(dir, meta, block_bytes));
        }
    }
    Ok(report)
}

/// Stream one segment, verifying the whole-file hash and (when present)
/// every block checksum. The first bad block is named with its byte range;
/// RSS stays at one block buffer.
fn scrub_segment(dir: &Path, meta: &SegmentMeta, block_bytes: u64) -> ScrubSection {
    let file = match File::open(dir.join(&meta.file)) {
        Ok(f) => f,
        Err(e) => return ScrubSection::bad(meta.file.clone(), meta.bytes, e.to_string()),
    };
    let actual = match file.metadata() {
        Ok(m) => m.len(),
        Err(e) => return ScrubSection::bad(meta.file.clone(), meta.bytes, e.to_string()),
    };
    if actual != meta.bytes {
        return ScrubSection::bad(
            meta.file.clone(),
            meta.bytes,
            format!("expected {} bytes, found {actual}", meta.bytes),
        );
    }
    let mut r = BufReader::with_capacity(block_bytes as usize, file);
    let blocks = SegmentMeta::block_count(meta.bytes, block_bytes);
    let mut buf = vec![0u8; block_bytes as usize];
    let mut whole = Fnv64::new();
    for b in 0..blocks {
        let len = (meta.bytes - b * block_bytes).min(block_bytes) as usize;
        if let Err(e) = r.read_exact(&mut buf[..len]) {
            return ScrubSection::bad(
                meta.file.clone(),
                meta.bytes,
                format!("read failed at block {b} (byte {}): {e}", b * block_bytes),
            );
        }
        whole.update(&buf[..len]);
        if let Some(&want) = meta.block_sums.get(b as usize) {
            let got = fnv64(&buf[..len]);
            if got != want {
                let lo = b * block_bytes;
                return ScrubSection::bad(
                    meta.file.clone(),
                    meta.bytes,
                    format!(
                        "block {b} (bytes {lo}..{}) checksum mismatch: manifest {want:016x}, file {got:016x}",
                        lo + len as u64
                    ),
                );
            }
        }
    }
    let got = whole.finish();
    if got != meta.checksum {
        return ScrubSection::bad(
            meta.file.clone(),
            meta.bytes,
            format!(
                "whole-file checksum mismatch: manifest {:016x}, file {got:016x}",
                meta.checksum
            ),
        );
    }
    ScrubSection::ok(meta.file.clone(), meta.bytes, blocks)
}
