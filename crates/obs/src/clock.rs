//! A time source that is either the machine's monotonic clock or a manually
//! advanced counter — the latter makes span timing deterministic in tests.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Microsecond clock. [`Clock::real`] reads the monotonic clock relative to
/// the clock's creation; [`Clock::manual`] only moves when told to via
/// [`Clock::advance`]. Cloning shares the underlying time source, so a span
/// holding a clone of a manual clock sees the test's `advance` calls.
#[derive(Clone, Debug)]
pub struct Clock {
    inner: Inner,
}

#[derive(Clone, Debug)]
enum Inner {
    Real(Instant),
    Manual(Arc<AtomicU64>),
}

impl Clock {
    /// The monotonic wall clock, zeroed at creation.
    pub fn real() -> Self {
        Clock { inner: Inner::Real(Instant::now()) }
    }

    /// A clock that starts at 0 µs and only moves via [`Clock::advance`].
    pub fn manual() -> Self {
        Clock { inner: Inner::Manual(Arc::new(AtomicU64::new(0))) }
    }

    /// Microseconds since the clock's origin.
    pub fn now_us(&self) -> u64 {
        match &self.inner {
            Inner::Real(origin) => origin.elapsed().as_micros().min(u64::MAX as u128) as u64,
            Inner::Manual(t) => t.load(Ordering::Relaxed),
        }
    }

    /// Move a manual clock forward by `d`. Panics on a real clock — tests
    /// that advance time must construct the clock with [`Clock::manual`].
    pub fn advance(&self, d: Duration) {
        match &self.inner {
            Inner::Manual(t) => {
                t.fetch_add(d.as_micros().min(u64::MAX as u128) as u64, Ordering::Relaxed);
            }
            Inner::Real(_) => panic!("Clock::advance is only meaningful on a manual clock"),
        }
    }

    /// `true` for a manual (test) clock.
    pub fn is_manual(&self) -> bool {
        matches!(self.inner, Inner::Manual(_))
    }
}

impl Default for Clock {
    fn default() -> Self {
        Clock::real()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_clock_is_monotone() {
        let c = Clock::real();
        let a = c.now_us();
        let b = c.now_us();
        assert!(b >= a);
        assert!(!c.is_manual());
    }

    #[test]
    fn manual_clock_moves_only_on_advance() {
        let c = Clock::manual();
        assert_eq!(c.now_us(), 0);
        c.advance(Duration::from_micros(250));
        assert_eq!(c.now_us(), 250);
        // clones share the time source
        let shared = c.clone();
        shared.advance(Duration::from_millis(1));
        assert_eq!(c.now_us(), 1250);
    }

    #[test]
    #[should_panic(expected = "manual clock")]
    fn advancing_a_real_clock_panics() {
        Clock::real().advance(Duration::from_micros(1));
    }
}
