//! `rmpi-obs` — the workspace's observability layer, std-only.
//!
//! Every long-running subsystem (trainer, worker pool, subgraph cache,
//! serving engine, TCP front end) records into one [`MetricsRegistry`]:
//!
//! * [`Counter`] — monotone relaxed-atomic event counts;
//! * [`Gauge`] — last-value instruments (queue depth, cache entries);
//! * [`Histogram`] — fixed-bucket latency distributions with `p50`/`p90`/
//!   `p99` summaries, safe to hammer from any number of threads;
//! * [`Span`] — scoped timers that record into a histogram on drop, driven
//!   by a [`Clock`] that is either real (monotonic) or manual (tests);
//! * [`json`] — the shared single-line JSON writer every stats/metrics/bench
//!   emitter in the workspace routes through.
//!
//! # Naming scheme
//!
//! Metric names follow `subsystem.metric.unit` — e.g. `trainer.forward.us`,
//! `pool.items.count`, `serve.queue_wait.us`. Units: `us` (microseconds,
//! histograms), `count` (counters/gauges). See `DESIGN.md` §10.
//!
//! # Overhead contract
//!
//! Recording is a handful of relaxed atomic operations — no locks on the hot
//! path (the registry's lock is only taken when a handle is first created).
//! Instrumented hot loops cache their handles up front, so per-sample cost
//! stays in the tens of nanoseconds against millisecond-scale forward
//! passes (budget: < 3% on `train_epoch_parallel`).
//!
//! # Determinism
//!
//! Metrics observe; they never feed back into computation. Training remains
//! bit-identical across thread counts with instrumentation on. The
//! [`Clock::manual`] variant makes span timing itself deterministic in
//! tests.

pub mod clock;
pub mod json;
pub mod metrics;
pub mod span;

pub use clock::Clock;
pub use metrics::{global, Counter, Gauge, Histogram, HistogramSummary, MetricsRegistry};
pub use span::Span;

/// Time `f`, recording its wall-clock duration into the histogram `name` of
/// the **global** registry. The everyday one-liner for cold paths; hot loops
/// should cache a [`Histogram`] handle and record explicitly.
pub fn time_us<T>(name: &str, f: impl FnOnce() -> T) -> T {
    let hist = global().histogram(name);
    let start = std::time::Instant::now();
    let out = f();
    hist.record_duration(start.elapsed());
    out
}

/// Record a failed **directory** fsync after an atomic rename-publish.
///
/// The rename itself succeeded, so callers keep going — but without the
/// directory fsync the rename is not guaranteed durable across power loss,
/// and silently dropping the error (`let _ = d.sync_all()`) hides exactly
/// the durability regressions a crash-safe artifact pipeline exists to
/// prevent. Every occurrence bumps the `io.dir_fsync_failures.count`
/// counter on the global registry; the first occurrence per process is also
/// logged to stderr.
pub fn note_dir_fsync_failure(dir: &std::path::Path, err: &std::io::Error) {
    global().counter("io.dir_fsync_failures.count").inc();
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        eprintln!(
            "warning: fsync of directory {} failed after rename: {err} \
             (the publish completed but may not survive power loss; \
             further occurrences are counted in io.dir_fsync_failures)",
            dir.display()
        );
    });
}

/// Scope a span on the given registry: `span!(registry, "serve.score.us")`
/// expands to a guard that records the elapsed microseconds into that
/// histogram when it leaves scope.
#[macro_export]
macro_rules! span {
    ($registry:expr, $name:expr) => {
        $crate::Span::enter(&$registry.histogram($name), $crate::Clock::real())
    };
    ($registry:expr, $name:expr, $clock:expr) => {
        $crate::Span::enter(&$registry.histogram($name), $clock)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_us_records_into_global() {
        let before = global().histogram("obs.selftest.us").summary().count;
        let out = time_us("obs.selftest.us", || 41 + 1);
        assert_eq!(out, 42);
        assert!(global().histogram("obs.selftest.us").summary().count > before);
    }

    #[test]
    fn span_macro_scopes_a_timer() {
        let reg = MetricsRegistry::new();
        {
            let _guard = span!(reg, "obs.macro.us");
        }
        assert_eq!(reg.histogram("obs.macro.us").summary().count, 1);
    }
}
