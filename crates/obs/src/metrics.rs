//! The metrics registry and its three instrument kinds.
//!
//! A [`MetricsRegistry`] is a named map of instruments. Handles
//! ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc`-backed clones:
//! the registry's lock is touched only when a handle is created, recording
//! itself is purely relaxed atomics. Get-or-create is idempotent — asking
//! twice for `pool.items.count` returns handles over the same storage, which
//! is what lets far-apart subsystems share one process-wide tally.

use crate::json::JsonObject;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Duration;

/// A monotone event counter (relaxed atomics; safe from any thread).
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A free-standing counter (not registered anywhere).
    pub fn detached() -> Self {
        Counter(Arc::new(AtomicU64::new(0)))
    }

    /// Count one event.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Count `n` events.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A last-value instrument (queue depth, cache entries, worker count).
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A free-standing gauge (not registered anywhere).
    pub fn detached() -> Self {
        Gauge(Arc::new(AtomicI64::new(0)))
    }

    /// Overwrite the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Shift the value by `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Upper bucket bounds used when a histogram is created without explicit
/// bounds: powers of two from 1 µs to ~67 s. Values above the last bound
/// land in an implicit overflow bucket.
pub const DEFAULT_LATENCY_BOUNDS_US: [u64; 27] = {
    let mut b = [0u64; 27];
    let mut i = 0;
    while i < 27 {
        b[i] = 1u64 << i;
        i += 1;
    }
    b
};

#[derive(Debug)]
struct HistogramCore {
    /// Ascending upper bounds; `counts` has one extra slot for overflow.
    bounds: Vec<u64>,
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// A fixed-bucket histogram of `u64` samples (latencies in µs by
/// convention). Recording is 4 relaxed atomic ops; percentile queries walk
/// the bucket array and report the upper bound of the bucket holding the
/// requested rank, clamped to the largest value actually observed.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramCore>);

/// A point-in-time digest of one histogram.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Mean sample (0 when empty).
    pub mean: f64,
    /// Largest sample.
    pub max: u64,
    /// Median estimate.
    pub p50: u64,
    /// 90th-percentile estimate.
    pub p90: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
}

impl Histogram {
    /// A free-standing histogram with the given ascending bucket bounds.
    pub fn with_bounds(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket bound");
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bucket bounds must be strictly ascending");
        let mut counts = Vec::with_capacity(bounds.len() + 1);
        counts.resize_with(bounds.len() + 1, || AtomicU64::new(0));
        Histogram(Arc::new(HistogramCore {
            bounds: bounds.to_vec(),
            counts,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }))
    }

    /// A free-standing histogram with [`DEFAULT_LATENCY_BOUNDS_US`].
    pub fn detached() -> Self {
        Histogram::with_bounds(&DEFAULT_LATENCY_BOUNDS_US)
    }

    /// Record one sample.
    pub fn record(&self, value: u64) {
        let c = &self.0;
        // partition_point: first bucket whose upper bound admits the value
        let idx = c.bounds.partition_point(|&b| b < value);
        c.counts[idx].fetch_add(1, Ordering::Relaxed);
        c.count.fetch_add(1, Ordering::Relaxed);
        c.sum.fetch_add(value, Ordering::Relaxed);
        c.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Record a duration in whole microseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples recorded so far.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Largest sample recorded so far.
    pub fn max(&self) -> u64 {
        self.0.max.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0.0..=1.0`): the upper bound of the bucket holding
    /// the rank-`ceil(q·count)` sample, clamped to the observed maximum.
    /// Returns 0 for an empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        let c = &self.0;
        let total = c.count.load(Ordering::Relaxed);
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let max = c.max.load(Ordering::Relaxed);
        let mut cumulative = 0u64;
        for (i, slot) in c.counts.iter().enumerate() {
            cumulative += slot.load(Ordering::Relaxed);
            if cumulative >= rank {
                return c.bounds.get(i).copied().unwrap_or(max).min(max);
            }
        }
        max
    }

    /// Count, sum, mean, max and the standard percentiles in one read.
    pub fn summary(&self) -> HistogramSummary {
        let count = self.count();
        let sum = self.sum();
        HistogramSummary {
            count,
            sum,
            mean: if count == 0 { 0.0 } else { sum as f64 / count as f64 },
            max: self.max(),
            p50: self.percentile(0.50),
            p90: self.percentile(0.90),
            p99: self.percentile(0.99),
        }
    }

    fn reset(&self) {
        for slot in &self.0.counts {
            slot.store(0, Ordering::Relaxed);
        }
        self.0.count.store(0, Ordering::Relaxed);
        self.0.sum.store(0, Ordering::Relaxed);
        self.0.max.store(0, Ordering::Relaxed);
    }

    /// Render the summary as a single-line JSON object.
    pub fn summary_json(&self) -> String {
        let s = self.summary();
        let mut o = JsonObject::new();
        o.field_u64("count", s.count);
        o.field_u64("sum", s.sum);
        o.field_f64("mean", s.mean, 1);
        o.field_u64("max", s.max);
        o.field_u64("p50", s.p50);
        o.field_u64("p90", s.p90);
        o.field_u64("p99", s.p99);
        o.finish()
    }
}

#[derive(Clone, Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A named map of instruments. `BTreeMap` keeps JSON dumps deterministically
/// sorted; the lock is only held for handle creation and dumps, never for
/// recording.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    metrics: RwLock<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The process-wide registry every subsystem records into by default.
    pub fn global() -> &'static Arc<MetricsRegistry> {
        global()
    }

    fn get_or_insert<T: Clone>(
        &self,
        name: &str,
        pick: impl Fn(&Metric) -> Option<T>,
        make: impl FnOnce() -> (Metric, T),
    ) -> T {
        if let Some(metric) = self.metrics.read().expect("metrics lock").get(name) {
            return pick(metric).unwrap_or_else(|| {
                panic!("metric {name:?} is already registered as a {}", metric.kind())
            });
        }
        let mut map = self.metrics.write().expect("metrics lock");
        // double-checked: another thread may have created it meanwhile
        if let Some(metric) = map.get(name) {
            return pick(metric).unwrap_or_else(|| {
                panic!("metric {name:?} is already registered as a {}", metric.kind())
            });
        }
        let (metric, handle) = make();
        map.insert(name.to_owned(), metric);
        handle
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        self.get_or_insert(
            name,
            |m| if let Metric::Counter(c) = m { Some(c.clone()) } else { None },
            || {
                let c = Counter::detached();
                (Metric::Counter(c.clone()), c)
            },
        )
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.get_or_insert(
            name,
            |m| if let Metric::Gauge(g) = m { Some(g.clone()) } else { None },
            || {
                let g = Gauge::detached();
                (Metric::Gauge(g.clone()), g)
            },
        )
    }

    /// Get or create the histogram `name` with the default latency buckets.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with_bounds(name, &DEFAULT_LATENCY_BOUNDS_US)
    }

    /// Get or create the histogram `name` with explicit bucket bounds
    /// (ignored when the histogram already exists).
    pub fn histogram_with_bounds(&self, name: &str, bounds: &[u64]) -> Histogram {
        self.get_or_insert(
            name,
            |m| if let Metric::Histogram(h) = m { Some(h.clone()) } else { None },
            || {
                let h = Histogram::with_bounds(bounds);
                (Metric::Histogram(h.clone()), h)
            },
        )
    }

    /// `true` when a metric of any kind is registered under `name`.
    pub fn contains(&self, name: &str) -> bool {
        self.metrics.read().expect("metrics lock").contains_key(name)
    }

    /// All registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.metrics.read().expect("metrics lock").keys().cloned().collect()
    }

    /// Zero every instrument, keeping registrations (and handles) alive.
    /// Bench harnesses call this between measured configurations.
    pub fn reset(&self) {
        for metric in self.metrics.read().expect("metrics lock").values() {
            match metric {
                Metric::Counter(c) => c.reset(),
                Metric::Gauge(g) => g.reset(),
                Metric::Histogram(h) => h.reset(),
            }
        }
    }

    /// The whole registry as one single-line JSON object, names sorted.
    /// Counters and gauges dump as numbers, histograms as
    /// `{"count":…,"sum":…,"mean":…,"max":…,"p50":…,"p90":…,"p99":…}`.
    pub fn to_json(&self) -> String {
        let map = self.metrics.read().expect("metrics lock");
        let mut o = JsonObject::new();
        for (name, metric) in map.iter() {
            match metric {
                Metric::Counter(c) => o.field_u64(name, c.get()),
                Metric::Gauge(g) => o.field_i64(name, g.get()),
                Metric::Histogram(h) => o.field_raw(name, &h.summary_json()),
            };
        }
        o.finish()
    }
}

static GLOBAL: OnceLock<Arc<MetricsRegistry>> = OnceLock::new();

/// The process-wide registry. Subsystems record here unless handed an
/// explicit registry; `METRICS`-style dumps of this registry therefore see
/// trainer, pool, cache and serve metrics side by side.
pub fn global() -> &'static Arc<MetricsRegistry> {
    GLOBAL.get_or_init(|| Arc::new(MetricsRegistry::new()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_roundtrip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("t.events.count");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(reg.counter("t.events.count").get(), 5, "same storage on re-lookup");

        let g = reg.gauge("t.depth.count");
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
        assert_eq!(reg.gauge("t.depth.count").get(), 4);
    }

    #[test]
    #[should_panic(expected = "already registered as a counter")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("t.x");
        reg.histogram("t.x");
    }

    #[test]
    fn histogram_buckets_and_percentiles() {
        let h = Histogram::with_bounds(&[1, 2, 4, 8, 16]);
        for v in [1, 1, 2, 3, 5, 9, 9, 9, 9, 20] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 10);
        assert_eq!(s.sum, 68);
        assert_eq!(s.max, 20);
        assert!((s.mean - 6.8).abs() < 1e-9, "{}", s.mean);
        // ranks: bucket cumulative ≤1:2, ≤2:3, ≤4:4, ≤8:5, ≤16:9, overflow:10
        assert_eq!(h.percentile(0.5), 8, "rank 5 sits in the ≤8 bucket");
        assert_eq!(h.percentile(0.9), 16, "rank 9 sits in the ≤16 bucket");
        assert_eq!(h.percentile(0.99), 20, "rank 10 overflows; clamped to max");
        assert_eq!(h.percentile(0.0), 1, "rank clamps to 1; sample 1 sits in the ≤1 bucket");
        assert_eq!(h.percentile(1.0), 20);
    }

    #[test]
    fn percentile_clamps_to_observed_max() {
        let h = Histogram::with_bounds(&[100, 1000]);
        h.record(3);
        h.record(5);
        // rank lands in the ≤100 bucket, but nothing above 5 was observed
        assert_eq!(h.percentile(0.99), 5);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::detached();
        let s = h.summary();
        assert_eq!(s, HistogramSummary::default());
        assert_eq!(h.percentile(0.5), 0);
    }

    #[test]
    fn default_bounds_are_ascending_powers_of_two() {
        assert_eq!(DEFAULT_LATENCY_BOUNDS_US[0], 1);
        assert_eq!(DEFAULT_LATENCY_BOUNDS_US[26], 1 << 26);
        assert!(DEFAULT_LATENCY_BOUNDS_US.windows(2).all(|w| w[1] == w[0] * 2));
    }

    #[test]
    fn reset_zeroes_but_keeps_registrations() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("t.c.count");
        let h = reg.histogram("t.h.us");
        c.add(9);
        h.record(100);
        reg.reset();
        assert_eq!(c.get(), 0, "existing handles see the reset");
        assert_eq!(h.summary(), HistogramSummary::default());
        assert!(reg.contains("t.c.count"));
    }

    #[test]
    fn json_dump_is_sorted_single_line_and_typed() {
        let reg = MetricsRegistry::new();
        reg.counter("b.counter.count").add(2);
        reg.gauge("a.gauge.count").set(-1);
        let h = reg.histogram("c.hist.us");
        h.record(10);
        let json = reg.to_json();
        assert!(!json.contains('\n'));
        let a = json.find("a.gauge.count").unwrap();
        let b = json.find("b.counter.count").unwrap();
        let c = json.find("c.hist.us").unwrap();
        assert!(a < b && b < c, "sorted: {json}");
        assert!(json.contains("\"a.gauge.count\": -1"), "{json}");
        assert!(json.contains("\"b.counter.count\": 2"), "{json}");
        assert!(json.contains("\"c.hist.us\": {\"count\": 1"), "{json}");
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let reg = Arc::new(MetricsRegistry::new());
        let c = reg.counter("t.conc.count");
        let h = reg.histogram("t.conc.us");
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let (c, h) = (c.clone(), h.clone());
                scope.spawn(move || {
                    for v in 0..1000u64 {
                        c.inc();
                        h.record(v % 64);
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
        assert_eq!(h.count(), 8000);
        assert_eq!(h.sum(), 8 * (0..1000u64).map(|v| v % 64).sum::<u64>());
    }
}
