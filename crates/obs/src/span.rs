//! Scoped timers: a [`Span`] starts at construction and records its elapsed
//! microseconds into a [`Histogram`] when dropped (or earlier via
//! [`Span::stop`]). The time source is a [`Clock`], so tests drive spans with
//! a manual clock and assert exact durations.

use crate::clock::Clock;
use crate::metrics::Histogram;

/// A guard that measures the scope it lives in. Created by [`Span::enter`]
/// or the `span!` macro; records exactly once, on drop or explicit `stop`.
#[derive(Debug)]
pub struct Span {
    hist: Histogram,
    clock: Clock,
    start_us: u64,
    recorded: bool,
}

impl Span {
    /// Start timing against `hist` using `clock` as the time source.
    pub fn enter(hist: &Histogram, clock: Clock) -> Self {
        let start_us = clock.now_us();
        Span { hist: hist.clone(), clock, start_us, recorded: false }
    }

    /// Microseconds elapsed so far without ending the span.
    pub fn elapsed_us(&self) -> u64 {
        self.clock.now_us().saturating_sub(self.start_us)
    }

    /// End the span now, record the elapsed time, and return it. Dropping
    /// after `stop` does not record again.
    pub fn stop(mut self) -> u64 {
        let elapsed = self.elapsed_us();
        self.hist.record(elapsed);
        self.recorded = true;
        elapsed
    }

    /// Abandon the span without recording anything (e.g. on an error path
    /// whose timing would pollute the success histogram).
    pub fn cancel(mut self) {
        self.recorded = true;
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.recorded {
            self.hist.record(self.elapsed_us());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn span_records_on_drop_with_manual_clock() {
        let h = Histogram::detached();
        let clock = Clock::manual();
        {
            let _span = Span::enter(&h, clock.clone());
            clock.advance(Duration::from_micros(300));
        }
        let s = h.summary();
        assert_eq!(s.count, 1);
        assert_eq!(s.sum, 300);
        assert_eq!(s.max, 300);
    }

    #[test]
    fn stop_records_once_and_returns_elapsed() {
        let h = Histogram::detached();
        let clock = Clock::manual();
        let span = Span::enter(&h, clock.clone());
        clock.advance(Duration::from_micros(42));
        assert_eq!(span.elapsed_us(), 42);
        assert_eq!(span.stop(), 42);
        assert_eq!(h.summary().count, 1, "drop after stop must not double-record");
    }

    #[test]
    fn cancel_records_nothing() {
        let h = Histogram::detached();
        let clock = Clock::manual();
        let span = Span::enter(&h, clock.clone());
        clock.advance(Duration::from_micros(5));
        span.cancel();
        assert_eq!(h.summary().count, 0);
    }

    #[test]
    fn sequential_spans_accumulate() {
        let h = Histogram::detached();
        let clock = Clock::manual();
        for us in [10u64, 20, 30] {
            let span = Span::enter(&h, clock.clone());
            clock.advance(Duration::from_micros(us));
            span.stop();
        }
        let s = h.summary();
        assert_eq!(s.count, 3);
        assert_eq!(s.sum, 60);
        assert_eq!(s.max, 30);
    }

    #[test]
    fn real_clock_span_records_something() {
        let h = Histogram::detached();
        {
            let _span = Span::enter(&h, Clock::real());
        }
        assert_eq!(h.summary().count, 1);
    }
}
