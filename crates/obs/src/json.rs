//! The workspace's shared single-line JSON writer. Serve's STATS output,
//! the registry's METRICS dump, and the `BENCH_*.json` emitters all route
//! through this module so escaping and number formatting live in one place.
//!
//! Output shape is fixed: `{"key": value, "other": value}` — `": "` after
//! keys, `", "` between fields, no trailing newline. That matches the
//! pre-existing STATS wire format byte for byte.

/// Escape `s` for embedding inside a JSON string literal (no surrounding
/// quotes). Handles quotes, backslashes, and control characters.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Incremental builder for one single-line JSON object.
///
/// ```
/// use rmpi_obs::json::JsonObject;
/// let mut o = JsonObject::new();
/// o.field_u64("count", 3);
/// o.field_f64("rate", 0.51234, 4);
/// o.field_str("name", "p\"q");
/// assert_eq!(o.finish(), r#"{"count": 3, "rate": 0.5123, "name": "p\"q"}"#);
/// ```
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
    fields: usize,
}

impl JsonObject {
    /// Start an empty object.
    pub fn new() -> Self {
        JsonObject { buf: String::from("{"), fields: 0 }
    }

    fn key(&mut self, name: &str) {
        if self.fields > 0 {
            self.buf.push_str(", ");
        }
        self.buf.push('"');
        self.buf.push_str(&escape(name));
        self.buf.push_str("\": ");
        self.fields += 1;
    }

    /// Append an unsigned integer field.
    pub fn field_u64(&mut self, name: &str, v: u64) -> &mut Self {
        self.key(name);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Append a signed integer field.
    pub fn field_i64(&mut self, name: &str, v: i64) -> &mut Self {
        self.key(name);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Append a float field rendered with `precision` decimal places
    /// (non-finite values are rendered as `null`).
    pub fn field_f64(&mut self, name: &str, v: f64, precision: usize) -> &mut Self {
        self.key(name);
        if v.is_finite() {
            self.buf.push_str(&format!("{v:.precision$}"));
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Append a boolean field.
    pub fn field_bool(&mut self, name: &str, v: bool) -> &mut Self {
        self.key(name);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Append a string field (escaped and quoted).
    pub fn field_str(&mut self, name: &str, v: &str) -> &mut Self {
        self.key(name);
        self.buf.push('"');
        self.buf.push_str(&escape(v));
        self.buf.push('"');
        self
    }

    /// Append pre-rendered JSON verbatim (a nested object or array the
    /// caller already serialized).
    pub fn field_raw(&mut self, name: &str, json: &str) -> &mut Self {
        self.key(name);
        self.buf.push_str(json);
        self
    }

    /// Close the object and return the single-line string.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Render a sequence of pre-serialized JSON values as an array.
pub fn array(items: &[String]) -> String {
    let mut buf = String::from("[");
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            buf.push_str(", ");
        }
        buf.push_str(item);
    }
    buf.push(']');
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn object_shape_matches_stats_wire_format() {
        let mut o = JsonObject::new();
        o.field_u64("scores", 12);
        o.field_f64("latency_us_mean", 33.449, 1);
        o.field_f64("cache_hit_rate", 0.5, 4);
        assert_eq!(
            o.finish(),
            "{\"scores\": 12, \"latency_us_mean\": 33.4, \"cache_hit_rate\": 0.5000}"
        );
    }

    #[test]
    fn empty_object_and_nested_raw() {
        assert_eq!(JsonObject::new().finish(), "{}");
        let mut inner = JsonObject::new();
        inner.field_u64("n", 1);
        let mut outer = JsonObject::new();
        outer.field_raw("inner", &inner.finish());
        assert_eq!(outer.finish(), "{\"inner\": {\"n\": 1}}");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut o = JsonObject::new();
        o.field_f64("bad", f64::NAN, 2);
        o.field_f64("inf", f64::INFINITY, 2);
        assert_eq!(o.finish(), "{\"bad\": null, \"inf\": null}");
    }

    #[test]
    fn array_joins_items() {
        assert_eq!(array(&[]), "[]");
        assert_eq!(array(&["1".into(), "{\"a\": 2}".into()]), "[1, {\"a\": 2}]");
    }
}
