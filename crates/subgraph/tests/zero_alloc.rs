//! Steady-state subgraph extraction performs **zero heap allocations**.
//!
//! This is the core promise of the dense-scratch rewrite: once the
//! [`ExtractScratch`] arrays and the output [`Subgraph`] buffers have grown
//! to the workload's high-water mark, `enclosing_subgraph_into` /
//! `disclosing_subgraph_into` never touch the allocator again. The test
//! counts allocator calls with a process-global counting allocator, so it
//! lives in its own test binary (a `#[global_allocator]` applies to every
//! test in the binary) and the measured section runs on this thread only.

use rmpi_kg::{CsrGraph, KnowledgeGraph, Triple};
use rmpi_subgraph::{disclosing_subgraph_into, enclosing_subgraph_into, ExtractScratch, Subgraph};
use rmpi_testutil::CountingAllocator;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

/// Deterministic pseudo-random multigraph: `n_triples` edges over
/// `n_entities` entities and `n_relations` relations.
fn build_graph(n_entities: u32, n_relations: u32, n_triples: usize, seed: u32) -> KnowledgeGraph {
    let mut state = seed.wrapping_mul(2654435761).wrapping_add(12345);
    let mut next = || {
        state = state.wrapping_mul(1664525).wrapping_add(1013904223);
        state >> 8
    };
    let triples: Vec<Triple> = (0..n_triples)
        .map(|_| Triple::new(next() % n_entities, next() % n_relations, next() % n_entities))
        .collect();
    KnowledgeGraph::from_triples(triples)
}

fn targets(n_entities: u32, count: usize, seed: u32) -> Vec<Triple> {
    let mut state = seed.wrapping_mul(2246822519).wrapping_add(7);
    let mut next = || {
        state = state.wrapping_mul(1664525).wrapping_add(1013904223);
        state >> 8
    };
    (0..count).map(|_| Triple::new(next() % n_entities, 99u32, next() % n_entities)).collect()
}

#[test]
fn steady_state_extraction_is_allocation_free() {
    let g = build_graph(300, 12, 2400, 1);
    let csr = CsrGraph::from_graph(&g);
    let ts = targets(300, 64, 2);

    let mut scratch = ExtractScratch::new();
    let mut out = Subgraph::empty(ts[0]);

    // Warm-up: size every buffer to the workload's high-water mark. The
    // second pass repeats the exact same targets, so no buffer can need to
    // grow past what this pass established.
    for &t in &ts {
        for k in 0..=2usize {
            enclosing_subgraph_into(&csr, t, k, &mut scratch, &mut out);
            disclosing_subgraph_into(&csr, t, k, &mut scratch, &mut out);
            enclosing_subgraph_into(&g, t, k, &mut scratch, &mut out);
            disclosing_subgraph_into(&g, t, k, &mut scratch, &mut out);
        }
    }

    let before = ALLOC.allocations();
    let mut checksum = 0usize;
    for &t in &ts {
        for k in 0..=2usize {
            enclosing_subgraph_into(&csr, t, k, &mut scratch, &mut out);
            checksum += out.num_edges() + out.num_entities();
            disclosing_subgraph_into(&csr, t, k, &mut scratch, &mut out);
            checksum += out.num_edges() + out.num_entities();
            enclosing_subgraph_into(&g, t, k, &mut scratch, &mut out);
            checksum += out.num_edges();
            disclosing_subgraph_into(&g, t, k, &mut scratch, &mut out);
            checksum += out.num_edges();
        }
    }
    let allocations = ALLOC.allocations() - before;

    assert!(checksum > 0, "extractions produced no output — workload degenerate");
    assert_eq!(
        allocations,
        0,
        "steady-state extraction allocated {allocations} times over {} calls",
        ts.len() * 3 * 4
    );
}

#[test]
fn thread_local_wrapper_reaches_steady_state() {
    // The convenience wrappers allocate only for the returned Subgraph's own
    // buffers — growth of the thread-local scratch stops after warm-up. This
    // bounds, rather than zeroes, their steady-state traffic: the point is
    // that repeated wrapper calls don't regrow scratch arrays.
    let g = build_graph(200, 8, 1200, 3);
    let ts = targets(200, 16, 4);
    for &t in &ts {
        rmpi_subgraph::enclosing_subgraph(&g, t, 2);
    }
    let before = ALLOC.allocations();
    for &t in &ts {
        rmpi_subgraph::enclosing_subgraph(&g, t, 2);
    }
    let per_call = (ALLOC.allocations() - before) as usize / ts.len();
    // each call allocates the output Subgraph's three Vecs (plus their
    // growth); a regression that re-grows scratch would blow well past this
    assert!(per_call < 32, "wrapper steady state allocates {per_call} times per call");
}
