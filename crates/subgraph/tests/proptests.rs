//! Property-based tests for subgraph extraction and the relation-view
//! transform.

use proptest::prelude::*;
use rmpi_kg::{KnowledgeGraph, Triple};
use rmpi_subgraph::relview::TARGET_NODE;
use rmpi_subgraph::{
    disclosing_subgraph, double_radius_labels, enclosing_subgraph, PruningSchedule, RelEdgeType,
    RelViewGraph,
};
use std::collections::HashSet;

fn arb_graph_and_target() -> impl Strategy<Value = (KnowledgeGraph, Triple)> {
    (prop::collection::vec((0u32..20, 0u32..5, 0u32..20), 1..80), (0u32..20, 5u32..8, 0u32..20))
        .prop_map(|(edges, (h, r, t))| {
            let triples = edges.into_iter().map(|(a, rel, b)| Triple::new(a, rel, b)).collect();
            (KnowledgeGraph::from_triples(triples), Triple::new(h, r, t))
        })
}

proptest! {
    #[test]
    fn enclosing_subset_of_disclosing((g, target) in arb_graph_and_target(), k in 1usize..4) {
        let en = enclosing_subgraph(&g, target, k);
        let di = disclosing_subgraph(&g, target, k);
        let en_set: HashSet<Triple> = en.triples.iter().copied().collect();
        let di_set: HashSet<Triple> = di.triples.iter().copied().collect();
        prop_assert!(en_set.is_subset(&di_set));
        let en_e: HashSet<_> = en.entities.iter().collect();
        let di_e: HashSet<_> = di.entities.iter().collect();
        prop_assert!(en_e.is_subset(&di_e));
    }

    #[test]
    fn target_edge_never_included((g, target) in arb_graph_and_target(), k in 1usize..4) {
        let g = g.with_extra_triples(&[target]);
        for sg in [enclosing_subgraph(&g, target, k), disclosing_subgraph(&g, target, k)] {
            prop_assert!(!sg.triples.contains(&target));
            prop_assert!(sg.entities.contains(&target.head));
            prop_assert!(sg.entities.contains(&target.tail));
        }
    }

    #[test]
    fn relview_node_count_is_edges_plus_one((g, target) in arb_graph_and_target(), k in 1usize..3) {
        let sg = enclosing_subgraph(&g, target, k);
        let rv = RelViewGraph::from_subgraph(&sg);
        prop_assert_eq!(rv.num_nodes(), sg.num_edges() + 1);
        prop_assert_eq!(rv.nodes[TARGET_NODE].triple, target);
    }

    #[test]
    fn relview_edges_share_entities((g, target) in arb_graph_and_target()) {
        let sg = enclosing_subgraph(&g, target, 2);
        let rv = RelViewGraph::from_subgraph(&sg);
        for (dst, ins) in (0..rv.num_nodes()).map(|i| (i, rv.incoming(i))) {
            for e in ins {
                let a = rv.nodes[e.src].triple;
                let b = rv.nodes[dst].triple;
                prop_assert!(
                    a.head == b.head || a.head == b.tail || a.tail == b.head || a.tail == b.tail
                );
            }
        }
    }

    #[test]
    fn edge_type_classification_mirrors(
        (h1, t1, h2, t2) in (0u32..5, 0u32..5, 0u32..5, 0u32..5)
    ) {
        let a = Triple::new(h1, 0u32, t1);
        let b = Triple::new(h2, 1u32, t2);
        let ab = RelEdgeType::classify(a, b);
        let ba = RelEdgeType::classify(b, a);
        // both directions exist or neither does
        prop_assert_eq!(ab.is_empty(), ba.is_empty());
        // PARA and LOOP are symmetric
        prop_assert_eq!(ab.contains(&RelEdgeType::Para), ba.contains(&RelEdgeType::Para));
        prop_assert_eq!(ab.contains(&RelEdgeType::Loop), ba.contains(&RelEdgeType::Loop));
        // H-T mirrors to T-H
        prop_assert_eq!(ab.contains(&RelEdgeType::HT), ba.contains(&RelEdgeType::TH));
        // H-H and T-T mirror to themselves
        prop_assert_eq!(ab.contains(&RelEdgeType::HH), ba.contains(&RelEdgeType::HH));
        prop_assert_eq!(ab.contains(&RelEdgeType::TT), ba.contains(&RelEdgeType::TT));
    }

    #[test]
    fn pruning_layers_shrink((g, target) in arb_graph_and_target(), k in 1usize..4) {
        let sg = enclosing_subgraph(&g, target, 2);
        let rv = RelViewGraph::from_subgraph(&sg);
        let sched = PruningSchedule::new(&rv, k);
        let mut prev = usize::MAX;
        for layer in 1..=k {
            let n = sched.active_nodes(layer).len();
            prop_assert!(n <= prev);
            prev = n;
        }
        // last layer is exactly the target
        prop_assert_eq!(sched.active_nodes(k), vec![TARGET_NODE]);
        let (pruned, full) = sched.update_counts();
        prop_assert!(pruned <= full);
    }

    #[test]
    fn labels_respect_bounds((g, target) in arb_graph_and_target(), max_dist in 1usize..5) {
        let sg = enclosing_subgraph(&g, target, 2);
        let labels = double_radius_labels(&sg, max_dist);
        prop_assert_eq!(labels.len(), sg.entities.len());
        for l in labels.values() {
            prop_assert!(l.du <= max_dist && l.dv <= max_dist);
            let oh = l.one_hot(max_dist);
            prop_assert_eq!(oh.iter().sum::<f32>(), 2.0);
        }
    }
}

// ---------------------------------------------------------------- CSR/dense-
// scratch extraction vs the legacy HashMap/HashSet reference. The rewrite
// must be observationally identical: same retained triples, same entities,
// same (entity, dist_u, dist_v) rows — on the Vec-of-Vecs backend AND on the
// CSR arenas, across random graphs, targets and hop counts. `k in 0..4`
// deliberately includes the hop-0 degenerate case.
proptest! {
    #[test]
    fn dense_extraction_matches_reference(
        (g, target) in arb_graph_and_target(),
        k in 0usize..4,
        include_target in any::<bool>(),
    ) {
        let g = if include_target { g.with_extra_triples(&[target]) } else { g };
        let csr = rmpi_kg::CsrGraph::from_graph(&g);

        let want_en = rmpi_subgraph::extraction::reference::enclosing_subgraph(&g, target, k);
        let want_di = rmpi_subgraph::extraction::reference::disclosing_subgraph(&g, target, k);

        for (label, got_en, got_di) in [
            ("vec", enclosing_subgraph(&g, target, k), disclosing_subgraph(&g, target, k)),
            ("csr", enclosing_subgraph(&csr, target, k), disclosing_subgraph(&csr, target, k)),
        ] {
            prop_assert_eq!(&got_en.triples, &want_en.triples, "enclosing triples ({})", label);
            prop_assert_eq!(&got_en.entities, &want_en.entities, "enclosing entities ({})", label);
            prop_assert_eq!(
                got_en.distance_rows(), want_en.distance_rows(),
                "enclosing distances ({})", label
            );
            prop_assert_eq!(&got_di.triples, &want_di.triples, "disclosing triples ({})", label);
            prop_assert_eq!(&got_di.entities, &want_di.entities, "disclosing entities ({})", label);
            prop_assert_eq!(
                got_di.distance_rows(), want_di.distance_rows(),
                "disclosing distances ({})", label
            );
        }
    }
}
