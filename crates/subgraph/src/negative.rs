//! Negative sampling by head/tail corruption (paper §III-E, §IV-B).
//!
//! A negative for `(h, r, t)` replaces the head or the tail with a uniformly
//! sampled entity such that the corrupted triple is not a known fact. The
//! same sampler drives training (one negative per positive) and evaluation
//! (49 ranking candidates).

use rand::seq::SliceRandom;
use rand::Rng;
use rmpi_kg::{EntityId, GraphAccess, KnowledgeGraph, Triple};

/// Uniform head/tail corruption over a fixed candidate entity pool.
#[derive(Clone, Debug)]
pub struct NegativeSampler {
    pool: Vec<EntityId>,
}

impl NegativeSampler {
    /// Sampler over all entities present in `g`.
    pub fn from_graph(g: &KnowledgeGraph) -> Self {
        NegativeSampler { pool: g.present_entities() }
    }

    /// Sampler over an explicit entity pool.
    pub fn from_pool(pool: Vec<EntityId>) -> Self {
        assert!(!pool.is_empty(), "empty candidate pool");
        NegativeSampler { pool }
    }

    /// The candidate entity pool.
    pub fn pool(&self) -> &[EntityId] {
        &self.pool
    }

    /// One corrupted triple: with probability 1/2 replace the head, else the
    /// tail, resampling until the result is not in `known` (up to a bounded
    /// number of attempts, after which the last candidate is returned — on
    /// realistic graphs a collision streak that long is unreachable).
    ///
    /// Generic over [`GraphAccess`]: the membership filter runs identically
    /// against an in-memory graph and a disk-backed store, drawing the same
    /// RNG sequence either way.
    pub fn corrupt<G: GraphAccess + ?Sized, R: Rng>(
        &self,
        positive: Triple,
        known: &G,
        rng: &mut R,
    ) -> Triple {
        let corrupt_head = rng.gen_bool(0.5);
        let mut candidate = positive;
        for _ in 0..64 {
            let e = *self.pool.choose(rng).expect("non-empty pool");
            candidate = if corrupt_head { positive.with_head(e) } else { positive.with_tail(e) };
            if candidate != positive && !known.contains(&candidate) {
                return candidate;
            }
        }
        candidate
    }

    /// `n` distinct corrupted tails for entity ranking — the "49 random
    /// candidates" protocol. The true tail is excluded; corrupted triples
    /// that happen to be known facts are also excluded (filtered setting).
    pub fn ranking_candidates<G: GraphAccess + ?Sized, R: Rng>(
        &self,
        positive: Triple,
        n: usize,
        corrupt_head: bool,
        known: &G,
        rng: &mut R,
    ) -> Vec<Triple> {
        let mut out = Vec::with_capacity(n);
        let mut seen = std::collections::HashSet::new();
        let mut attempts = 0usize;
        let max_attempts = 50 * n + 200;
        while out.len() < n && attempts < max_attempts {
            attempts += 1;
            let e = *self.pool.choose(rng).expect("non-empty pool");
            let cand = if corrupt_head { positive.with_head(e) } else { positive.with_tail(e) };
            if cand == positive || known.contains(&cand) || !seen.insert(e) {
                continue;
            }
            out.push(cand);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn graph() -> KnowledgeGraph {
        KnowledgeGraph::from_triples(
            (0..20u32).map(|i| Triple::new(i, 0u32, (i + 1) % 20)).collect(),
        )
    }

    #[test]
    fn corrupt_changes_exactly_one_endpoint() {
        let g = graph();
        let s = NegativeSampler::from_graph(&g);
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let pos = Triple::new(0u32, 0u32, 1u32);
        for _ in 0..100 {
            let neg = s.corrupt(pos, &g, &mut rng);
            assert_ne!(neg, pos);
            assert_eq!(neg.relation, pos.relation);
            let head_changed = neg.head != pos.head;
            let tail_changed = neg.tail != pos.tail;
            assert!(head_changed ^ tail_changed, "exactly one endpoint must change");
            assert!(!g.contains(&neg), "negative must not be a known fact");
        }
    }

    #[test]
    fn ranking_candidates_are_distinct_and_filtered() {
        let g = graph();
        let s = NegativeSampler::from_graph(&g);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let pos = Triple::new(0u32, 0u32, 1u32);
        let cands = s.ranking_candidates(pos, 10, false, &g, &mut rng);
        assert_eq!(cands.len(), 10);
        let tails: std::collections::HashSet<EntityId> = cands.iter().map(|t| t.tail).collect();
        assert_eq!(tails.len(), 10, "tails must be distinct");
        for c in &cands {
            assert_eq!(c.head, pos.head);
            assert!(!g.contains(c));
            assert_ne!(*c, pos);
        }
    }

    #[test]
    fn ranking_candidates_head_mode() {
        let g = graph();
        let s = NegativeSampler::from_graph(&g);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let pos = Triple::new(0u32, 0u32, 1u32);
        let cands = s.ranking_candidates(pos, 5, true, &g, &mut rng);
        for c in &cands {
            assert_eq!(c.tail, pos.tail);
            assert_ne!(c.head, pos.head);
        }
    }

    #[test]
    fn candidate_count_capped_by_pool() {
        // pool of 5 entities, ask for 50 tail candidates: at most 4 usable
        let g = KnowledgeGraph::from_triples(vec![
            Triple::new(0u32, 0u32, 1u32),
            Triple::new(1u32, 0u32, 2u32),
            Triple::new(2u32, 0u32, 3u32),
            Triple::new(3u32, 0u32, 4u32),
        ]);
        let s = NegativeSampler::from_graph(&g);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let pos = Triple::new(0u32, 0u32, 1u32);
        let cands = s.ranking_candidates(pos, 50, false, &g, &mut rng);
        assert!(cands.len() < 50);
        assert!(!cands.is_empty());
    }

    #[test]
    #[should_panic(expected = "empty candidate pool")]
    fn empty_pool_rejected() {
        NegativeSampler::from_pool(vec![]);
    }
}
