//! Target-relation-guided graph pruning (paper Algorithm 1).
//!
//! Message passing only needs to update a node at layer `k` if its features
//! can still reach the target node in the remaining `K - k` layers. The
//! schedule therefore samples the target's incoming-neighbour frontier sets
//! `N^1 .. N^K` once (steps 1–3 of Algorithm 1), and at layer `k` updates
//! exactly the nodes within `K - k` hops (steps 4–8).

use crate::relview::{RelViewGraph, TARGET_NODE};
use std::collections::VecDeque;

/// Precomputed per-layer update sets for K-layer message passing on one
/// relation-view graph.
#[derive(Clone, Debug)]
pub struct PruningSchedule {
    /// `dist[i]` = hops from node `i` to the target along *outgoing* message
    /// flow (i.e. BFS over the target's incoming edges), or `usize::MAX` if
    /// the node can never influence the target.
    pub dist: Vec<usize>,
    /// Number of message passing layers.
    pub k: usize,
}

impl PruningSchedule {
    /// Build the schedule for `k` layers on `rv`.
    pub fn new(rv: &RelViewGraph, k: usize) -> Self {
        let mut dist = vec![usize::MAX; rv.num_nodes()];
        dist[TARGET_NODE] = 0;
        let mut q = VecDeque::new();
        q.push_back(TARGET_NODE);
        while let Some(cur) = q.pop_front() {
            let d = dist[cur];
            if d == k {
                continue;
            }
            for e in rv.incoming(cur) {
                if dist[e.src] == usize::MAX {
                    dist[e.src] = d + 1;
                    q.push_back(e.src);
                }
            }
        }
        PruningSchedule { dist, k }
    }

    /// Nodes whose representation must be updated at layer `layer`
    /// (1-based, `1..=k`): everything within `k - layer` hops of the target.
    ///
    /// The final layer (`layer == k`) updates only the target node itself.
    pub fn active_nodes(&self, layer: usize) -> Vec<usize> {
        assert!((1..=self.k).contains(&layer), "layer {layer} out of 1..={}", self.k);
        let budget = self.k - layer;
        self.dist.iter().enumerate().filter(|(_, &d)| d <= budget).map(|(i, _)| i).collect()
    }

    /// All nodes that participate in any layer (within `k` hops of target,
    /// including the target).
    pub fn relevant_nodes(&self) -> Vec<usize> {
        self.dist.iter().enumerate().filter(|(_, &d)| d != usize::MAX).map(|(i, _)| i).collect()
    }

    /// How many node updates the pruned schedule performs in total,
    /// versus the unpruned `k * |V|` cost — the efficiency win of Alg. 1.
    pub fn update_counts(&self) -> (usize, usize) {
        let pruned: usize = (1..=self.k).map(|l| self.active_nodes(l).len()).sum();
        let full = self.k * self.dist.len();
        (pruned, full)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extraction::enclosing_subgraph;
    use rmpi_kg::{KnowledgeGraph, Triple};

    fn chain_relview() -> RelViewGraph {
        // chain 0->1->2->3->4 with target (0, rt, 4): relation nodes form a path
        let g = KnowledgeGraph::from_triples(vec![
            Triple::new(0u32, 0u32, 1u32),
            Triple::new(1u32, 1u32, 2u32),
            Triple::new(2u32, 2u32, 3u32),
            Triple::new(3u32, 3u32, 4u32),
        ]);
        let sg = enclosing_subgraph(&g, Triple::new(0u32, 9u32, 4u32), 4);
        RelViewGraph::from_subgraph(&sg)
    }

    #[test]
    fn distances_from_target() {
        let rv = chain_relview();
        let sched = PruningSchedule::new(&rv, 3);
        assert_eq!(sched.dist[TARGET_NODE], 0);
        // the edges incident to entity 0 or 4 are 1 hop from the target node
        let one_hop: Vec<usize> =
            sched.dist.iter().enumerate().filter(|(_, &d)| d == 1).map(|(i, _)| i).collect();
        assert_eq!(one_hop.len(), 2, "chain ends touch the target");
    }

    #[test]
    fn last_layer_updates_only_target() {
        let rv = chain_relview();
        let sched = PruningSchedule::new(&rv, 2);
        assert_eq!(sched.active_nodes(2), vec![TARGET_NODE]);
    }

    #[test]
    fn earlier_layers_update_supersets() {
        let rv = chain_relview();
        let sched = PruningSchedule::new(&rv, 3);
        let l1 = sched.active_nodes(1);
        let l2 = sched.active_nodes(2);
        let l3 = sched.active_nodes(3);
        assert!(l1.len() >= l2.len() && l2.len() >= l3.len());
        for n in &l3 {
            assert!(l2.contains(n));
        }
        for n in &l2 {
            assert!(l1.contains(n));
        }
    }

    #[test]
    fn pruned_cost_not_larger_than_full() {
        let rv = chain_relview();
        for k in 1..=4 {
            let sched = PruningSchedule::new(&rv, k);
            let (pruned, full) = sched.update_counts();
            assert!(pruned <= full, "k={k}: pruned {pruned} > full {full}");
        }
    }

    #[test]
    fn unreachable_nodes_never_active() {
        // two disjoint components: target in one, a stray pair in the other
        let g = KnowledgeGraph::from_triples(vec![
            Triple::new(0u32, 0u32, 1u32),
            Triple::new(5u32, 1u32, 6u32),
            Triple::new(6u32, 2u32, 5u32),
        ]);
        // disclosing-style graph where strays could appear:
        let sg = crate::extraction::disclosing_subgraph(&g, Triple::new(0u32, 9u32, 1u32), 2);
        let rv = RelViewGraph::from_subgraph(&sg);
        let sched = PruningSchedule::new(&rv, 2);
        for (i, &d) in sched.dist.iter().enumerate() {
            if d == usize::MAX {
                for l in 1..=2 {
                    assert!(!sched.active_nodes(l).contains(&i));
                }
                assert!(!sched.relevant_nodes().contains(&i));
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn layer_zero_is_invalid() {
        let rv = chain_relview();
        PruningSchedule::new(&rv, 2).active_nodes(0);
    }
}
