//! Enclosing and disclosing subgraph extraction (paper §III-B, §III-F).
//!
//! The public entry points ([`enclosing_subgraph`], [`disclosing_subgraph`])
//! are generic over [`GraphAccess`], so they run identically over the
//! Vec-of-Vecs [`rmpi_kg::KnowledgeGraph`] and the CSR arenas of
//! [`rmpi_kg::CsrGraph`]. Internally they route through a per-thread
//! [`ExtractScratch`](crate::ExtractScratch) of dense epoch-stamped arrays;
//! the `*_into` variants expose the scratch and output buffers directly so a
//! caller owning both runs allocation-free in steady state. The original
//! HashMap/HashSet formulation survives in [`reference`] as the oracle for
//! the equivalence property test.

use crate::scratch::ExtractScratch;
use rmpi_kg::{EntityId, GraphAccess, Triple};
use std::cell::RefCell;

/// A subgraph extracted around a target triple.
///
/// The hop distances (in the *full* graph, capped at K+1) of every retained
/// entity from the target head/tail are available through
/// [`Subgraph::dist_u`] / [`Subgraph::dist_v`]; the target endpoints
/// themselves are always retained, even when the subgraph has no edges (the
/// "empty subgraph" case §III-F addresses).
#[derive(Clone, Debug)]
pub struct Subgraph {
    /// Edges retained in the subgraph (never includes the target triple).
    pub triples: Vec<Triple>,
    /// Entities retained (always contains the target head and tail).
    pub entities: Vec<EntityId>,
    /// `(entity, dist from head, dist from tail)` rows, ascending by entity.
    /// Kept separate from `entities` (which callers may prune in place) so
    /// distance lookups stay valid for every originally retained entity.
    dists: Vec<(EntityId, u32, u32)>,
    /// The target triple this subgraph was extracted for.
    pub target: Triple,
}

impl Subgraph {
    /// An empty subgraph buffer for `target`, ready for a `*_into` call.
    pub fn empty(target: Triple) -> Self {
        Subgraph { triples: Vec::new(), entities: Vec::new(), dists: Vec::new(), target }
    }

    /// `true` when the subgraph contains no edges.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.triples.len()
    }

    /// Number of retained entities.
    pub fn num_entities(&self) -> usize {
        self.entities.len()
    }

    /// Hop distance of `e` from the target head (capped at K+1 when
    /// unreachable within K), or `None` if `e` was not retained.
    pub fn dist_u(&self, e: EntityId) -> Option<usize> {
        self.dists
            .binary_search_by_key(&e, |&(ent, _, _)| ent)
            .ok()
            .map(|i| self.dists[i].1 as usize)
    }

    /// Hop distance of `e` from the target tail (capped at K+1 when
    /// unreachable within K), or `None` if `e` was not retained.
    pub fn dist_v(&self, e: EntityId) -> Option<usize> {
        self.dists
            .binary_search_by_key(&e, |&(ent, _, _)| ent)
            .ok()
            .map(|i| self.dists[i].2 as usize)
    }

    /// All `(entity, dist_u, dist_v)` rows, ascending by entity id.
    pub fn distance_rows(&self) -> &[(EntityId, u32, u32)] {
        &self.dists
    }
}

thread_local! {
    static SCRATCH: RefCell<ExtractScratch> = RefCell::new(ExtractScratch::new());
}

/// Run `f` with this thread's reusable extraction scratch.
pub fn with_thread_scratch<R>(f: impl FnOnce(&mut ExtractScratch) -> R) -> R {
    SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

/// Extract the K-hop **enclosing** subgraph of `target` from `g`:
/// the entities in `N_K(u) ∩ N_K(v)`, pruned of nodes left isolated, plus
/// every edge of `g` between retained entities. The target edge itself (and
/// its duplicates) is excluded — it is what the model must predict.
pub fn enclosing_subgraph<G: GraphAccess + ?Sized>(g: &G, target: Triple, k: usize) -> Subgraph {
    let mut out = Subgraph::empty(target);
    with_thread_scratch(|scratch| enclosing_subgraph_into(g, target, k, scratch, &mut out));
    out
}

/// Extract the K-hop **disclosing** subgraph of `target` from `g`:
/// the entities in `N_K(u) ∪ N_K(v)` plus every edge between them, again
/// excluding the target edge.
pub fn disclosing_subgraph<G: GraphAccess + ?Sized>(g: &G, target: Triple, k: usize) -> Subgraph {
    let mut out = Subgraph::empty(target);
    with_thread_scratch(|scratch| disclosing_subgraph_into(g, target, k, scratch, &mut out));
    out
}

/// [`enclosing_subgraph`] with caller-owned scratch and output buffers.
/// With both warmed to the graph's size, performs zero heap allocations.
pub fn enclosing_subgraph_into<G: GraphAccess + ?Sized>(
    g: &G,
    target: Triple,
    k: usize,
    scratch: &mut ExtractScratch,
    out: &mut Subgraph,
) {
    let (u, v) = (target.head, target.tail);
    scratch.begin(g, u, v);
    scratch.bfs_u(g, u, k);
    scratch.bfs_v(g, v, k);
    // keep = (visited-by-u ∩ visited-by-v) ∪ {u, v}
    scratch.kept.clear();
    let mut i = 0;
    while i < scratch.queue_u.len() {
        let e = scratch.queue_u[i];
        i += 1;
        if scratch.in_v(e) {
            scratch.mark_kept(e);
        }
    }
    scratch.mark_kept(u.0);
    scratch.mark_kept(v.0);
    collect_edges(g, target, scratch, &mut out.triples);
    // prune entities left isolated (no incident retained edge), keeping u, v
    for t in &out.triples {
        scratch.mark_incident(t.head.0);
        scratch.mark_incident(t.tail.0);
    }
    out.entities.clear();
    for i in 0..scratch.kept.len() {
        let e = scratch.kept[i];
        if scratch.is_incident(e) || e == u.0 || e == v.0 {
            out.entities.push(EntityId(e));
        }
    }
    out.entities.sort_unstable();
    fill_distances(scratch, k, out);
    out.target = target;
}

/// [`disclosing_subgraph`] with caller-owned scratch and output buffers.
/// With both warmed to the graph's size, performs zero heap allocations.
pub fn disclosing_subgraph_into<G: GraphAccess + ?Sized>(
    g: &G,
    target: Triple,
    k: usize,
    scratch: &mut ExtractScratch,
    out: &mut Subgraph,
) {
    let (u, v) = (target.head, target.tail);
    scratch.begin(g, u, v);
    scratch.bfs_u(g, u, k);
    scratch.bfs_v(g, v, k);
    // keep = visited-by-u ∪ visited-by-v ∪ {u, v}
    scratch.kept.clear();
    let mut i = 0;
    while i < scratch.queue_u.len() {
        let e = scratch.queue_u[i];
        i += 1;
        scratch.mark_kept(e);
    }
    let mut i = 0;
    while i < scratch.queue_v.len() {
        let e = scratch.queue_v[i];
        i += 1;
        scratch.mark_kept(e);
    }
    scratch.mark_kept(u.0);
    scratch.mark_kept(v.0);
    collect_edges(g, target, scratch, &mut out.triples);
    out.entities.clear();
    for i in 0..scratch.kept.len() {
        out.entities.push(EntityId(scratch.kept[i]));
    }
    out.entities.sort_unstable();
    fill_distances(scratch, k, out);
    out.target = target;
}

/// Every edge of `g` whose endpoints are both kept, except edges equal to
/// `target`, sorted. Scanning out-edges of distinct entities visits each
/// triple index at most once (a triple's head is unique), so no dedup set
/// is needed.
fn collect_edges<G: GraphAccess + ?Sized>(
    g: &G,
    target: Triple,
    scratch: &ExtractScratch,
    out: &mut Vec<Triple>,
) {
    out.clear();
    for &e in &scratch.kept {
        for edge in g.out_edges(EntityId(e)) {
            if !scratch.is_kept(edge.neighbor.0) {
                continue;
            }
            let t = g.triple(edge.triple_idx);
            if t == target {
                continue;
            }
            out.push(t);
        }
    }
    out.sort_unstable();
}

/// Fill `out.dists` with BFS distances (capped at k+1) for `out.entities`.
fn fill_distances(scratch: &ExtractScratch, k: usize, out: &mut Subgraph) {
    let cap = (k + 1) as u32;
    out.dists.clear();
    for &e in &out.entities {
        let du = scratch.du(e.0).unwrap_or(cap);
        let dv = scratch.dv(e.0).unwrap_or(cap);
        out.dists.push((e, du, dv));
    }
}

/// The original HashMap/HashSet extraction, kept as the oracle for the
/// equivalence property test in `tests/proptests.rs`. Not for production
/// use: allocates heavily per call.
#[doc(hidden)]
pub mod reference {
    use super::Subgraph;
    use rmpi_kg::{khop_distances, EntityId, KnowledgeGraph, Triple};
    use std::collections::{HashMap, HashSet};

    /// Legacy enclosing-subgraph extraction over HashMap/HashSet state.
    pub fn enclosing_subgraph(g: &KnowledgeGraph, target: Triple, k: usize) -> Subgraph {
        let (u, v) = (target.head, target.tail);
        let du = khop_distances(g, u, k, None);
        let dv = khop_distances(g, v, k, None);
        let mut keep: HashSet<EntityId> =
            du.keys().filter(|e| dv.contains_key(e)).copied().collect();
        keep.insert(u);
        keep.insert(v);
        let triples = collect_edges(g, &keep, target);
        // prune isolated entities (no incident retained edge), keeping u and v
        let mut incident: HashSet<EntityId> = HashSet::new();
        for t in &triples {
            incident.insert(t.head);
            incident.insert(t.tail);
        }
        incident.insert(u);
        incident.insert(v);
        let entities: Vec<EntityId> = {
            let mut es: Vec<EntityId> = keep.intersection(&incident).copied().collect();
            es.sort_unstable();
            es
        };
        build(triples, entities, &du, &dv, k, target)
    }

    /// Legacy disclosing-subgraph extraction over HashMap/HashSet state.
    pub fn disclosing_subgraph(g: &KnowledgeGraph, target: Triple, k: usize) -> Subgraph {
        let (u, v) = (target.head, target.tail);
        let du = khop_distances(g, u, k, None);
        let dv = khop_distances(g, v, k, None);
        let mut keep: HashSet<EntityId> = du.keys().copied().collect();
        keep.extend(dv.keys().copied());
        keep.insert(u);
        keep.insert(v);
        let triples = collect_edges(g, &keep, target);
        let mut entities: Vec<EntityId> = keep.into_iter().collect();
        entities.sort_unstable();
        build(triples, entities, &du, &dv, k, target)
    }

    fn collect_edges(g: &KnowledgeGraph, keep: &HashSet<EntityId>, target: Triple) -> Vec<Triple> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for &e in keep {
            for edge in g.out_edges(e) {
                if !keep.contains(&edge.neighbor) {
                    continue;
                }
                let t = g.triple(edge.triple_idx);
                if t == target {
                    continue;
                }
                if seen.insert(edge.triple_idx) {
                    out.push(t);
                }
            }
        }
        out.sort_unstable();
        out
    }

    fn build(
        triples: Vec<Triple>,
        entities: Vec<EntityId>,
        du: &HashMap<EntityId, usize>,
        dv: &HashMap<EntityId, usize>,
        k: usize,
        target: Triple,
    ) -> Subgraph {
        let dist = |m: &HashMap<EntityId, usize>, e: EntityId| m.get(&e).copied().unwrap_or(k + 1);
        let dists = entities.iter().map(|&e| (e, dist(du, e) as u32, dist(dv, e) as u32)).collect();
        Subgraph { triples, entities, dists, target }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmpi_kg::KnowledgeGraph;
    use std::collections::HashSet;

    /// Diamond: u=0, v=3; paths 0->1->3 and 0->2->3, plus a pendant 3->4 and
    /// a far chain 4->5.
    fn diamond() -> (KnowledgeGraph, Triple) {
        let g = KnowledgeGraph::from_triples(vec![
            Triple::new(0u32, 0u32, 1u32),
            Triple::new(1u32, 1u32, 3u32),
            Triple::new(0u32, 2u32, 2u32),
            Triple::new(2u32, 3u32, 3u32),
            Triple::new(3u32, 4u32, 4u32),
            Triple::new(4u32, 4u32, 5u32),
        ]);
        (g, Triple::new(0u32, 9u32, 3u32))
    }

    #[test]
    fn enclosing_keeps_paths_between_endpoints() {
        let (g, target) = diamond();
        let sg = enclosing_subgraph(&g, target, 2);
        // entities on u-v paths: 0,1,2,3 (4 is within 2 hops of v but 3 hops of u via... 4: du=3? 0->1->3->4 = 3 hops -> excluded)
        assert_eq!(sg.entities, vec![EntityId(0), EntityId(1), EntityId(2), EntityId(3)]);
        assert_eq!(sg.num_edges(), 4);
        assert_eq!(sg.dist_u(EntityId(1)), Some(1));
        assert_eq!(sg.dist_v(EntityId(1)), Some(1));
        assert_eq!(sg.dist_u(EntityId(3)), Some(2));
        assert_eq!(sg.dist_v(EntityId(0)), Some(2));
        assert_eq!(sg.dist_u(EntityId(77)), None, "unretained entity has no distance");
    }

    #[test]
    fn target_edge_is_excluded() {
        let (mut triples, target) = {
            let (g, t) = diamond();
            (g.triples().to_vec(), t)
        };
        triples.push(target);
        let g = KnowledgeGraph::from_triples(triples);
        let sg = enclosing_subgraph(&g, target, 2);
        assert!(!sg.triples.contains(&target));
    }

    #[test]
    fn disclosing_is_superset_of_enclosing() {
        let (g, target) = diamond();
        let en = enclosing_subgraph(&g, target, 2);
        let di = disclosing_subgraph(&g, target, 2);
        let en_set: HashSet<Triple> = en.triples.iter().copied().collect();
        let di_set: HashSet<Triple> = di.triples.iter().copied().collect();
        assert!(en_set.is_subset(&di_set));
        // disclosing picks up the pendant edges around v
        assert!(di_set.contains(&Triple::new(3u32, 4u32, 4u32)));
        assert!(di.num_entities() > en.num_entities());
    }

    #[test]
    fn empty_enclosing_retains_endpoints() {
        // u and v in disconnected components
        let g = KnowledgeGraph::from_triples(vec![
            Triple::new(0u32, 0u32, 1u32),
            Triple::new(2u32, 0u32, 3u32),
        ]);
        let target = Triple::new(0u32, 1u32, 2u32);
        let sg = enclosing_subgraph(&g, target, 2);
        assert!(sg.is_empty());
        assert!(sg.entities.contains(&EntityId(0)));
        assert!(sg.entities.contains(&EntityId(2)));
        // unreachable distances are capped at k+1
        assert_eq!(sg.dist_v(EntityId(0)), Some(3));
    }

    #[test]
    fn hop_limit_shrinks_subgraph() {
        let (g, target) = diamond();
        let sg1 = enclosing_subgraph(&g, target, 1);
        // at K=1 the intersection of 1-hop neighbourhoods is {1, 2} plus endpoints
        assert!(sg1.num_entities() <= 4);
        let sg2 = enclosing_subgraph(&g, target, 2);
        assert!(sg1.num_edges() <= sg2.num_edges());
    }

    #[test]
    fn disclosing_far_chain_within_k_of_either_endpoint() {
        let (g, target) = diamond();
        let di = disclosing_subgraph(&g, target, 2);
        // 5 is 2 hops from v (3->4->5): included in the union
        assert!(di.entities.contains(&EntityId(5)));
        assert_eq!(di.dist_v(EntityId(5)), Some(2));
        assert_eq!(di.dist_u(EntityId(5)), Some(3)); // capped unreachable-at-k marker
    }

    #[test]
    fn self_loop_target_works() {
        let g = KnowledgeGraph::from_triples(vec![
            Triple::new(0u32, 0u32, 1u32),
            Triple::new(1u32, 0u32, 0u32),
        ]);
        let target = Triple::new(0u32, 1u32, 0u32);
        let sg = enclosing_subgraph(&g, target, 2);
        assert_eq!(sg.num_edges(), 2);
        assert_eq!(sg.dist_u(EntityId(0)), Some(0));
        assert_eq!(sg.dist_v(EntityId(0)), Some(0));
    }

    #[test]
    fn csr_backend_matches_vec_backend() {
        let (g, target) = diamond();
        let csr = rmpi_kg::CsrGraph::from_graph(&g);
        for k in 0..=3 {
            let a = enclosing_subgraph(&g, target, k);
            let b = enclosing_subgraph(&csr, target, k);
            assert_eq!(a.triples, b.triples);
            assert_eq!(a.entities, b.entities);
            assert_eq!(a.distance_rows(), b.distance_rows());
            let a = disclosing_subgraph(&g, target, k);
            let b = disclosing_subgraph(&csr, target, k);
            assert_eq!(a.triples, b.triples);
            assert_eq!(a.entities, b.entities);
            assert_eq!(a.distance_rows(), b.distance_rows());
        }
    }

    #[test]
    fn matches_reference_on_diamond() {
        let (g, target) = diamond();
        for k in 0..=3 {
            let new = enclosing_subgraph(&g, target, k);
            let old = reference::enclosing_subgraph(&g, target, k);
            assert_eq!(new.triples, old.triples, "k={k}");
            assert_eq!(new.entities, old.entities, "k={k}");
            assert_eq!(new.distance_rows(), old.distance_rows(), "k={k}");
        }
    }

    #[test]
    fn into_buffers_are_reusable_across_targets() {
        let (g, target) = diamond();
        let mut scratch = ExtractScratch::new();
        let mut sg = Subgraph::empty(target);
        enclosing_subgraph_into(&g, target, 2, &mut scratch, &mut sg);
        let first = sg.clone();
        // a different target in between must not leak state into the next call
        disclosing_subgraph_into(&g, Triple::new(4u32, 9u32, 5u32), 1, &mut scratch, &mut sg);
        enclosing_subgraph_into(&g, target, 2, &mut scratch, &mut sg);
        assert_eq!(sg.triples, first.triples);
        assert_eq!(sg.entities, first.entities);
        assert_eq!(sg.distance_rows(), first.distance_rows());
        assert_eq!(sg.target, first.target);
    }
}
