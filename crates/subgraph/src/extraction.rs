//! Enclosing and disclosing subgraph extraction (paper §III-B, §III-F).

use rmpi_kg::{khop_distances, EntityId, KnowledgeGraph, Triple};
use std::collections::{HashMap, HashSet};

/// A subgraph extracted around a target triple.
///
/// `dist_u` / `dist_v` hold the hop distances (in the *full* graph, capped at
/// K) of every retained entity from the target head/tail; the target
/// endpoints themselves are always retained, even when the subgraph has no
/// edges (the "empty subgraph" case §III-F addresses).
#[derive(Clone, Debug)]
pub struct Subgraph {
    /// Edges retained in the subgraph (never includes the target triple).
    pub triples: Vec<Triple>,
    /// Entities retained (always contains the target head and tail).
    pub entities: Vec<EntityId>,
    /// Hop distance of each retained entity from the target head.
    pub dist_u: HashMap<EntityId, usize>,
    /// Hop distance of each retained entity from the target tail.
    pub dist_v: HashMap<EntityId, usize>,
    /// The target triple this subgraph was extracted for.
    pub target: Triple,
}

impl Subgraph {
    /// `true` when the subgraph contains no edges.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.triples.len()
    }

    /// Number of retained entities.
    pub fn num_entities(&self) -> usize {
        self.entities.len()
    }
}

/// Extract the K-hop **enclosing** subgraph of `target` from `g`:
/// the entities in `N_K(u) ∩ N_K(v)`, pruned of nodes left isolated, plus
/// every edge of `g` between retained entities. The target edge itself (and
/// its duplicates) is excluded — it is what the model must predict.
pub fn enclosing_subgraph(g: &KnowledgeGraph, target: Triple, k: usize) -> Subgraph {
    let (u, v) = (target.head, target.tail);
    let du = khop_distances(g, u, k, None);
    let dv = khop_distances(g, v, k, None);
    let mut keep: HashSet<EntityId> = du.keys().filter(|e| dv.contains_key(e)).copied().collect();
    keep.insert(u);
    keep.insert(v);
    let triples = collect_edges(g, &keep, target);
    // prune isolated entities (no incident retained edge), keeping u and v
    let mut incident: HashSet<EntityId> = HashSet::new();
    for t in &triples {
        incident.insert(t.head);
        incident.insert(t.tail);
    }
    incident.insert(u);
    incident.insert(v);
    // re-collect edges over the pruned set (pruning cannot remove edges since
    // removed nodes were isolated, so `triples` is already correct)
    let entities: Vec<EntityId> = {
        let mut es: Vec<EntityId> = keep.intersection(&incident).copied().collect();
        es.sort_unstable();
        es
    };
    let dist = |m: &HashMap<EntityId, usize>, e: EntityId| m.get(&e).copied().unwrap_or(k + 1);
    let dist_u = entities.iter().map(|&e| (e, dist(&du, e))).collect();
    let dist_v = entities.iter().map(|&e| (e, dist(&dv, e))).collect();
    Subgraph { triples, entities, dist_u, dist_v, target }
}

/// Extract the K-hop **disclosing** subgraph of `target` from `g`:
/// the entities in `N_K(u) ∪ N_K(v)` plus every edge between them, again
/// excluding the target edge.
pub fn disclosing_subgraph(g: &KnowledgeGraph, target: Triple, k: usize) -> Subgraph {
    let (u, v) = (target.head, target.tail);
    let du = khop_distances(g, u, k, None);
    let dv = khop_distances(g, v, k, None);
    let mut keep: HashSet<EntityId> = du.keys().copied().collect();
    keep.extend(dv.keys().copied());
    keep.insert(u);
    keep.insert(v);
    let triples = collect_edges(g, &keep, target);
    let mut entities: Vec<EntityId> = keep.into_iter().collect();
    entities.sort_unstable();
    let dist = |m: &HashMap<EntityId, usize>, e: EntityId| m.get(&e).copied().unwrap_or(k + 1);
    let dist_u = entities.iter().map(|&e| (e, dist(&du, e))).collect();
    let dist_v = entities.iter().map(|&e| (e, dist(&dv, e))).collect();
    Subgraph { triples, entities, dist_u, dist_v, target }
}

/// Every edge of `g` whose endpoints are both in `keep`, except edges equal
/// to `target`.
fn collect_edges(g: &KnowledgeGraph, keep: &HashSet<EntityId>, target: Triple) -> Vec<Triple> {
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    for &e in keep {
        for edge in g.out_edges(e) {
            if !keep.contains(&edge.neighbor) {
                continue;
            }
            let t = g.triple(edge.triple_idx);
            if t == target {
                continue;
            }
            if seen.insert(edge.triple_idx) {
                out.push(t);
            }
        }
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Diamond: u=0, v=3; paths 0->1->3 and 0->2->3, plus a pendant 3->4 and
    /// a far chain 4->5.
    fn diamond() -> (KnowledgeGraph, Triple) {
        let g = KnowledgeGraph::from_triples(vec![
            Triple::new(0u32, 0u32, 1u32),
            Triple::new(1u32, 1u32, 3u32),
            Triple::new(0u32, 2u32, 2u32),
            Triple::new(2u32, 3u32, 3u32),
            Triple::new(3u32, 4u32, 4u32),
            Triple::new(4u32, 4u32, 5u32),
        ]);
        (g, Triple::new(0u32, 9u32, 3u32))
    }

    #[test]
    fn enclosing_keeps_paths_between_endpoints() {
        let (g, target) = diamond();
        let sg = enclosing_subgraph(&g, target, 2);
        // entities on u-v paths: 0,1,2,3 (4 is within 2 hops of v but 3 hops of u via... 4: du=3? 0->1->3->4 = 3 hops -> excluded)
        assert_eq!(sg.entities, vec![EntityId(0), EntityId(1), EntityId(2), EntityId(3)]);
        assert_eq!(sg.num_edges(), 4);
        assert_eq!(sg.dist_u[&EntityId(1)], 1);
        assert_eq!(sg.dist_v[&EntityId(1)], 1);
        assert_eq!(sg.dist_u[&EntityId(3)], 2);
        assert_eq!(sg.dist_v[&EntityId(0)], 2);
    }

    #[test]
    fn target_edge_is_excluded() {
        let (mut triples, target) = {
            let (g, t) = diamond();
            (g.triples().to_vec(), t)
        };
        triples.push(target);
        let g = KnowledgeGraph::from_triples(triples);
        let sg = enclosing_subgraph(&g, target, 2);
        assert!(!sg.triples.contains(&target));
    }

    #[test]
    fn disclosing_is_superset_of_enclosing() {
        let (g, target) = diamond();
        let en = enclosing_subgraph(&g, target, 2);
        let di = disclosing_subgraph(&g, target, 2);
        let en_set: HashSet<Triple> = en.triples.iter().copied().collect();
        let di_set: HashSet<Triple> = di.triples.iter().copied().collect();
        assert!(en_set.is_subset(&di_set));
        // disclosing picks up the pendant edges around v
        assert!(di_set.contains(&Triple::new(3u32, 4u32, 4u32)));
        assert!(di.num_entities() > en.num_entities());
    }

    #[test]
    fn empty_enclosing_retains_endpoints() {
        // u and v in disconnected components
        let g = KnowledgeGraph::from_triples(vec![
            Triple::new(0u32, 0u32, 1u32),
            Triple::new(2u32, 0u32, 3u32),
        ]);
        let target = Triple::new(0u32, 1u32, 2u32);
        let sg = enclosing_subgraph(&g, target, 2);
        assert!(sg.is_empty());
        assert!(sg.entities.contains(&EntityId(0)));
        assert!(sg.entities.contains(&EntityId(2)));
        // unreachable distances are capped at k+1
        assert_eq!(sg.dist_v[&EntityId(0)], 3);
    }

    #[test]
    fn hop_limit_shrinks_subgraph() {
        let (g, target) = diamond();
        let sg1 = enclosing_subgraph(&g, target, 1);
        // at K=1 the intersection of 1-hop neighbourhoods is {1, 2} plus endpoints
        assert!(sg1.num_entities() <= 4);
        let sg2 = enclosing_subgraph(&g, target, 2);
        assert!(sg1.num_edges() <= sg2.num_edges());
    }

    #[test]
    fn disclosing_far_chain_within_k_of_either_endpoint() {
        let (g, target) = diamond();
        let di = disclosing_subgraph(&g, target, 2);
        // 5 is 2 hops from v (3->4->5): included in the union
        assert!(di.entities.contains(&EntityId(5)));
        assert_eq!(di.dist_v[&EntityId(5)], 2);
        assert_eq!(di.dist_u[&EntityId(5)], 3); // capped unreachable-at-k marker
    }

    #[test]
    fn self_loop_target_works() {
        let g = KnowledgeGraph::from_triples(vec![
            Triple::new(0u32, 0u32, 1u32),
            Triple::new(1u32, 0u32, 0u32),
        ]);
        let target = Triple::new(0u32, 1u32, 0u32);
        let sg = enclosing_subgraph(&g, target, 2);
        assert_eq!(sg.num_edges(), 2);
        assert_eq!(sg.dist_u[&EntityId(0)], 0);
        assert_eq!(sg.dist_v[&EntityId(0)], 0);
    }
}
