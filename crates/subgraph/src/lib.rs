//! Subgraph machinery for subgraph-based inductive KG reasoning.
//!
//! Implements §III-B and §III-F of the RMPI paper plus the pieces the
//! baselines need:
//!
//! * [`enclosing_subgraph`] — the K-hop *enclosing* subgraph of a target
//!   triple: intersection of the endpoints' K-hop neighbourhoods, pruned of
//!   isolated / too-distant nodes;
//! * [`disclosing_subgraph`] — the K-hop *disclosing* subgraph: the union of
//!   the neighbourhoods (used to rescue empty enclosing subgraphs);
//! * [`labeling`] — GraIL's double-radius entity labelling;
//! * [`RelViewGraph`] — the relation-view (directed line-graph) transform
//!   with the six edge types of Fig. 3c;
//! * [`pruning`] — the target-relation-guided pruning of Algorithm 1;
//! * [`negative`] — head/tail-corruption negative sampling;
//! * [`cache`] — cache-keyable extraction: [`SubgraphKey`] and an LRU cache
//!   the serving layer uses to amortise per-triple extraction cost.

pub mod cache;
pub mod extraction;
pub mod labeling;
pub mod negative;
pub mod pruning;
pub mod relview;
pub mod scratch;
pub mod viz;

pub use cache::{LruCache, SubgraphKey};
pub use extraction::{
    disclosing_subgraph, disclosing_subgraph_into, enclosing_subgraph, enclosing_subgraph_into,
    with_thread_scratch, Subgraph,
};
pub use labeling::{double_radius_labels, NodeLabel};
pub use negative::NegativeSampler;
pub use pruning::PruningSchedule;
pub use relview::{RelEdgeType, RelNode, RelViewGraph};
pub use scratch::ExtractScratch;
pub use viz::{relview_to_dot, subgraph_to_dot};
