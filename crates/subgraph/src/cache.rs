//! Cache-keyable extraction: a compact key identifying one extraction
//! request, and an exact LRU cache keyed by it.
//!
//! Per-triple enclosing-subgraph extraction dominates RMPI inference cost
//! (paper §V) — and it is a pure function of `(context graph, target, hop,
//! extraction seed)`. A serving layer holding an *immutable* context graph
//! and a *fixed* extraction seed can therefore key extractions by the target
//! triple (plus hop) alone and replay them verbatim: [`SubgraphKey`] is that
//! key, [`LruCache`] the replacement policy. The cache is generic in its
//! value so `rmpi-serve` can store fully prepared forward-pass inputs, not
//! just raw subgraphs.

use rmpi_kg::Triple;
use std::collections::{BTreeMap, HashMap};

/// What identifies one extraction against an immutable context graph with a
/// fixed extraction seed: the target triple and the hop depth.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SubgraphKey {
    /// The target triple packed as `(head, relation, tail)` raw ids.
    pub head: u32,
    /// Relation id.
    pub relation: u32,
    /// Tail id.
    pub tail: u32,
    /// Extraction hop depth K.
    pub hop: u8,
}

impl SubgraphKey {
    /// Key for extracting the `hop`-hop subgraph of `target`.
    pub fn new(target: Triple, hop: usize) -> Self {
        SubgraphKey {
            head: target.head.0,
            relation: target.relation.0,
            tail: target.tail.0,
            hop: hop.min(u8::MAX as usize) as u8,
        }
    }
}

/// An exact least-recently-used cache over [`SubgraphKey`]s.
///
/// Recency is tracked with a monotone tick per access: a `HashMap` holds the
/// values, a `BTreeMap<tick, key>` orders keys by last use, so both lookup
/// and eviction are `O(log n)`. Hit/miss counters are built in — they feed
/// the serving layer's stats endpoint. Capacity 0 disables caching (every
/// lookup misses, nothing is stored).
#[derive(Debug)]
pub struct LruCache<V> {
    capacity: usize,
    tick: u64,
    entries: HashMap<SubgraphKey, (u64, V)>,
    recency: BTreeMap<u64, SubgraphKey>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl<V> LruCache<V> {
    /// A cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            tick: 0,
            entries: HashMap::with_capacity(capacity.min(1 << 20)),
            recency: BTreeMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Look up `key`, refreshing its recency. Counts a hit or a miss.
    pub fn get(&mut self, key: &SubgraphKey) -> Option<&V> {
        if let Some((tick, _)) = self.entries.get(key) {
            let old = *tick;
            self.recency.remove(&old);
            self.tick += 1;
            self.recency.insert(self.tick, *key);
            let entry = self.entries.get_mut(key).expect("entry just seen");
            entry.0 = self.tick;
            self.hits += 1;
            Some(&entry.1)
        } else {
            self.misses += 1;
            None
        }
    }

    /// Insert (or refresh) `key`, evicting the least recently used entry when
    /// full. No-op at capacity 0.
    pub fn insert(&mut self, key: SubgraphKey, value: V) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if let Some((old, _)) = self.entries.insert(key, (self.tick, value)) {
            self.recency.remove(&old);
        }
        self.recency.insert(self.tick, key);
        while self.entries.len() > self.capacity {
            let (&oldest, &victim) = self.recency.iter().next().expect("non-empty recency index");
            self.recency.remove(&oldest);
            self.entries.remove(&victim);
            self.evictions += 1;
        }
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Maximum entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries dropped to make room (capacity evictions, not `clear`).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Drop every entry (counters are kept).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.recency.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(h: u32, r: u32, t: u32) -> SubgraphKey {
        SubgraphKey::new(Triple::new(h, r, t), 2)
    }

    #[test]
    fn key_distinguishes_all_fields() {
        let base = key(1, 2, 3);
        assert_ne!(base, key(9, 2, 3));
        assert_ne!(base, key(1, 9, 3));
        assert_ne!(base, key(1, 2, 9));
        assert_ne!(base, SubgraphKey::new(Triple::new(1u32, 2u32, 3u32), 3));
        assert_eq!(base, key(1, 2, 3));
    }

    #[test]
    fn get_insert_and_counters() {
        let mut c: LruCache<i32> = LruCache::new(4);
        assert!(c.get(&key(1, 1, 1)).is_none());
        c.insert(key(1, 1, 1), 10);
        assert_eq!(c.get(&key(1, 1, 1)), Some(&10));
        assert_eq!((c.hits(), c.misses()), (1, 1));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c: LruCache<u32> = LruCache::new(2);
        c.insert(key(1, 0, 0), 1);
        c.insert(key(2, 0, 0), 2);
        // touch 1 so 2 becomes the LRU victim
        assert!(c.get(&key(1, 0, 0)).is_some());
        c.insert(key(3, 0, 0), 3);
        assert_eq!(c.len(), 2);
        assert!(c.get(&key(2, 0, 0)).is_none(), "LRU entry evicted");
        assert!(c.get(&key(1, 0, 0)).is_some());
        assert!(c.get(&key(3, 0, 0)).is_some());
    }

    #[test]
    fn reinsert_refreshes_value_and_recency() {
        let mut c: LruCache<u32> = LruCache::new(2);
        c.insert(key(1, 0, 0), 1);
        c.insert(key(2, 0, 0), 2);
        c.insert(key(1, 0, 0), 11); // refresh: 2 is now oldest
        c.insert(key(3, 0, 0), 3);
        assert_eq!(c.get(&key(1, 0, 0)), Some(&11));
        assert!(c.get(&key(2, 0, 0)).is_none());
    }

    #[test]
    fn capacity_zero_disables_storage() {
        let mut c: LruCache<u32> = LruCache::new(0);
        c.insert(key(1, 0, 0), 1);
        assert!(c.is_empty());
        assert!(c.get(&key(1, 0, 0)).is_none());
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn clear_keeps_counters() {
        let mut c: LruCache<u32> = LruCache::new(2);
        c.insert(key(1, 0, 0), 1);
        assert!(c.get(&key(1, 0, 0)).is_some());
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.hits(), 1);
        assert!(c.get(&key(1, 0, 0)).is_none());
    }

    #[test]
    fn eviction_counter_tracks_capacity_pressure() {
        let mut c: LruCache<u32> = LruCache::new(2);
        c.insert(key(1, 0, 0), 1);
        c.insert(key(2, 0, 0), 2);
        assert_eq!(c.evictions(), 0);
        c.insert(key(3, 0, 0), 3);
        c.insert(key(4, 0, 0), 4);
        assert_eq!(c.evictions(), 2);
        c.insert(key(4, 0, 0), 40); // refresh, not an eviction
        assert_eq!(c.evictions(), 2);
        c.clear(); // clear is not an eviction either
        assert_eq!(c.evictions(), 2);
    }

    #[test]
    fn heavy_churn_stays_within_capacity() {
        let mut c: LruCache<u32> = LruCache::new(8);
        for i in 0..1000u32 {
            c.insert(key(i, i % 7, i % 13), i);
            assert!(c.len() <= 8);
        }
        assert_eq!(c.evictions(), 1000 - 8);
        // the 8 most recent keys are present
        for i in 992..1000u32 {
            assert_eq!(c.get(&key(i, i % 7, i % 13)), Some(&i));
        }
    }
}
