//! GraIL's double-radius entity labelling (paper §II-B).
//!
//! Each entity `i` in an extracted subgraph is labelled with the tuple
//! `(d(i,u), d(i,v))`, where `d(i,u)` is the shortest distance from `i` to
//! the target head *within the subgraph, not counting paths through `v`*
//! (and symmetrically for `d(i,v)`). The initial GNN feature of an entity is
//! the concatenation of the one-hot encodings of the two components, each
//! capped at `max_dist`.

use crate::extraction::Subgraph;
use rmpi_kg::{khop_distances, EntityId, KnowledgeGraph};
use std::collections::HashMap;

/// The double-radius label of one entity.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct NodeLabel {
    /// Capped shortest distance to the target head.
    pub du: usize,
    /// Capped shortest distance to the target tail.
    pub dv: usize,
}

impl NodeLabel {
    /// One-hot encode as `[onehot(du) ++ onehot(dv)]` with `max_dist + 1`
    /// positions per component.
    pub fn one_hot(self, max_dist: usize) -> Vec<f32> {
        let w = max_dist + 1;
        let mut out = vec![0.0; 2 * w];
        out[self.du.min(max_dist)] = 1.0;
        out[w + self.dv.min(max_dist)] = 1.0;
        out
    }

    /// Length of the [`NodeLabel::one_hot`] encoding.
    pub fn one_hot_len(max_dist: usize) -> usize {
        2 * (max_dist + 1)
    }
}

/// Compute double-radius labels for every entity of `sg`, with distances
/// measured inside the subgraph and capped at `max_dist`.
pub fn double_radius_labels(sg: &Subgraph, max_dist: usize) -> HashMap<EntityId, NodeLabel> {
    let (u, v) = (sg.target.head, sg.target.tail);
    let inner = KnowledgeGraph::from_triples(sg.triples.clone());
    let du = khop_distances(&inner, u, max_dist, Some(v));
    let dv = khop_distances(&inner, v, max_dist, Some(u));
    sg.entities
        .iter()
        .map(|&e| {
            // GraIL's convention: the target endpoints are labelled (0,1) and
            // (1,0) — their distance to the *other* endpoint is not computable
            // under the exclusion rule (the other endpoint is excluded).
            if e == u {
                return (e, NodeLabel { du: 0, dv: 1 });
            }
            if e == v {
                return (e, NodeLabel { du: 1, dv: 0 });
            }
            let lu = du.get(&e).copied().unwrap_or(max_dist).min(max_dist);
            let lv = dv.get(&e).copied().unwrap_or(max_dist).min(max_dist);
            (e, NodeLabel { du: lu, dv: lv })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extraction::enclosing_subgraph;
    use rmpi_kg::Triple;

    fn diamond_sg() -> Subgraph {
        let g = KnowledgeGraph::from_triples(vec![
            Triple::new(0u32, 0u32, 1u32),
            Triple::new(1u32, 1u32, 3u32),
            Triple::new(0u32, 2u32, 2u32),
            Triple::new(2u32, 3u32, 3u32),
        ]);
        enclosing_subgraph(&g, Triple::new(0u32, 9u32, 3u32), 2)
    }

    #[test]
    fn endpoint_labels_follow_grail_convention() {
        let labels = double_radius_labels(&diamond_sg(), 3);
        assert_eq!(labels[&EntityId(0)], NodeLabel { du: 0, dv: 1 });
        assert_eq!(labels[&EntityId(3)], NodeLabel { du: 1, dv: 0 });
    }

    #[test]
    fn midpoint_labels() {
        let labels = double_radius_labels(&diamond_sg(), 3);
        assert_eq!(labels[&EntityId(1)], NodeLabel { du: 1, dv: 1 });
        assert_eq!(labels[&EntityId(2)], NodeLabel { du: 1, dv: 1 });
    }

    #[test]
    fn one_hot_encoding() {
        let l = NodeLabel { du: 1, dv: 0 };
        let v = l.one_hot(2);
        assert_eq!(v.len(), NodeLabel::one_hot_len(2));
        assert_eq!(v, vec![0.0, 1.0, 0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn one_hot_caps_at_max_dist() {
        let l = NodeLabel { du: 9, dv: 9 };
        let v = l.one_hot(2);
        assert_eq!(v[2], 1.0);
        assert_eq!(v[5], 1.0);
        assert_eq!(v.iter().sum::<f32>(), 2.0);
    }

    #[test]
    fn exclusion_rule_applies() {
        // path u(0) -> v(1) -> 2: entity 2 only reachable from u through v,
        // so d(2,u) must be capped (unreachable without v).
        let g = KnowledgeGraph::from_triples(vec![
            Triple::new(0u32, 0u32, 1u32),
            Triple::new(1u32, 0u32, 2u32),
            Triple::new(2u32, 0u32, 0u32), // close the cycle so 2 is in the enclosing sg
        ]);
        let sg = enclosing_subgraph(&g, Triple::new(0u32, 5u32, 1u32), 2);
        assert!(sg.entities.contains(&EntityId(2)));
        let labels = double_radius_labels(&sg, 3);
        // without going through v=1, u(0) reaches 2 via the reverse edge 2->0: distance 1
        assert_eq!(labels[&EntityId(2)].du, 1);
        assert_eq!(labels[&EntityId(2)].dv, 1);
    }
}
