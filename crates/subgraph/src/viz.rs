//! Graphviz (DOT) export of entity-view subgraphs and relation views —
//! the tooling behind Fig. 4-style case-study pictures.

use crate::extraction::Subgraph;
use crate::relview::{RelViewGraph, TARGET_NODE};
use std::fmt::Write as _;

/// Render the entity-view subgraph as a directed DOT graph. The target
/// endpoints are highlighted; edges are labelled with their relation ids.
pub fn subgraph_to_dot(sg: &Subgraph) -> String {
    let mut out = String::from("digraph subgraph {\n  rankdir=LR;\n  node [shape=circle];\n");
    for &e in &sg.entities {
        let style = if e == sg.target.head || e == sg.target.tail {
            " style=filled fillcolor=gold"
        } else {
            ""
        };
        let _ = writeln!(out, "  \"{e}\" [label=\"{e}\"{style}];");
    }
    for t in &sg.triples {
        let _ = writeln!(out, "  \"{}\" -> \"{}\" [label=\"{}\"];", t.head, t.tail, t.relation);
    }
    // the target link, dashed
    let _ = writeln!(
        out,
        "  \"{}\" -> \"{}\" [label=\"{}?\" style=dashed color=red];",
        sg.target.head, sg.target.tail, sg.target.relation
    );
    out.push_str("}\n");
    out
}

/// Render the relation view as a DOT graph: one node per entity-view edge
/// (labelled by relation), typed edges, target node highlighted.
pub fn relview_to_dot(rv: &RelViewGraph) -> String {
    let mut out = String::from("digraph relview {\n  node [shape=box];\n");
    for (i, n) in rv.nodes.iter().enumerate() {
        let style = if i == TARGET_NODE { " style=filled fillcolor=tomato" } else { "" };
        let _ = writeln!(out, "  n{i} [label=\"{} {}\"{style}];", n.relation, n.triple);
    }
    for (dst, e) in rv.iter_edges() {
        let _ = writeln!(out, "  n{} -> n{dst} [label=\"{:?}\"];", e.src, e.etype);
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extraction::enclosing_subgraph;
    use rmpi_kg::{KnowledgeGraph, Triple};

    fn sample() -> Subgraph {
        let g = KnowledgeGraph::from_triples(vec![
            Triple::new(0u32, 0u32, 1u32),
            Triple::new(1u32, 1u32, 3u32),
        ]);
        enclosing_subgraph(&g, Triple::new(0u32, 9u32, 3u32), 2)
    }

    #[test]
    fn subgraph_dot_is_well_formed() {
        let dot = subgraph_to_dot(&sample());
        assert!(dot.starts_with("digraph subgraph {"));
        assert!(dot.trim_end().ends_with('}'));
        assert!(dot.contains("\"e0\" -> \"e1\" [label=\"r0\"]"));
        assert!(dot.contains("style=dashed color=red"), "target edge must be marked");
        assert!(dot.contains("fillcolor=gold"), "endpoints highlighted");
    }

    #[test]
    fn relview_dot_marks_target() {
        let rv = RelViewGraph::from_subgraph(&sample());
        let dot = relview_to_dot(&rv);
        assert!(dot.contains("fillcolor=tomato"));
        assert!(dot.contains("digraph relview"));
        // both entity-view edges appear as nodes
        assert!(dot.contains("r0"));
        assert!(dot.contains("r1"));
    }

    #[test]
    fn edge_counts_match() {
        let rv = RelViewGraph::from_subgraph(&sample());
        let dot = relview_to_dot(&rv);
        let arrow_count = dot.matches(" -> ").count();
        assert_eq!(arrow_count, rv.num_edges());
    }
}
