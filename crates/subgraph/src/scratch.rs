//! Reusable, allocation-free working state for subgraph extraction.
//!
//! The extraction hot path runs two bounded BFS traversals, an
//! intersection/union over the visited sets, an edge sweep, and an isolated-
//! node prune — per sample, thousands of times per epoch. Doing that with
//! `HashMap`/`HashSet` state means rehashing every entity id and reallocating
//! every call. [`ExtractScratch`] replaces all of it with dense arrays
//! indexed by entity id, invalidated wholesale by bumping a single epoch
//! counter: an entry is live only when its stamp equals the current epoch,
//! so "clearing" the scratch between samples is one integer increment.
//!
//! In steady state (scratch and output buffers warmed to the graph's size)
//! an extraction performs **zero heap allocations** — pinned by the
//! counting-allocator test in `tests/zero_alloc.rs`.

use rmpi_kg::{EntityId, GraphAccess};

/// Dense epoch-stamped BFS + set state, reusable across extractions.
///
/// All arrays are sized to the graph's entity id-space on first use and grow
/// monotonically; they are never cleared, only re-stamped.
#[derive(Clone, Debug, Default)]
pub struct ExtractScratch {
    /// Current epoch; a stamp array entry is valid iff it equals this.
    epoch: u32,
    /// Visited stamp / hop distance for the BFS from the target head.
    stamp_u: Vec<u32>,
    dist_u: Vec<u32>,
    /// Visited stamp / hop distance for the BFS from the target tail.
    stamp_v: Vec<u32>,
    dist_v: Vec<u32>,
    /// Membership stamp for the retained ("keep") entity set.
    keep: Vec<u32>,
    /// Membership stamp for entities incident to a retained edge.
    incident: Vec<u32>,
    /// Visit-order list of the head BFS (doubles as its queue).
    pub(crate) queue_u: Vec<u32>,
    /// Visit-order list of the tail BFS (doubles as its queue).
    pub(crate) queue_v: Vec<u32>,
    /// The retained entity set, in insertion order.
    pub(crate) kept: Vec<u32>,
}

impl ExtractScratch {
    /// A fresh scratch; arrays are sized lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grow the dense arrays to cover `g`'s id space plus the (possibly
    /// graph-external) target endpoints, then start a new epoch.
    pub(crate) fn begin<G: GraphAccess + ?Sized>(
        &mut self,
        g: &G,
        u: EntityId,
        v: EntityId,
    ) -> u32 {
        let n = g.num_entities().max(u.index() + 1).max(v.index() + 1);
        if self.stamp_u.len() < n {
            self.stamp_u.resize(n, 0);
            self.dist_u.resize(n, 0);
            self.stamp_v.resize(n, 0);
            self.dist_v.resize(n, 0);
            self.keep.resize(n, 0);
            self.incident.resize(n, 0);
        }
        self.epoch = match self.epoch.checked_add(1) {
            Some(e) => e,
            None => {
                // one global re-zero every 2^32 extractions keeps stamps sound
                self.stamp_u.fill(0);
                self.stamp_v.fill(0);
                self.keep.fill(0);
                self.incident.fill(0);
                1
            }
        };
        self.epoch
    }

    /// BFS from the head endpoint, filling `stamp_u`/`dist_u`/`queue_u`.
    pub(crate) fn bfs_u<G: GraphAccess + ?Sized>(&mut self, g: &G, start: EntityId, k: usize) {
        let ep = self.epoch;
        bfs(g, start, k as u32, ep, &mut self.stamp_u, &mut self.dist_u, &mut self.queue_u);
    }

    /// BFS from the tail endpoint, filling `stamp_v`/`dist_v`/`queue_v`.
    pub(crate) fn bfs_v<G: GraphAccess + ?Sized>(&mut self, g: &G, start: EntityId, k: usize) {
        let ep = self.epoch;
        bfs(g, start, k as u32, ep, &mut self.stamp_v, &mut self.dist_v, &mut self.queue_v);
    }

    /// Hop distance from the head BFS, or `None` if unreached this epoch.
    pub(crate) fn du(&self, e: u32) -> Option<u32> {
        (self.stamp_u[e as usize] == self.epoch).then(|| self.dist_u[e as usize])
    }

    /// Hop distance from the tail BFS, or `None` if unreached this epoch.
    pub(crate) fn dv(&self, e: u32) -> Option<u32> {
        (self.stamp_v[e as usize] == self.epoch).then(|| self.dist_v[e as usize])
    }

    /// Was `e` reached by the tail BFS this epoch?
    pub(crate) fn in_v(&self, e: u32) -> bool {
        self.stamp_v[e as usize] == self.epoch
    }

    /// Add `e` to the keep set if absent (recorded in `kept`).
    pub(crate) fn mark_kept(&mut self, e: u32) {
        if self.keep[e as usize] != self.epoch {
            self.keep[e as usize] = self.epoch;
            self.kept.push(e);
        }
    }

    /// Is `e` in the keep set this epoch?
    pub(crate) fn is_kept(&self, e: u32) -> bool {
        self.keep[e as usize] == self.epoch
    }

    /// Mark `e` incident to a retained edge.
    pub(crate) fn mark_incident(&mut self, e: u32) {
        self.incident[e as usize] = self.epoch;
    }

    /// Is `e` incident to a retained edge this epoch?
    pub(crate) fn is_incident(&self, e: u32) -> bool {
        self.incident[e as usize] == self.epoch
    }
}

/// Bounded bidirectional BFS over dense stamp/dist arrays. `queue` doubles
/// as the visit-order record: entries are never popped, a cursor walks it.
fn bfs<G: GraphAccess + ?Sized>(
    g: &G,
    start: EntityId,
    k: u32,
    ep: u32,
    stamp: &mut [u32],
    dist: &mut [u32],
    queue: &mut Vec<u32>,
) {
    queue.clear();
    let s = start.0;
    stamp[s as usize] = ep;
    dist[s as usize] = 0;
    queue.push(s);
    let mut head = 0usize;
    while head < queue.len() {
        let cur = queue[head];
        head += 1;
        let d = dist[cur as usize];
        if d == k {
            continue;
        }
        let cur = EntityId(cur);
        for edge in g.out_edges(cur).iter().chain(g.in_edges(cur)) {
            let nb = edge.neighbor.0;
            if stamp[nb as usize] != ep {
                stamp[nb as usize] = ep;
                dist[nb as usize] = d + 1;
                queue.push(nb);
            }
        }
    }
}
