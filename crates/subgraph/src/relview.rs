//! Relation-view (directed line-graph) transform (paper §III-B, Fig. 3).
//!
//! Every edge of the entity-view subgraph becomes a node of [`RelViewGraph`];
//! two nodes are connected iff their edges share an entity, and each directed
//! connection is typed with one of the six patterns of Fig. 3c:
//!
//! | type | condition (for edge `a → b`)      |
//! |------|-----------------------------------|
//! | H-H  | head(a) = head(b)                 |
//! | H-T  | head(a) = tail(b)                 |
//! | T-H  | tail(a) = head(b)                 |
//! | T-T  | tail(a) = tail(b)                 |
//! | PARA | head & tail both equal            |
//! | LOOP | head(a) = tail(b) and tail(a) = head(b) |
//!
//! PARA subsumes {H-H, T-T} and LOOP subsumes {H-T, T-H} when they apply, so
//! a pair of relation nodes contributes exactly the most specific edge types.
//!
//! The *target* triple is always node 0 of the transform, even though it is
//! excluded from the subgraph's edge set — it is the node whose representation
//! the model reads out.

use crate::extraction::Subgraph;
use rmpi_kg::{RelationId, Triple};
use std::collections::BTreeMap;

/// Number of distinct relation-view edge types.
pub const NUM_EDGE_TYPES: usize = 6;

/// The six connection patterns between relation nodes (Fig. 3c).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RelEdgeType {
    /// Heads coincide.
    HH,
    /// Head of source = tail of destination.
    HT,
    /// Tail of source = head of destination.
    TH,
    /// Tails coincide.
    TT,
    /// Both endpoints coincide (parallel edges).
    Para,
    /// Endpoints crossed (anti-parallel edges).
    Loop,
}

impl RelEdgeType {
    /// Dense index in `0..NUM_EDGE_TYPES`.
    pub fn index(self) -> usize {
        match self {
            RelEdgeType::HH => 0,
            RelEdgeType::HT => 1,
            RelEdgeType::TH => 2,
            RelEdgeType::TT => 3,
            RelEdgeType::Para => 4,
            RelEdgeType::Loop => 5,
        }
    }

    /// All six types, index order.
    pub fn all() -> [RelEdgeType; NUM_EDGE_TYPES] {
        [RelEdgeType::HH, RelEdgeType::HT, RelEdgeType::TH, RelEdgeType::TT, RelEdgeType::Para, RelEdgeType::Loop]
    }

    /// Classify the directed connection `a → b`, or `None` when the edges
    /// share no entity.
    pub fn classify(a: Triple, b: Triple) -> Vec<RelEdgeType> {
        let hh = a.head == b.head;
        let ht = a.head == b.tail;
        let th = a.tail == b.head;
        let tt = a.tail == b.tail;
        let mut out = Vec::new();
        if hh && tt {
            out.push(RelEdgeType::Para);
        } else if ht && th {
            out.push(RelEdgeType::Loop);
        } else {
            if hh {
                out.push(RelEdgeType::HH);
            }
            if ht {
                out.push(RelEdgeType::HT);
            }
            if th {
                out.push(RelEdgeType::TH);
            }
            if tt {
                out.push(RelEdgeType::TT);
            }
        }
        out
    }
}

/// One node of the relation view: an edge instance of the entity view.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RelNode {
    /// The underlying entity-view edge.
    pub triple: Triple,
    /// Its relation label (what the node's embedding keys on).
    pub relation: RelationId,
}

/// A directed incoming edge in the relation view.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RelInEdge {
    /// Source node index (the message sender `r_j`).
    pub src: usize,
    /// Connection pattern of `src → dst`.
    pub etype: RelEdgeType,
}

/// The relation-view graph R(G) of a subgraph, with the target triple as
/// node 0.
#[derive(Clone, Debug)]
pub struct RelViewGraph {
    /// Nodes (target first, then the subgraph edges in sorted order).
    pub nodes: Vec<RelNode>,
    /// Incoming adjacency per node.
    pub in_edges: Vec<Vec<RelInEdge>>,
}

/// Index of the target relation node.
pub const TARGET_NODE: usize = 0;

impl RelViewGraph {
    /// Build R(G) for `sg`, inserting the target triple as node 0.
    pub fn from_subgraph(sg: &Subgraph) -> Self {
        let mut nodes = Vec::with_capacity(sg.triples.len() + 1);
        nodes.push(RelNode { triple: sg.target, relation: sg.target.relation });
        for &t in &sg.triples {
            nodes.push(RelNode { triple: t, relation: t.relation });
        }
        let mut in_edges = vec![Vec::new(); nodes.len()];

        // index nodes by incident entity so we only examine co-incident
        // pairs; BTreeMap keeps construction order deterministic, which keeps
        // f32 aggregation order (and therefore scores) reproducible
        let mut by_entity: BTreeMap<rmpi_kg::EntityId, Vec<usize>> = BTreeMap::new();
        for (i, n) in nodes.iter().enumerate() {
            by_entity.entry(n.triple.head).or_default().push(i);
            if n.triple.tail != n.triple.head {
                by_entity.entry(n.triple.tail).or_default().push(i);
            }
        }
        let mut seen_pairs = std::collections::HashSet::new();
        for ids in by_entity.values() {
            for (pos, &i) in ids.iter().enumerate() {
                for &j in &ids[pos + 1..] {
                    let (a, b) = (i.min(j), i.max(j));
                    if !seen_pairs.insert((a, b)) {
                        continue;
                    }
                    for et in RelEdgeType::classify(nodes[a].triple, nodes[b].triple) {
                        // edge a -> b of type et means messages flow a -> b:
                        // record as incoming edge of b
                        in_edges[b].push(RelInEdge { src: a, etype: et });
                    }
                    for et in RelEdgeType::classify(nodes[b].triple, nodes[a].triple) {
                        in_edges[a].push(RelInEdge { src: b, etype: et });
                    }
                }
            }
        }
        for ins in &mut in_edges {
            ins.sort_by_key(|e| (e.src, e.etype.index()));
        }
        RelViewGraph { nodes, in_edges }
    }

    /// Number of relation nodes (entity-view edges + target).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Total number of directed typed edges.
    pub fn num_edges(&self) -> usize {
        self.in_edges.iter().map(Vec::len).sum()
    }

    /// Incoming neighbours of `node`.
    pub fn incoming(&self, node: usize) -> &[RelInEdge] {
        &self.in_edges[node]
    }

    /// The distinct relations labelling the one-hop incoming neighbourhood of
    /// the target node.
    pub fn target_neighbor_relations(&self) -> Vec<RelationId> {
        let mut rels: Vec<RelationId> =
            self.in_edges[TARGET_NODE].iter().map(|e| self.nodes[e.src].relation).collect();
        rels.sort_unstable();
        rels.dedup();
        rels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extraction::enclosing_subgraph;
    use rmpi_kg::KnowledgeGraph;

    #[test]
    fn classify_basic_patterns() {
        let a = Triple::new(0u32, 0u32, 1u32);
        assert_eq!(RelEdgeType::classify(a, Triple::new(0u32, 1u32, 2u32)), vec![RelEdgeType::HH]);
        assert_eq!(RelEdgeType::classify(a, Triple::new(2u32, 1u32, 0u32)), vec![RelEdgeType::HT]);
        assert_eq!(RelEdgeType::classify(a, Triple::new(1u32, 1u32, 2u32)), vec![RelEdgeType::TH]);
        assert_eq!(RelEdgeType::classify(a, Triple::new(2u32, 1u32, 1u32)), vec![RelEdgeType::TT]);
        assert_eq!(RelEdgeType::classify(a, Triple::new(0u32, 1u32, 1u32)), vec![RelEdgeType::Para]);
        assert_eq!(RelEdgeType::classify(a, Triple::new(1u32, 1u32, 0u32)), vec![RelEdgeType::Loop]);
        assert!(RelEdgeType::classify(a, Triple::new(5u32, 1u32, 6u32)).is_empty());
    }

    #[test]
    fn classify_can_return_two_basic_patterns() {
        // a = (0 -> 1), b = (1 -> 0)? that's LOOP. Two basics need e.g.
        // a = (0 -> 1), b = (0 -> 0): HH (head=head) and HT (head=tail).
        let a = Triple::new(0u32, 0u32, 1u32);
        let b = Triple::new(0u32, 1u32, 0u32);
        let ts = RelEdgeType::classify(a, b);
        assert!(ts.contains(&RelEdgeType::HH) && ts.contains(&RelEdgeType::HT));
    }

    #[test]
    fn node_count_is_edge_count_plus_target() {
        let g = KnowledgeGraph::from_triples(vec![
            Triple::new(0u32, 0u32, 1u32),
            Triple::new(1u32, 1u32, 3u32),
            Triple::new(0u32, 2u32, 2u32),
            Triple::new(2u32, 3u32, 3u32),
        ]);
        let sg = enclosing_subgraph(&g, Triple::new(0u32, 9u32, 3u32), 2);
        let rv = RelViewGraph::from_subgraph(&sg);
        assert_eq!(rv.num_nodes(), sg.num_edges() + 1);
        assert_eq!(rv.nodes[TARGET_NODE].triple, sg.target);
    }

    #[test]
    fn edges_require_shared_entity() {
        let g = KnowledgeGraph::from_triples(vec![
            Triple::new(0u32, 0u32, 1u32),
            Triple::new(1u32, 1u32, 3u32),
            Triple::new(0u32, 2u32, 2u32),
            Triple::new(2u32, 3u32, 3u32),
        ]);
        let sg = enclosing_subgraph(&g, Triple::new(0u32, 9u32, 3u32), 2);
        let rv = RelViewGraph::from_subgraph(&sg);
        for (dst, ins) in rv.in_edges.iter().enumerate() {
            for e in ins {
                let a = rv.nodes[e.src].triple;
                let b = rv.nodes[dst].triple;
                let shared = a.head == b.head || a.head == b.tail || a.tail == b.head || a.tail == b.tail;
                assert!(shared, "edge without shared entity: {a} -> {b}");
            }
        }
    }

    #[test]
    fn direction_types_mirror() {
        // a=(0,r,1), b=(1,r,2): a->b is T-H, b->a is H-T.
        let a = Triple::new(0u32, 0u32, 1u32);
        let b = Triple::new(1u32, 1u32, 2u32);
        assert_eq!(RelEdgeType::classify(a, b), vec![RelEdgeType::TH]);
        assert_eq!(RelEdgeType::classify(b, a), vec![RelEdgeType::HT]);
    }

    #[test]
    fn target_node_receives_messages_from_incident_edges() {
        let g = KnowledgeGraph::from_triples(vec![
            Triple::new(0u32, 0u32, 1u32), // shares head with target
            Triple::new(1u32, 1u32, 3u32),
        ]);
        let sg = enclosing_subgraph(&g, Triple::new(0u32, 9u32, 3u32), 2);
        let rv = RelViewGraph::from_subgraph(&sg);
        assert!(!rv.incoming(TARGET_NODE).is_empty());
        let rels = rv.target_neighbor_relations();
        assert!(rels.contains(&RelationId(0)));
        assert!(rels.contains(&RelationId(1)));
    }

    #[test]
    fn empty_subgraph_gives_isolated_target() {
        let g = KnowledgeGraph::from_triples(vec![Triple::new(5u32, 0u32, 6u32)]);
        let sg = enclosing_subgraph(&g, Triple::new(0u32, 1u32, 1u32), 2);
        let rv = RelViewGraph::from_subgraph(&sg);
        assert_eq!(rv.num_nodes(), 1);
        assert!(rv.incoming(TARGET_NODE).is_empty());
        assert!(rv.target_neighbor_relations().is_empty());
    }

    #[test]
    fn parallel_edges_linked_as_para_both_ways() {
        let g = KnowledgeGraph::from_triples(vec![
            Triple::new(0u32, 0u32, 1u32),
            Triple::new(0u32, 1u32, 1u32),
            Triple::new(1u32, 2u32, 0u32),
        ]);
        let sg = enclosing_subgraph(&g, Triple::new(0u32, 9u32, 1u32), 1);
        let rv = RelViewGraph::from_subgraph(&sg);
        // find the two para nodes
        let para_edges: usize = rv
            .in_edges
            .iter()
            .flatten()
            .filter(|e| e.etype == RelEdgeType::Para)
            .count();
        // r0<->r1 are parallel; target (0,9,1) is also parallel to both.
        assert!(para_edges >= 2, "para edges: {para_edges}");
        let loop_edges: usize = rv.in_edges.iter().flatten().filter(|e| e.etype == RelEdgeType::Loop).count();
        assert!(loop_edges >= 2, "loop edges from the reversed r2: {loop_edges}");
    }
}
