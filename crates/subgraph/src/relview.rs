//! Relation-view (directed line-graph) transform (paper §III-B, Fig. 3).
//!
//! Every edge of the entity-view subgraph becomes a node of [`RelViewGraph`];
//! two nodes are connected iff their edges share an entity, and each directed
//! connection is typed with one of the six patterns of Fig. 3c:
//!
//! | type | condition (for edge `a → b`)      |
//! |------|-----------------------------------|
//! | H-H  | head(a) = head(b)                 |
//! | H-T  | head(a) = tail(b)                 |
//! | T-H  | tail(a) = head(b)                 |
//! | T-T  | tail(a) = tail(b)                 |
//! | PARA | head & tail both equal            |
//! | LOOP | head(a) = tail(b) and tail(a) = head(b) |
//!
//! PARA subsumes {H-H, T-T} and LOOP subsumes {H-T, T-H} when they apply, so
//! a pair of relation nodes contributes exactly the most specific edge types.
//!
//! The *target* triple is always node 0 of the transform, even though it is
//! excluded from the subgraph's edge set — it is the node whose representation
//! the model reads out.

use crate::extraction::Subgraph;
use rmpi_kg::{EntityId, RelationId, Triple};

/// Number of distinct relation-view edge types.
pub const NUM_EDGE_TYPES: usize = 6;

/// The six connection patterns between relation nodes (Fig. 3c).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RelEdgeType {
    /// Heads coincide.
    HH,
    /// Head of source = tail of destination.
    HT,
    /// Tail of source = head of destination.
    TH,
    /// Tails coincide.
    TT,
    /// Both endpoints coincide (parallel edges).
    Para,
    /// Endpoints crossed (anti-parallel edges).
    Loop,
}

impl RelEdgeType {
    /// Dense index in `0..NUM_EDGE_TYPES`.
    pub fn index(self) -> usize {
        match self {
            RelEdgeType::HH => 0,
            RelEdgeType::HT => 1,
            RelEdgeType::TH => 2,
            RelEdgeType::TT => 3,
            RelEdgeType::Para => 4,
            RelEdgeType::Loop => 5,
        }
    }

    /// All six types, index order.
    pub fn all() -> [RelEdgeType; NUM_EDGE_TYPES] {
        [
            RelEdgeType::HH,
            RelEdgeType::HT,
            RelEdgeType::TH,
            RelEdgeType::TT,
            RelEdgeType::Para,
            RelEdgeType::Loop,
        ]
    }

    /// Classify the directed connection `a → b`, or `None` when the edges
    /// share no entity.
    pub fn classify(a: Triple, b: Triple) -> Vec<RelEdgeType> {
        let (types, n) = Self::classify_packed(a, b);
        types[..n].to_vec()
    }

    /// Allocation-free [`Self::classify`]: the (at most two) applicable types
    /// in a fixed array plus the valid count. This is the form the relation
    /// view transform calls once per co-incident edge pair — the quadratic
    /// inner loop of the build.
    #[inline]
    pub fn classify_packed(a: Triple, b: Triple) -> ([RelEdgeType; 2], usize) {
        let hh = a.head == b.head;
        let ht = a.head == b.tail;
        let th = a.tail == b.head;
        let tt = a.tail == b.tail;
        let mut out = [RelEdgeType::HH; 2];
        let mut n = 0;
        if hh && tt {
            out[0] = RelEdgeType::Para;
            n = 1;
        } else if ht && th {
            out[0] = RelEdgeType::Loop;
            n = 1;
        } else {
            // at most two basics can hold once Para/Loop are excluded: three
            // of {hh, ht, th, tt} force the fourth, which is the Para case
            if hh {
                out[n] = RelEdgeType::HH;
                n += 1;
            }
            if ht {
                out[n] = RelEdgeType::HT;
                n += 1;
            }
            if th {
                out[n] = RelEdgeType::TH;
                n += 1;
            }
            if tt {
                out[n] = RelEdgeType::TT;
                n += 1;
            }
        }
        (out, n)
    }
}

/// One node of the relation view: an edge instance of the entity view.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RelNode {
    /// The underlying entity-view edge.
    pub triple: Triple,
    /// Its relation label (what the node's embedding keys on).
    pub relation: RelationId,
}

/// A directed incoming edge in the relation view.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RelInEdge {
    /// Source node index (the message sender `r_j`).
    pub src: usize,
    /// Connection pattern of `src → dst`.
    pub etype: RelEdgeType,
}

/// The relation-view graph R(G) of a subgraph, with the target triple as
/// node 0.
///
/// Incoming adjacency is stored CSR-style — one flat edge array plus one
/// offset array — rather than a `Vec<Vec<_>>`: building the view costs a
/// constant number of allocations instead of one per relation node, and a
/// node's incoming slice is a contiguous read.
#[derive(Clone, Debug)]
pub struct RelViewGraph {
    /// Nodes (target first, then the subgraph edges in sorted order).
    pub nodes: Vec<RelNode>,
    /// All incoming edges, grouped by destination node, each group sorted by
    /// `(src, etype)`.
    edges: Vec<RelInEdge>,
    /// `edges[offsets[i]..offsets[i + 1]]` are node `i`'s incoming edges.
    offsets: Vec<usize>,
}

/// Index of the target relation node.
pub const TARGET_NODE: usize = 0;

/// Smallest entity shared by both triples' endpoint sets (the triples are
/// known to share at least one).
#[inline]
fn first_shared_entity(a: Triple, b: Triple) -> EntityId {
    let mut min: Option<EntityId> = None;
    for x in [a.head, a.tail] {
        if (x == b.head || x == b.tail) && min.map_or(true, |m| x < m) {
            min = Some(x);
        }
    }
    min.expect("triples from one incidence group share an entity")
}

impl RelViewGraph {
    /// Build R(G) for `sg`, inserting the target triple as node 0.
    pub fn from_subgraph(sg: &Subgraph) -> Self {
        let mut nodes = Vec::with_capacity(sg.triples.len() + 1);
        nodes.push(RelNode { triple: sg.target, relation: sg.target.relation });
        for &t in &sg.triples {
            nodes.push(RelNode { triple: t, relation: t.relation });
        }
        // (dst, edge) pairs, flattened; sorted into CSR form at the end
        let mut flat: Vec<(u32, RelInEdge)> = Vec::new();

        // group nodes by incident entity so we only examine co-incident
        // pairs. A flat (entity, node) incidence list sorted once replaces
        // the per-entity map: groups are contiguous runs, iterated in
        // ascending entity order, with zero per-entity allocations.
        let mut incidence: Vec<(EntityId, u32)> = Vec::with_capacity(2 * nodes.len());
        for (i, n) in nodes.iter().enumerate() {
            incidence.push((n.triple.head, i as u32));
            if n.triple.tail != n.triple.head {
                incidence.push((n.triple.tail, i as u32));
            }
        }
        incidence.sort_unstable();

        let mut g0 = 0;
        while g0 < incidence.len() {
            let entity = incidence[g0].0;
            let g1 = g0 + incidence[g0..].iter().take_while(|p| p.0 == entity).count();
            let group = &incidence[g0..g1];
            for (pos, &(_, i)) in group.iter().enumerate() {
                for &(_, j) in &group[pos + 1..] {
                    let (a, b) = ((i.min(j)) as usize, (i.max(j)) as usize);
                    let (ta, tb) = (nodes[a].triple, nodes[b].triple);
                    // a pair sharing two entities shows up in two groups;
                    // process it only in the group of its smallest shared
                    // entity (exact dedup without a seen-pairs set)
                    if first_shared_entity(ta, tb) != entity {
                        continue;
                    }
                    // edge a -> b of type et means messages flow a -> b:
                    // record as incoming edge of b
                    let (types, n) = RelEdgeType::classify_packed(ta, tb);
                    for &et in &types[..n] {
                        flat.push((b as u32, RelInEdge { src: a, etype: et }));
                    }
                    let (types, n) = RelEdgeType::classify_packed(tb, ta);
                    for &et in &types[..n] {
                        flat.push((a as u32, RelInEdge { src: b, etype: et }));
                    }
                }
            }
            g0 = g1;
        }
        // counting-sort scatter groups edges by destination in O(E); the
        // per-node sort then fixes message order regardless of discovery
        // order, which keeps f32 aggregation (and therefore scores)
        // bit-reproducible
        let mut offsets = vec![0usize; nodes.len() + 1];
        for (dst, _) in &flat {
            offsets[*dst as usize + 1] += 1;
        }
        for i in 0..nodes.len() {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor = offsets.clone();
        let mut edges = vec![RelInEdge { src: 0, etype: RelEdgeType::HH }; flat.len()];
        for &(dst, e) in &flat {
            edges[cursor[dst as usize]] = e;
            cursor[dst as usize] += 1;
        }
        for i in 0..nodes.len() {
            edges[offsets[i]..offsets[i + 1]].sort_unstable_by_key(|e| (e.src, e.etype.index()));
        }
        RelViewGraph { nodes, edges, offsets }
    }

    /// Number of relation nodes (entity-view edges + target).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Total number of directed typed edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Incoming neighbours of `node`.
    pub fn incoming(&self, node: usize) -> &[RelInEdge] {
        &self.edges[self.offsets[node]..self.offsets[node + 1]]
    }

    /// All `(dst, incoming edge)` pairs, grouped by destination.
    pub fn iter_edges(&self) -> impl Iterator<Item = (usize, &RelInEdge)> {
        (0..self.num_nodes()).flat_map(move |dst| self.incoming(dst).iter().map(move |e| (dst, e)))
    }

    /// The distinct relations labelling the one-hop incoming neighbourhood of
    /// the target node.
    pub fn target_neighbor_relations(&self) -> Vec<RelationId> {
        let mut rels: Vec<RelationId> =
            self.incoming(TARGET_NODE).iter().map(|e| self.nodes[e.src].relation).collect();
        rels.sort_unstable();
        rels.dedup();
        rels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extraction::enclosing_subgraph;
    use rmpi_kg::KnowledgeGraph;

    #[test]
    fn classify_basic_patterns() {
        let a = Triple::new(0u32, 0u32, 1u32);
        assert_eq!(RelEdgeType::classify(a, Triple::new(0u32, 1u32, 2u32)), vec![RelEdgeType::HH]);
        assert_eq!(RelEdgeType::classify(a, Triple::new(2u32, 1u32, 0u32)), vec![RelEdgeType::HT]);
        assert_eq!(RelEdgeType::classify(a, Triple::new(1u32, 1u32, 2u32)), vec![RelEdgeType::TH]);
        assert_eq!(RelEdgeType::classify(a, Triple::new(2u32, 1u32, 1u32)), vec![RelEdgeType::TT]);
        assert_eq!(
            RelEdgeType::classify(a, Triple::new(0u32, 1u32, 1u32)),
            vec![RelEdgeType::Para]
        );
        assert_eq!(
            RelEdgeType::classify(a, Triple::new(1u32, 1u32, 0u32)),
            vec![RelEdgeType::Loop]
        );
        assert!(RelEdgeType::classify(a, Triple::new(5u32, 1u32, 6u32)).is_empty());
    }

    #[test]
    fn classify_can_return_two_basic_patterns() {
        // a = (0 -> 1), b = (1 -> 0)? that's LOOP. Two basics need e.g.
        // a = (0 -> 1), b = (0 -> 0): HH (head=head) and HT (head=tail).
        let a = Triple::new(0u32, 0u32, 1u32);
        let b = Triple::new(0u32, 1u32, 0u32);
        let ts = RelEdgeType::classify(a, b);
        assert!(ts.contains(&RelEdgeType::HH) && ts.contains(&RelEdgeType::HT));
    }

    #[test]
    fn node_count_is_edge_count_plus_target() {
        let g = KnowledgeGraph::from_triples(vec![
            Triple::new(0u32, 0u32, 1u32),
            Triple::new(1u32, 1u32, 3u32),
            Triple::new(0u32, 2u32, 2u32),
            Triple::new(2u32, 3u32, 3u32),
        ]);
        let sg = enclosing_subgraph(&g, Triple::new(0u32, 9u32, 3u32), 2);
        let rv = RelViewGraph::from_subgraph(&sg);
        assert_eq!(rv.num_nodes(), sg.num_edges() + 1);
        assert_eq!(rv.nodes[TARGET_NODE].triple, sg.target);
    }

    #[test]
    fn edges_require_shared_entity() {
        let g = KnowledgeGraph::from_triples(vec![
            Triple::new(0u32, 0u32, 1u32),
            Triple::new(1u32, 1u32, 3u32),
            Triple::new(0u32, 2u32, 2u32),
            Triple::new(2u32, 3u32, 3u32),
        ]);
        let sg = enclosing_subgraph(&g, Triple::new(0u32, 9u32, 3u32), 2);
        let rv = RelViewGraph::from_subgraph(&sg);
        for dst in 0..rv.num_nodes() {
            for e in rv.incoming(dst) {
                let a = rv.nodes[e.src].triple;
                let b = rv.nodes[dst].triple;
                let shared =
                    a.head == b.head || a.head == b.tail || a.tail == b.head || a.tail == b.tail;
                assert!(shared, "edge without shared entity: {a} -> {b}");
            }
        }
    }

    #[test]
    fn direction_types_mirror() {
        // a=(0,r,1), b=(1,r,2): a->b is T-H, b->a is H-T.
        let a = Triple::new(0u32, 0u32, 1u32);
        let b = Triple::new(1u32, 1u32, 2u32);
        assert_eq!(RelEdgeType::classify(a, b), vec![RelEdgeType::TH]);
        assert_eq!(RelEdgeType::classify(b, a), vec![RelEdgeType::HT]);
    }

    #[test]
    fn target_node_receives_messages_from_incident_edges() {
        let g = KnowledgeGraph::from_triples(vec![
            Triple::new(0u32, 0u32, 1u32), // shares head with target
            Triple::new(1u32, 1u32, 3u32),
        ]);
        let sg = enclosing_subgraph(&g, Triple::new(0u32, 9u32, 3u32), 2);
        let rv = RelViewGraph::from_subgraph(&sg);
        assert!(!rv.incoming(TARGET_NODE).is_empty());
        let rels = rv.target_neighbor_relations();
        assert!(rels.contains(&RelationId(0)));
        assert!(rels.contains(&RelationId(1)));
    }

    #[test]
    fn empty_subgraph_gives_isolated_target() {
        let g = KnowledgeGraph::from_triples(vec![Triple::new(5u32, 0u32, 6u32)]);
        let sg = enclosing_subgraph(&g, Triple::new(0u32, 1u32, 1u32), 2);
        let rv = RelViewGraph::from_subgraph(&sg);
        assert_eq!(rv.num_nodes(), 1);
        assert!(rv.incoming(TARGET_NODE).is_empty());
        assert!(rv.target_neighbor_relations().is_empty());
    }

    #[test]
    fn parallel_edges_linked_as_para_both_ways() {
        let g = KnowledgeGraph::from_triples(vec![
            Triple::new(0u32, 0u32, 1u32),
            Triple::new(0u32, 1u32, 1u32),
            Triple::new(1u32, 2u32, 0u32),
        ]);
        let sg = enclosing_subgraph(&g, Triple::new(0u32, 9u32, 1u32), 1);
        let rv = RelViewGraph::from_subgraph(&sg);
        // find the two para nodes
        let para_edges: usize =
            rv.iter_edges().filter(|(_, e)| e.etype == RelEdgeType::Para).count();
        // r0<->r1 are parallel; target (0,9,1) is also parallel to both.
        assert!(para_edges >= 2, "para edges: {para_edges}");
        let loop_edges: usize =
            rv.iter_edges().filter(|(_, e)| e.etype == RelEdgeType::Loop).count();
        assert!(loop_edges >= 2, "loop edges from the reversed r2: {loop_edges}");
    }
}
