//! Compressed sparse row (CSR) storage for read-only graph workloads.
//!
//! [`KnowledgeGraph`] keeps one `Vec` per entity — simple, but two pointer
//! hops per adjacency scan and ~48 bytes of `Vec` header per entity.
//! [`CsrGraph`] packs all out-edges (and separately all in-edges) into one
//! contiguous arena with per-entity offset ranges: one cache-friendly slice
//! per query and O(1) memory overhead per entity. Subgraph extraction is
//! adjacency-scan-bound, which makes this the layout to reach for on large
//! graphs; the `graph_storage` criterion bench quantifies the difference.
//!
//! The query API mirrors [`KnowledgeGraph`] so the two are drop-in
//! interchangeable for read paths; a property test in `tests/proptests.rs`
//! pins the equivalence.

use crate::graph::{Edge, KnowledgeGraph};
use crate::ids::{EntityId, RelationId};
use crate::triple::Triple;
use std::collections::HashSet;

/// Immutable CSR snapshot of a triple set.
#[derive(Clone, Debug, Default)]
pub struct CsrGraph {
    triples: Vec<Triple>,
    // out-edge arena: for entity e, edges live at out_arena[out_off[e]..out_off[e+1]]
    out_off: Vec<u32>,
    out_arena: Vec<Edge>,
    in_off: Vec<u32>,
    in_arena: Vec<Edge>,
    members: HashSet<Triple>,
    num_relations: usize,
}

impl CsrGraph {
    /// Build from a triple list (two counting passes + one fill pass).
    pub fn from_triples(triples: Vec<Triple>) -> Self {
        let n = triples.iter().map(|t| t.head.0.max(t.tail.0) as usize + 1).max().unwrap_or(0);
        let num_relations = triples.iter().map(|t| t.relation.0 as usize + 1).max().unwrap_or(0);

        let mut out_off = vec![0u32; n + 1];
        let mut in_off = vec![0u32; n + 1];
        for t in &triples {
            out_off[t.head.index() + 1] += 1;
            in_off[t.tail.index() + 1] += 1;
        }
        for i in 0..n {
            out_off[i + 1] += out_off[i];
            in_off[i + 1] += in_off[i];
        }

        let dummy = Edge { neighbor: EntityId(0), relation: RelationId(0), triple_idx: 0 };
        let mut out_arena = vec![dummy; triples.len()];
        let mut in_arena = vec![dummy; triples.len()];
        let mut out_cursor = out_off.clone();
        let mut in_cursor = in_off.clone();
        let mut members = HashSet::with_capacity(triples.len());
        for (idx, t) in triples.iter().enumerate() {
            let o = &mut out_cursor[t.head.index()];
            out_arena[*o as usize] =
                Edge { neighbor: t.tail, relation: t.relation, triple_idx: idx };
            *o += 1;
            let i = &mut in_cursor[t.tail.index()];
            in_arena[*i as usize] =
                Edge { neighbor: t.head, relation: t.relation, triple_idx: idx };
            *i += 1;
            members.insert(*t);
        }
        CsrGraph { triples, out_off, out_arena, in_off, in_arena, members, num_relations }
    }

    /// Convert from the Vec-of-Vecs representation.
    pub fn from_graph(g: &KnowledgeGraph) -> Self {
        Self::from_triples(g.triples().to_vec())
    }

    /// All triples, insertion order.
    pub fn triples(&self) -> &[Triple] {
        &self.triples
    }

    /// The triple at `idx`.
    pub fn triple(&self, idx: usize) -> Triple {
        self.triples[idx]
    }

    /// Number of triples.
    pub fn num_triples(&self) -> usize {
        self.triples.len()
    }

    /// Entity id-space capacity (max id + 1).
    pub fn num_entities(&self) -> usize {
        self.out_off.len().saturating_sub(1)
    }

    /// Relation id-space capacity (max id + 1).
    pub fn num_relations(&self) -> usize {
        self.num_relations
    }

    /// Outgoing edges of `e`, as one contiguous slice.
    pub fn out_edges(&self, e: EntityId) -> &[Edge] {
        let i = e.index();
        if i + 1 >= self.out_off.len() {
            return &[];
        }
        &self.out_arena[self.out_off[i] as usize..self.out_off[i + 1] as usize]
    }

    /// Incoming edges of `e`, as one contiguous slice.
    pub fn in_edges(&self, e: EntityId) -> &[Edge] {
        let i = e.index();
        if i + 1 >= self.in_off.len() {
            return &[];
        }
        &self.in_arena[self.in_off[i] as usize..self.in_off[i + 1] as usize]
    }

    /// Out-degree plus in-degree.
    pub fn degree(&self, e: EntityId) -> usize {
        self.out_edges(e).len() + self.in_edges(e).len()
    }

    /// O(1) membership test.
    pub fn contains(&self, t: &Triple) -> bool {
        self.members.contains(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Vec<Triple> {
        vec![
            Triple::new(0u32, 0u32, 1u32),
            Triple::new(1u32, 1u32, 2u32),
            Triple::new(2u32, 0u32, 0u32),
            Triple::new(0u32, 1u32, 2u32),
        ]
    }

    #[test]
    fn sizes_match_vec_graph() {
        let g = KnowledgeGraph::from_triples(toy());
        let c = CsrGraph::from_graph(&g);
        assert_eq!(c.num_triples(), g.num_triples());
        assert_eq!(c.num_entities(), g.num_entities());
        assert_eq!(c.num_relations(), g.num_relations());
    }

    #[test]
    fn adjacency_matches_vec_graph_as_sets() {
        let g = KnowledgeGraph::from_triples(toy());
        let c = CsrGraph::from_graph(&g);
        for e in 0..g.num_entities() as u32 {
            let e = EntityId(e);
            let mut a: Vec<Edge> = g.out_edges(e).to_vec();
            let mut b: Vec<Edge> = c.out_edges(e).to_vec();
            let key = |x: &Edge| (x.neighbor, x.relation, x.triple_idx);
            a.sort_by_key(key);
            b.sort_by_key(key);
            assert_eq!(a, b, "out-edges of {e}");
            let mut a: Vec<Edge> = g.in_edges(e).to_vec();
            let mut b: Vec<Edge> = c.in_edges(e).to_vec();
            a.sort_by_key(key);
            b.sort_by_key(key);
            assert_eq!(a, b, "in-edges of {e}");
            assert_eq!(g.degree(e), c.degree(e));
        }
    }

    #[test]
    fn membership_and_bounds() {
        let c = CsrGraph::from_triples(toy());
        assert!(c.contains(&Triple::new(0u32, 0u32, 1u32)));
        assert!(!c.contains(&Triple::new(1u32, 0u32, 0u32)));
        assert!(c.out_edges(EntityId(99)).is_empty());
        assert!(c.in_edges(EntityId(99)).is_empty());
    }

    #[test]
    fn empty_graph() {
        let c = CsrGraph::from_triples(vec![]);
        assert_eq!(c.num_triples(), 0);
        assert_eq!(c.num_entities(), 0);
        assert!(c.out_edges(EntityId(0)).is_empty());
    }

    #[test]
    fn arena_is_contiguous_per_entity() {
        // every out_edges slice must contain exactly that entity's edges
        let c = CsrGraph::from_triples(toy());
        for e in 0..c.num_entities() as u32 {
            for edge in c.out_edges(EntityId(e)) {
                assert_eq!(c.triple(edge.triple_idx).head, EntityId(e));
            }
            for edge in c.in_edges(EntityId(e)) {
                assert_eq!(c.triple(edge.triple_idx).tail, EntityId(e));
            }
        }
    }
}
