//! Line-oriented TSV codec for triples.
//!
//! The on-disk format mirrors the GraIL benchmark files: one triple per line,
//! `head \t relation \t tail`, names resolved through a [`Vocab`]. Reading
//! can either extend a vocabulary (training graphs) or require all names to
//! exist already (strict mode, used when a testing graph must share relation
//! ids with its training graph).

use crate::error::KgError;
use crate::interner::Vocab;
use crate::triple::Triple;
use std::io::{BufRead, Write};

/// Serialise triples as TSV lines using names from `vocab`.
pub fn write_triples<W: Write>(
    w: &mut W,
    triples: &[Triple],
    vocab: &Vocab,
) -> Result<(), KgError> {
    for t in triples {
        let h = vocab.entity_name(t.head)?;
        let r = vocab.relation_name(t.relation)?;
        let o = vocab.entity_name(t.tail)?;
        writeln!(w, "{h}\t{r}\t{o}")?;
    }
    Ok(())
}

/// Parse TSV lines into triples, interning unseen names into `vocab`.
///
/// Blank lines and lines starting with `#` are skipped.
pub fn read_triples<R: BufRead>(r: R, vocab: &mut Vocab) -> Result<Vec<Triple>, KgError> {
    let mut triples = Vec::new();
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split('\t');
        let (h, rel, t) = match (parts.next(), parts.next(), parts.next()) {
            (Some(h), Some(rel), Some(t)) if parts.next().is_none() => (h, rel, t),
            _ => {
                return Err(KgError::Parse {
                    line: lineno + 1,
                    message: format!("expected 3 tab-separated fields, got {trimmed:?}"),
                })
            }
        };
        let head = vocab.entity(h);
        let relation = vocab.relation(rel);
        let tail = vocab.entity(t);
        triples.push(Triple { head, relation, tail });
    }
    Ok(triples)
}

/// Parse TSV lines into triples using only names already present in `vocab`.
pub fn read_triples_strict<R: BufRead>(r: R, vocab: &Vocab) -> Result<Vec<Triple>, KgError> {
    let mut triples = Vec::new();
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split('\t').collect();
        if fields.len() != 3 {
            return Err(KgError::Parse {
                line: lineno + 1,
                message: format!("expected 3 tab-separated fields, got {trimmed:?}"),
            });
        }
        let head = vocab.entity_id(fields[0])?;
        let relation = vocab.relation_id(fields[1])?;
        let tail = vocab.entity_id(fields[2])?;
        triples.push(Triple { head, relation, tail });
    }
    Ok(triples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip() {
        let mut vocab = Vocab::new();
        let input = "a\tr1\tb\nb\tr2\tc\n";
        let triples = read_triples(Cursor::new(input), &mut vocab).unwrap();
        assert_eq!(triples.len(), 2);
        let mut buf = Vec::new();
        write_triples(&mut buf, &triples, &vocab).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), input);
    }

    #[test]
    fn skips_blank_and_comment_lines() {
        let mut vocab = Vocab::new();
        let input = "# header\n\na\tr\tb\n   \n";
        let triples = read_triples(Cursor::new(input), &mut vocab).unwrap();
        assert_eq!(triples.len(), 1);
    }

    #[test]
    fn malformed_line_reports_position() {
        let mut vocab = Vocab::new();
        let input = "a\tr\tb\nbad line\n";
        let err = read_triples(Cursor::new(input), &mut vocab).unwrap_err();
        match err {
            KgError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn too_many_fields_rejected() {
        let mut vocab = Vocab::new();
        let input = "a\tr\tb\textra\n";
        assert!(read_triples(Cursor::new(input), &mut vocab).is_err());
    }

    #[test]
    fn strict_mode_rejects_unknown_names() {
        let mut vocab = Vocab::new();
        read_triples(Cursor::new("a\tr\tb\n"), &mut vocab).unwrap();
        assert!(read_triples_strict(Cursor::new("a\tr\tb\n"), &vocab).is_ok());
        assert!(read_triples_strict(Cursor::new("a\tr\tzzz\n"), &vocab).is_err());
        assert!(read_triples_strict(Cursor::new("a\tnew_rel\tb\n"), &vocab).is_err());
    }

    #[test]
    fn strict_mode_shares_ids_with_loose_mode() {
        let mut vocab = Vocab::new();
        let loose = read_triples(Cursor::new("a\tr\tb\n"), &mut vocab).unwrap();
        let strict = read_triples_strict(Cursor::new("b\tr\ta\n"), &vocab).unwrap();
        assert_eq!(loose[0].head, strict[0].tail);
        assert_eq!(loose[0].relation, strict[0].relation);
    }
}
