//! K-hop breadth-first neighbourhoods.
//!
//! Subgraph extraction (paper §III-B) needs, for a target entity, the set of
//! entities reachable within K hops *ignoring edge direction* — the paper
//! collects "incoming and outgoing neighbors". [`khop_distances`] returns the
//! hop distance of every such entity; [`khop_neighborhood`] just the set.

use crate::access::GraphAccess;
use crate::ids::EntityId;
use std::collections::{HashMap, VecDeque};

/// Breadth-first distances from `start` up to `k` hops, traversing edges in
/// both directions. The start entity itself is included with distance 0.
///
/// `excluded` is an optional entity that must not be traversed *through* nor
/// included — used by double-radius labelling, where `d(i, u)` is computed
/// "without counting any path through v".
pub fn khop_distances<G: GraphAccess + ?Sized>(
    g: &G,
    start: EntityId,
    k: usize,
    excluded: Option<EntityId>,
) -> HashMap<EntityId, usize> {
    let mut dist = HashMap::new();
    if Some(start) == excluded {
        return dist;
    }
    dist.insert(start, 0usize);
    let mut queue = VecDeque::new();
    queue.push_back(start);
    while let Some(cur) = queue.pop_front() {
        let d = dist[&cur];
        if d == k {
            continue;
        }
        let nexts = g
            .out_edges(cur)
            .iter()
            .map(|e| e.neighbor)
            .chain(g.in_edges(cur).iter().map(|e| e.neighbor));
        for nb in nexts {
            if Some(nb) == excluded || dist.contains_key(&nb) {
                continue;
            }
            dist.insert(nb, d + 1);
            queue.push_back(nb);
        }
    }
    dist
}

/// The set of entities within `k` undirected hops of `start` (inclusive).
pub fn khop_neighborhood<G: GraphAccess + ?Sized>(
    g: &G,
    start: EntityId,
    k: usize,
) -> HashMap<EntityId, usize> {
    khop_distances(g, start, k, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::KnowledgeGraph;
    use crate::triple::Triple;

    /// Path 0 -> 1 -> 2 -> 3 plus a shortcut 0 -> 3.
    fn path_graph() -> KnowledgeGraph {
        KnowledgeGraph::from_triples(vec![
            Triple::new(0u32, 0u32, 1u32),
            Triple::new(1u32, 0u32, 2u32),
            Triple::new(2u32, 0u32, 3u32),
            Triple::new(0u32, 1u32, 3u32),
        ])
    }

    #[test]
    fn distances_ignore_direction() {
        let g = path_graph();
        let d = khop_distances(&g, EntityId(3), 3, None);
        // 3 reaches 2 (reverse edge), 0 (reverse shortcut), 1 via 2 or 0.
        assert_eq!(d[&EntityId(3)], 0);
        assert_eq!(d[&EntityId(2)], 1);
        assert_eq!(d[&EntityId(0)], 1);
        assert_eq!(d[&EntityId(1)], 2);
    }

    #[test]
    fn hop_limit_respected() {
        let g = path_graph();
        let d = khop_distances(&g, EntityId(1), 1, None);
        assert!(d.contains_key(&EntityId(0)));
        assert!(d.contains_key(&EntityId(2)));
        // distance-2 nodes (3 via 2 or via 0) excluded at k=1
        assert!(!d.contains_key(&EntityId(3)));
    }

    #[test]
    fn exclusion_blocks_paths_through_node() {
        let g = KnowledgeGraph::from_triples(vec![
            Triple::new(0u32, 0u32, 1u32),
            Triple::new(1u32, 0u32, 2u32),
        ]);
        // without exclusion, 0 reaches 2 in 2 hops
        let d = khop_distances(&g, EntityId(0), 2, None);
        assert_eq!(d[&EntityId(2)], 2);
        // excluding 1 disconnects 2
        let d = khop_distances(&g, EntityId(0), 2, Some(EntityId(1)));
        assert!(!d.contains_key(&EntityId(1)));
        assert!(!d.contains_key(&EntityId(2)));
    }

    #[test]
    fn excluded_start_yields_empty() {
        let g = path_graph();
        let d = khop_distances(&g, EntityId(0), 2, Some(EntityId(0)));
        assert!(d.is_empty());
    }

    #[test]
    fn shortest_distance_wins_over_longer_path() {
        let g = path_graph();
        let d = khop_distances(&g, EntityId(0), 3, None);
        // direct shortcut 0->3 gives distance 1, not 3 via the path
        assert_eq!(d[&EntityId(3)], 1);
    }
}
