//! Read-only graph access shared by [`KnowledgeGraph`], [`CsrGraph`] and
//! out-of-core backends (`rmpi-store`).
//!
//! Subgraph extraction, sampling, and scoring only ever *read* adjacency:
//! out-edge / in-edge scans, triple lookups by index, and membership tests.
//! [`GraphAccess`] captures exactly that surface so the hot paths can run
//! over the CSR arenas while tests, tooling, and graph construction keep the
//! flexible Vec-of-Vecs representation. The trait is object-safe on purpose:
//! model scoring is dispatched through `&dyn ScoringModel`, which forces the
//! graph parameter to be a trait object as well.
//!
//! The trait deliberately has **no** "give me all triples as one slice"
//! method: a disk-backed graph (`rmpi_store::StoreReader`) answers every
//! query here from segment files without ever materialising the full triple
//! set in memory. Whole-graph sweeps go through [`GraphAccess::for_each_triple`],
//! which a RAM backend serves from its slice and a store backend serves by
//! streaming segments. Code that genuinely needs the slice (analysis,
//! serialisation) uses the concrete types' inherent `triples()` methods.
//!
//! All implementations enumerate a given entity's edges in the same order —
//! ascending triple index — so code routed over any backend sees identical
//! iteration order, not merely identical sets.

use crate::csr::CsrGraph;
use crate::graph::{Edge, KnowledgeGraph};
use crate::ids::EntityId;
use crate::triple::Triple;

/// Read-only adjacency and membership queries over an indexed triple set.
pub trait GraphAccess {
    /// Outgoing edges of `e` (edges where `e` is the head), ascending by
    /// triple index. Out-of-range ids yield an empty slice.
    fn out_edges(&self, e: EntityId) -> &[Edge];

    /// Incoming edges of `e` (edges where `e` is the tail), ascending by
    /// triple index. Out-of-range ids yield an empty slice.
    fn in_edges(&self, e: EntityId) -> &[Edge];

    /// The triple at `idx`.
    fn triple(&self, idx: usize) -> Triple;

    /// Visit every triple in ascending triple-index order. RAM backends walk
    /// their slice; out-of-core backends stream segments, so callers must not
    /// assume the triples ever coexist in memory.
    fn for_each_triple(&self, f: &mut dyn FnMut(Triple));

    /// Entity id-space capacity (max id + 1).
    fn num_entities(&self) -> usize;

    /// Number of triples (duplicates included).
    fn num_triples(&self) -> usize;

    /// Relation id-space capacity (max id + 1).
    fn num_relations(&self) -> usize;

    /// O(1) membership test.
    fn contains(&self, t: &Triple) -> bool;

    /// Out-degree plus in-degree of `e`.
    fn degree(&self, e: EntityId) -> usize {
        self.out_edges(e).len() + self.in_edges(e).len()
    }
}

impl GraphAccess for KnowledgeGraph {
    fn out_edges(&self, e: EntityId) -> &[Edge] {
        KnowledgeGraph::out_edges(self, e)
    }
    fn in_edges(&self, e: EntityId) -> &[Edge] {
        KnowledgeGraph::in_edges(self, e)
    }
    fn triple(&self, idx: usize) -> Triple {
        KnowledgeGraph::triple(self, idx)
    }
    fn for_each_triple(&self, f: &mut dyn FnMut(Triple)) {
        for &t in KnowledgeGraph::triples(self) {
            f(t);
        }
    }
    fn num_entities(&self) -> usize {
        KnowledgeGraph::num_entities(self)
    }
    fn num_triples(&self) -> usize {
        KnowledgeGraph::num_triples(self)
    }
    fn num_relations(&self) -> usize {
        KnowledgeGraph::num_relations(self)
    }
    fn contains(&self, t: &Triple) -> bool {
        KnowledgeGraph::contains(self, t)
    }
}

impl GraphAccess for CsrGraph {
    fn out_edges(&self, e: EntityId) -> &[Edge] {
        CsrGraph::out_edges(self, e)
    }
    fn in_edges(&self, e: EntityId) -> &[Edge] {
        CsrGraph::in_edges(self, e)
    }
    fn triple(&self, idx: usize) -> Triple {
        CsrGraph::triple(self, idx)
    }
    fn for_each_triple(&self, f: &mut dyn FnMut(Triple)) {
        for &t in CsrGraph::triples(self) {
            f(t);
        }
    }
    fn num_entities(&self) -> usize {
        CsrGraph::num_entities(self)
    }
    fn num_triples(&self) -> usize {
        CsrGraph::num_triples(self)
    }
    fn num_relations(&self) -> usize {
        CsrGraph::num_relations(self)
    }
    fn contains(&self, t: &Triple) -> bool {
        CsrGraph::contains(self, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Vec<Triple> {
        vec![
            Triple::new(0u32, 0u32, 1u32),
            Triple::new(1u32, 1u32, 2u32),
            Triple::new(2u32, 0u32, 0u32),
            Triple::new(0u32, 1u32, 2u32),
        ]
    }

    /// Exercises dynamic dispatch: both backends must answer identically
    /// through `&dyn GraphAccess`, including edge *order*.
    #[test]
    fn backends_agree_through_trait_object() {
        let vec_graph = KnowledgeGraph::from_triples(toy());
        let csr_graph = CsrGraph::from_graph(&vec_graph);
        let backends: [&dyn GraphAccess; 2] = [&vec_graph, &csr_graph];
        for g in backends {
            assert_eq!(g.num_triples(), 4);
            assert_eq!(g.num_entities(), 3);
            assert_eq!(g.num_relations(), 2);
            assert!(g.contains(&Triple::new(0u32, 0u32, 1u32)));
            assert!(!g.contains(&Triple::new(2u32, 1u32, 0u32)));
            let mut swept = Vec::new();
            g.for_each_triple(&mut |t| swept.push(t));
            assert_eq!(swept, toy(), "for_each_triple streams in triple-index order");
        }
        for e in 0..3u32 {
            let e = EntityId(e);
            assert_eq!(
                GraphAccess::out_edges(&vec_graph, e),
                GraphAccess::out_edges(&csr_graph, e)
            );
            assert_eq!(GraphAccess::in_edges(&vec_graph, e), GraphAccess::in_edges(&csr_graph, e));
        }
    }

    #[test]
    fn edge_order_is_ascending_triple_index() {
        let csr_graph = CsrGraph::from_triples(toy());
        for e in 0..csr_graph.num_entities() as u32 {
            let edges = GraphAccess::out_edges(&csr_graph, EntityId(e));
            assert!(edges.windows(2).all(|w| w[0].triple_idx < w[1].triple_idx));
        }
    }
}
