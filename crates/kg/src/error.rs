//! Error type for the KG substrate.

use std::fmt;

/// Errors raised by graph construction, lookup and (de)serialisation.
#[derive(Debug)]
pub enum KgError {
    /// An entity id was outside the graph's entity range.
    UnknownEntity(u32),
    /// A relation id was outside the graph's relation range.
    UnknownRelation(u32),
    /// A name was not present in the vocabulary.
    UnknownName(String),
    /// Malformed line encountered while parsing TSV input.
    Parse {
        /// 1-based line number within the input.
        line: usize,
        /// Description of what was wrong with the line.
        message: String,
    },
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for KgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KgError::UnknownEntity(id) => write!(f, "unknown entity id {id}"),
            KgError::UnknownRelation(id) => write!(f, "unknown relation id {id}"),
            KgError::UnknownName(name) => write!(f, "unknown name {name:?}"),
            KgError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            KgError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for KgError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KgError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for KgError {
    fn from(e: std::io::Error) -> Self {
        KgError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert_eq!(KgError::UnknownEntity(4).to_string(), "unknown entity id 4");
        assert_eq!(KgError::UnknownName("x".into()).to_string(), "unknown name \"x\"");
        let p = KgError::Parse { line: 3, message: "bad".into() };
        assert_eq!(p.to_string(), "parse error at line 3: bad");
    }

    #[test]
    fn io_source_is_preserved() {
        use std::error::Error;
        let e = KgError::from(std::io::Error::other("boom"));
        assert!(e.source().is_some());
    }
}
