//! Deterministic dataset splitting.
//!
//! The inductive benchmarks split each graph's triples into train /
//! validation / target-prediction subsets (80/10/10 in the paper §IV-A).
//! Splits are seeded so a benchmark is reproducible from its name alone.

use crate::triple::Triple;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A three-way split of one graph's triples.
#[derive(Clone, Debug, Default)]
pub struct TripleSplit {
    /// Triples available as graph context / training facts.
    pub train: Vec<Triple>,
    /// Held-out triples for validation.
    pub valid: Vec<Triple>,
    /// Held-out triples to predict.
    pub test: Vec<Triple>,
}

/// Shuffle `triples` with `seed` and split by the given fractions.
///
/// `valid_frac + test_frac` must be `< 1`; the remainder goes to train.
pub fn split_triples(
    triples: &[Triple],
    valid_frac: f64,
    test_frac: f64,
    seed: u64,
) -> TripleSplit {
    assert!(
        (0.0..1.0).contains(&(valid_frac + test_frac)),
        "valid+test fractions must be in [0,1): got {}",
        valid_frac + test_frac
    );
    let mut shuffled: Vec<Triple> = triples.to_vec();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    shuffled.shuffle(&mut rng);
    let n = shuffled.len();
    let n_valid = (n as f64 * valid_frac).round() as usize;
    let n_test = (n as f64 * test_frac).round() as usize;
    let n_valid = n_valid.min(n);
    let n_test = n_test.min(n - n_valid);
    let valid = shuffled[..n_valid].to_vec();
    let test = shuffled[n_valid..n_valid + n_test].to_vec();
    let train = shuffled[n_valid + n_test..].to_vec();
    TripleSplit { train, valid, test }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triples(n: u32) -> Vec<Triple> {
        (0..n).map(|i| Triple::new(i, 0u32, i + 1)).collect()
    }

    #[test]
    fn partitions_cover_everything_once() {
        let ts = triples(100);
        let s = split_triples(&ts, 0.1, 0.1, 7);
        assert_eq!(s.train.len() + s.valid.len() + s.test.len(), 100);
        assert_eq!(s.valid.len(), 10);
        assert_eq!(s.test.len(), 10);
        let mut all: Vec<Triple> = s.train.iter().chain(&s.valid).chain(&s.test).copied().collect();
        all.sort();
        let mut orig = ts.clone();
        orig.sort();
        assert_eq!(all, orig);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let ts = triples(50);
        let a = split_triples(&ts, 0.2, 0.2, 42);
        let b = split_triples(&ts, 0.2, 0.2, 42);
        assert_eq!(a.train, b.train);
        assert_eq!(a.test, b.test);
    }

    #[test]
    fn different_seed_changes_assignment() {
        let ts = triples(50);
        let a = split_triples(&ts, 0.2, 0.2, 1);
        let b = split_triples(&ts, 0.2, 0.2, 2);
        assert_ne!(a.test, b.test);
    }

    #[test]
    fn handles_tiny_inputs() {
        let ts = triples(1);
        let s = split_triples(&ts, 0.3, 0.3, 0);
        assert_eq!(s.train.len() + s.valid.len() + s.test.len(), 1);
    }

    #[test]
    #[should_panic(expected = "fractions")]
    fn rejects_overfull_fractions() {
        split_triples(&triples(10), 0.6, 0.5, 0);
    }
}
