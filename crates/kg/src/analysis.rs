//! Structural analysis utilities: connected components, degree histograms
//! and relation co-occurrence — used by the dataset generators' validation
//! and the experiment write-ups.

use crate::graph::KnowledgeGraph;
use crate::ids::{EntityId, RelationId};
use std::collections::HashMap;

/// Undirected connected components over the present entities.
///
/// Returns a map entity → component id (dense, 0-based, ordered by the
/// smallest entity id in each component).
pub fn connected_components(g: &KnowledgeGraph) -> HashMap<EntityId, usize> {
    let mut comp: HashMap<EntityId, usize> = HashMap::new();
    let mut next = 0usize;
    for e in g.present_entities() {
        if comp.contains_key(&e) {
            continue;
        }
        let id = next;
        next += 1;
        let mut stack = vec![e];
        comp.insert(e, id);
        while let Some(cur) = stack.pop() {
            let nbs = g
                .out_edges(cur)
                .iter()
                .map(|x| x.neighbor)
                .chain(g.in_edges(cur).iter().map(|x| x.neighbor));
            for nb in nbs {
                if let std::collections::hash_map::Entry::Vacant(slot) = comp.entry(nb) {
                    slot.insert(id);
                    stack.push(nb);
                }
            }
        }
    }
    comp
}

/// Number of undirected connected components.
pub fn num_components(g: &KnowledgeGraph) -> usize {
    connected_components(g).values().copied().max().map(|m| m + 1).unwrap_or(0)
}

/// Histogram of total (in+out) degrees over present entities:
/// `histogram[d] = #entities with degree d` (index capped at `max_degree`).
pub fn degree_histogram(g: &KnowledgeGraph, max_degree: usize) -> Vec<usize> {
    let mut hist = vec![0usize; max_degree + 1];
    for e in g.present_entities() {
        hist[g.degree(e).min(max_degree)] += 1;
    }
    hist
}

/// Count, for every ordered relation pair `(a, b)`, how many entities have
/// an incident `a`-edge and an incident `b`-edge — the co-occurrence signal
/// relational message passing consumes.
pub fn relation_cooccurrence(g: &KnowledgeGraph) -> HashMap<(RelationId, RelationId), usize> {
    let mut out: HashMap<(RelationId, RelationId), usize> = HashMap::new();
    for e in g.present_entities() {
        let mut rels: Vec<RelationId> =
            g.out_edges(e).iter().chain(g.in_edges(e).iter()).map(|x| x.relation).collect();
        rels.sort_unstable();
        rels.dedup();
        for i in 0..rels.len() {
            for j in 0..rels.len() {
                if i != j {
                    *out.entry((rels[i], rels[j])).or_insert(0) += 1;
                }
            }
        }
    }
    out
}

/// Fraction of triples whose 2-hop enclosing neighbourhood is empty — the
/// statistic that predicts how much the NE module matters (WN18RR-like
/// graphs score high here).
pub fn empty_neighborhood_rate(g: &KnowledgeGraph, hop: usize, sample_every: usize) -> f64 {
    let triples = g.triples();
    if triples.is_empty() {
        return 0.0;
    }
    let mut checked = 0usize;
    let mut empty = 0usize;
    for t in triples.iter().step_by(sample_every.max(1)) {
        checked += 1;
        let du = crate::neighborhood::khop_distances(g, t.head, hop, None);
        let dv = crate::neighborhood::khop_distances(g, t.tail, hop, None);
        // the enclosing subgraph is empty when no third entity is near both
        // endpoints (and no parallel edge connects them)
        let has_common =
            du.keys().filter(|e| dv.contains_key(e)).any(|e| *e != t.head && *e != t.tail);
        let parallel = g
            .out_edges(t.head)
            .iter()
            .any(|x| x.neighbor == t.tail && g.triple(x.triple_idx) != *t)
            || g.out_edges(t.tail).iter().any(|x| x.neighbor == t.head);
        if !has_common && !parallel {
            empty += 1;
        }
    }
    empty as f64 / checked as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triple::Triple;

    fn two_islands() -> KnowledgeGraph {
        KnowledgeGraph::from_triples(vec![
            Triple::new(0u32, 0u32, 1u32),
            Triple::new(1u32, 0u32, 2u32),
            Triple::new(10u32, 1u32, 11u32),
        ])
    }

    #[test]
    fn components_are_separated() {
        let g = two_islands();
        let comp = connected_components(&g);
        assert_eq!(num_components(&g), 2);
        assert_eq!(comp[&EntityId(0)], comp[&EntityId(2)]);
        assert_ne!(comp[&EntityId(0)], comp[&EntityId(10)]);
    }

    #[test]
    fn empty_graph_has_zero_components() {
        assert_eq!(num_components(&KnowledgeGraph::from_triples(vec![])), 0);
    }

    #[test]
    fn degree_histogram_counts() {
        let g = two_islands();
        let hist = degree_histogram(&g, 5);
        // degrees: e0=1, e1=2, e2=1, e10=1, e11=1
        assert_eq!(hist[1], 4);
        assert_eq!(hist[2], 1);
        assert_eq!(hist.iter().sum::<usize>(), 5);
    }

    #[test]
    fn degree_histogram_caps_at_max() {
        let triples: Vec<Triple> = (1..10u32).map(|i| Triple::new(0u32, 0u32, i)).collect();
        let g = KnowledgeGraph::from_triples(triples);
        let hist = degree_histogram(&g, 3);
        assert_eq!(hist[3], 1, "hub entity degree capped into the last bucket");
    }

    #[test]
    fn cooccurrence_is_symmetric_and_counts_shared_entities() {
        let g = KnowledgeGraph::from_triples(vec![
            Triple::new(0u32, 0u32, 1u32),
            Triple::new(1u32, 1u32, 2u32),
        ]);
        let co = relation_cooccurrence(&g);
        // entity 1 touches r0 and r1
        assert_eq!(co[&(RelationId(0), RelationId(1))], 1);
        assert_eq!(co[&(RelationId(1), RelationId(0))], 1);
        assert!(!co.contains_key(&(RelationId(0), RelationId(0))));
    }

    #[test]
    fn empty_rate_detects_sparse_graphs() {
        // a path graph: every edge's endpoints share no common neighbour
        let path =
            KnowledgeGraph::from_triples((0..20u32).map(|i| Triple::new(i, 0u32, i + 1)).collect());
        // a triangle fan: every edge is in a triangle
        let mut tri = Vec::new();
        for i in 0..10u32 {
            let (a, b, c) = (3 * i, 3 * i + 1, 3 * i + 2);
            tri.push(Triple::new(a, 0u32, b));
            tri.push(Triple::new(b, 0u32, c));
            tri.push(Triple::new(a, 1u32, c));
        }
        let dense = KnowledgeGraph::from_triples(tri);
        let sparse_rate = empty_neighborhood_rate(&path, 1, 1);
        let dense_rate = empty_neighborhood_rate(&dense, 1, 1);
        assert!(sparse_rate > 0.8, "path rate {sparse_rate}");
        assert!(dense_rate < 0.1, "triangle rate {dense_rate}");
    }
}
