//! String interning and bidirectional vocabularies.
//!
//! Datasets name entities and relations with strings; every other crate works
//! with dense ids. [`Interner`] provides the classic two-way mapping, and
//! [`Vocab`] bundles one interner per id space.

use crate::error::KgError;
use crate::ids::{EntityId, RelationId};
use std::collections::HashMap;

/// A dense two-way `String <-> u32` mapping.
///
/// Ids are handed out contiguously from zero in insertion order, so an
/// interner with `n` entries covers exactly the ids `0..n` — which is what
/// lets embedding matrices be indexed directly by id.
#[derive(Clone, Debug, Default)]
pub struct Interner {
    names: Vec<String>,
    index: HashMap<String, u32>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `name`, returning its id (existing or freshly assigned).
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), id);
        id
    }

    /// Look up an existing name without inserting.
    pub fn get(&self, name: &str) -> Option<u32> {
        self.index.get(name).copied()
    }

    /// The name for `id`, if assigned.
    pub fn name(&self, id: u32) -> Option<&str> {
        self.names.get(id as usize).map(String::as_str)
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.names.iter().enumerate().map(|(i, n)| (i as u32, n.as_str()))
    }
}

/// Entity and relation vocabularies for one knowledge graph (or one family of
/// graphs sharing an id space, as the inductive benchmarks do for relations).
#[derive(Clone, Debug, Default)]
pub struct Vocab {
    /// Entity name space.
    pub entities: Interner,
    /// Relation name space.
    pub relations: Interner,
}

impl Vocab {
    /// An empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern an entity name.
    pub fn entity(&mut self, name: &str) -> EntityId {
        EntityId(self.entities.intern(name))
    }

    /// Intern a relation name.
    pub fn relation(&mut self, name: &str) -> RelationId {
        RelationId(self.relations.intern(name))
    }

    /// Resolve an entity name, erroring if absent.
    pub fn entity_id(&self, name: &str) -> Result<EntityId, KgError> {
        self.entities.get(name).map(EntityId).ok_or_else(|| KgError::UnknownName(name.to_owned()))
    }

    /// Resolve a relation name, erroring if absent.
    pub fn relation_id(&self, name: &str) -> Result<RelationId, KgError> {
        self.relations
            .get(name)
            .map(RelationId)
            .ok_or_else(|| KgError::UnknownName(name.to_owned()))
    }

    /// The name of an entity id, erroring if out of range.
    pub fn entity_name(&self, id: EntityId) -> Result<&str, KgError> {
        self.entities.name(id.0).ok_or(KgError::UnknownEntity(id.0))
    }

    /// The name of a relation id, erroring if out of range.
    pub fn relation_name(&self, id: RelationId) -> Result<&str, KgError> {
        self.relations.name(id.0).ok_or(KgError::UnknownRelation(id.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("alpha");
        let b = i.intern("beta");
        assert_ne!(a, b);
        assert_eq!(i.intern("alpha"), a);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn ids_are_dense_in_insertion_order() {
        let mut i = Interner::new();
        for (k, name) in ["x", "y", "z"].iter().enumerate() {
            assert_eq!(i.intern(name), k as u32);
        }
        assert_eq!(i.name(1), Some("y"));
        assert_eq!(i.get("z"), Some(2));
        assert_eq!(i.get("w"), None);
        assert_eq!(i.name(3), None);
    }

    #[test]
    fn iter_yields_in_id_order() {
        let mut i = Interner::new();
        i.intern("a");
        i.intern("b");
        let v: Vec<_> = i.iter().collect();
        assert_eq!(v, vec![(0, "a"), (1, "b")]);
    }

    #[test]
    fn vocab_separates_spaces() {
        let mut v = Vocab::new();
        let e = v.entity("thing");
        let r = v.relation("thing");
        assert_eq!(e, EntityId(0));
        assert_eq!(r, RelationId(0));
        assert_eq!(v.entity_name(e).unwrap(), "thing");
        assert_eq!(v.relation_name(r).unwrap(), "thing");
    }

    #[test]
    fn vocab_lookup_errors() {
        let v = Vocab::new();
        assert!(v.entity_id("missing").is_err());
        assert!(v.relation_id("missing").is_err());
        assert!(v.entity_name(EntityId(0)).is_err());
        assert!(v.relation_name(RelationId(0)).is_err());
    }
}
