//! RDF-style triples `(head, relation, tail)`.

use crate::ids::{EntityId, RelationId};
use std::fmt;

/// A single relational fact: directed edge `head --relation--> tail`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Triple {
    /// Subject entity.
    pub head: EntityId,
    /// Predicate relation.
    pub relation: RelationId,
    /// Object entity.
    pub tail: EntityId,
}

impl Triple {
    /// Construct a triple from raw ids.
    #[inline]
    pub fn new(
        head: impl Into<EntityId>,
        relation: impl Into<RelationId>,
        tail: impl Into<EntityId>,
    ) -> Self {
        Triple { head: head.into(), relation: relation.into(), tail: tail.into() }
    }

    /// The triple with head and tail swapped (the inverse fact, same label).
    #[inline]
    pub fn reversed(self) -> Self {
        Triple { head: self.tail, relation: self.relation, tail: self.head }
    }

    /// `true` when head and tail coincide.
    #[inline]
    pub fn is_self_loop(self) -> bool {
        self.head == self.tail
    }

    /// Replace the head entity.
    #[inline]
    pub fn with_head(self, head: EntityId) -> Self {
        Triple { head, ..self }
    }

    /// Replace the tail entity.
    #[inline]
    pub fn with_tail(self, tail: EntityId) -> Self {
        Triple { tail, ..self }
    }

    /// Replace the relation.
    #[inline]
    pub fn with_relation(self, relation: RelationId) -> Self {
        Triple { relation, ..self }
    }

    /// Both endpoint entities, head first.
    #[inline]
    pub fn endpoints(self) -> [EntityId; 2] {
        [self.head, self.tail]
    }
}

impl fmt::Display for Triple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.head, self.relation, self.tail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reversed_swaps_endpoints() {
        let t = Triple::new(1u32, 2u32, 3u32);
        let r = t.reversed();
        assert_eq!(r.head, EntityId(3));
        assert_eq!(r.tail, EntityId(1));
        assert_eq!(r.relation, RelationId(2));
        assert_eq!(r.reversed(), t);
    }

    #[test]
    fn self_loop_detection() {
        assert!(Triple::new(5u32, 0u32, 5u32).is_self_loop());
        assert!(!Triple::new(5u32, 0u32, 6u32).is_self_loop());
    }

    #[test]
    fn with_replacements() {
        let t = Triple::new(1u32, 2u32, 3u32);
        assert_eq!(t.with_head(EntityId(9)).head, EntityId(9));
        assert_eq!(t.with_tail(EntityId(9)).tail, EntityId(9));
        assert_eq!(t.with_relation(RelationId(9)).relation, RelationId(9));
        // original untouched (Copy semantics)
        assert_eq!(t.head, EntityId(1));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Triple::new(0u32, 1u32, 2u32).to_string(), "(e0, r1, e2)");
    }
}
