//! Knowledge-graph substrate for the RMPI reproduction.
//!
//! This crate provides the storage and traversal layer every other crate in
//! the workspace builds on:
//!
//! * compact newtype identifiers for entities and relations ([`EntityId`],
//!   [`RelationId`]),
//! * a string interner and bidirectional vocabulary ([`Vocab`]),
//! * an indexed directed multigraph of triples ([`KnowledgeGraph`]) with
//!   out/in adjacency, relation-filtered edge access and O(1) membership,
//! * breadth-first K-hop neighbourhood computation ([`khop_distances`],
//!   [`khop_neighborhood`]),
//! * a line-oriented TSV codec for persisting graphs ([`io`]),
//! * summary statistics matching the paper's Table I columns ([`GraphStats`]),
//! * deterministic splitting utilities ([`split`]).
//!
//! The design goal is the classic database trade-off: build the indexes once
//! (`KnowledgeGraph::from_triples` is O(|T|)), then answer the traversal
//! queries that subgraph extraction hammers on (out-edges, in-edges,
//! contains) without hashing entire triples on the hot path.
//!
//! ```
//! use rmpi_kg::{khop_distances, KnowledgeGraph, Triple, EntityId};
//!
//! let g = KnowledgeGraph::from_triples(vec![
//!     Triple::new(0u32, 0u32, 1u32), // e0 --r0--> e1
//!     Triple::new(1u32, 1u32, 2u32), // e1 --r1--> e2
//! ]);
//! assert!(g.contains(&Triple::new(0u32, 0u32, 1u32)));
//! assert_eq!(g.out_edges(EntityId(1)).len(), 1);
//! let reach = khop_distances(&g, EntityId(0), 2, None);
//! assert_eq!(reach[&EntityId(2)], 2); // two undirected hops away
//! ```

pub mod access;
pub mod analysis;
pub mod csr;
pub mod error;
pub mod graph;
pub mod ids;
pub mod interner;
pub mod io;
pub mod neighborhood;
pub mod split;
pub mod stats;
pub mod triple;

pub use access::GraphAccess;
pub use csr::CsrGraph;
pub use error::KgError;
pub use graph::{Edge, KnowledgeGraph};
pub use ids::{EntityId, RelationId};
pub use interner::{Interner, Vocab};
pub use neighborhood::{khop_distances, khop_neighborhood};
pub use split::{split_triples, TripleSplit};
pub use stats::GraphStats;
pub use triple::Triple;
