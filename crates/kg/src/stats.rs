//! Graph summary statistics (the columns of the paper's Table I).

use crate::graph::KnowledgeGraph;
use std::fmt;

/// `#R / #E / #T` and degree summaries for one graph.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct GraphStats {
    /// Number of distinct relations actually used.
    pub num_relations: usize,
    /// Number of distinct entities with incident edges.
    pub num_entities: usize,
    /// Number of triples.
    pub num_triples: usize,
    /// Mean (in+out) degree over present entities.
    pub avg_degree: f64,
    /// Maximum (in+out) degree.
    pub max_degree: usize,
}

impl GraphStats {
    /// Compute statistics for `g`.
    pub fn of(g: &KnowledgeGraph) -> Self {
        let entities = g.present_entities();
        let num_entities = entities.len();
        let degrees: Vec<usize> = entities.iter().map(|&e| g.degree(e)).collect();
        let max_degree = degrees.iter().copied().max().unwrap_or(0);
        let avg_degree = if num_entities == 0 {
            0.0
        } else {
            degrees.iter().sum::<usize>() as f64 / num_entities as f64
        };
        GraphStats {
            num_relations: g.num_present_relations(),
            num_entities,
            num_triples: g.num_triples(),
            avg_degree,
            max_degree,
        }
    }
}

impl fmt::Display for GraphStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#R={} #E={} #T={} avg_deg={:.2} max_deg={}",
            self.num_relations,
            self.num_entities,
            self.num_triples,
            self.avg_degree,
            self.max_degree
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triple::Triple;

    #[test]
    fn counts_match_toy_graph() {
        let g = KnowledgeGraph::from_triples(vec![
            Triple::new(0u32, 0u32, 1u32),
            Triple::new(1u32, 1u32, 2u32),
            Triple::new(0u32, 1u32, 2u32),
        ]);
        let s = GraphStats::of(&g);
        assert_eq!(s.num_relations, 2);
        assert_eq!(s.num_entities, 3);
        assert_eq!(s.num_triples, 3);
        // degrees: e0=2, e1=2, e2=2 -> avg 2, max 2
        assert!((s.avg_degree - 2.0).abs() < 1e-12);
        assert_eq!(s.max_degree, 2);
    }

    #[test]
    fn empty_graph_stats() {
        let s = GraphStats::of(&KnowledgeGraph::from_triples(vec![]));
        assert_eq!(s.num_triples, 0);
        assert_eq!(s.avg_degree, 0.0);
        assert_eq!(s.max_degree, 0);
    }

    #[test]
    fn display_contains_counts() {
        let g = KnowledgeGraph::from_triples(vec![Triple::new(0u32, 0u32, 1u32)]);
        let text = GraphStats::of(&g).to_string();
        assert!(text.contains("#R=1"));
        assert!(text.contains("#T=1"));
    }
}
