//! Indexed directed multigraph over triples.
//!
//! [`KnowledgeGraph`] is the workhorse structure: an immutable snapshot of a
//! triple set with the adjacency indexes subgraph extraction needs. Built
//! once in O(|T|), it answers out-edge / in-edge scans in O(degree) and
//! membership in O(1).

use crate::ids::{EntityId, RelationId};
use crate::triple::Triple;
use std::collections::HashSet;

/// One directed, labelled edge incident to an entity, carrying the index of
/// its triple in [`KnowledgeGraph::triples`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Edge {
    /// The entity at the far end of the edge.
    pub neighbor: EntityId,
    /// The relation labelling the edge.
    pub relation: RelationId,
    /// Index into the graph's triple list.
    pub triple_idx: usize,
}

/// Immutable indexed snapshot of a set of triples.
///
/// Entity ids and relation ids need not be dense: the graph sizes its index
/// arrays to the maximum id seen (`+1`). `num_entities`/`num_relations`
/// report that capacity; [`KnowledgeGraph::present_entities`] and
/// [`KnowledgeGraph::present_relations`] report what actually occurs. This
/// matters for inductive benchmarks, where a testing graph uses a relation id
/// space shared with (and sparser than) its training graph.
#[derive(Clone, Debug, Default)]
pub struct KnowledgeGraph {
    triples: Vec<Triple>,
    out: Vec<Vec<Edge>>,
    inc: Vec<Vec<Edge>>,
    members: HashSet<Triple>,
    num_relations: usize,
    relation_counts: Vec<usize>,
}

impl KnowledgeGraph {
    /// Build the indexed graph from a triple list. Duplicate triples are kept
    /// in the edge lists (multigraph) but counted once for membership.
    pub fn from_triples(triples: Vec<Triple>) -> Self {
        let max_e = triples.iter().map(|t| t.head.0.max(t.tail.0) as usize + 1).max().unwrap_or(0);
        let max_r = triples.iter().map(|t| t.relation.0 as usize + 1).max().unwrap_or(0);
        let mut out = vec![Vec::new(); max_e];
        let mut inc = vec![Vec::new(); max_e];
        let mut members = HashSet::with_capacity(triples.len());
        let mut relation_counts = vec![0usize; max_r];
        for (idx, t) in triples.iter().enumerate() {
            out[t.head.index()].push(Edge {
                neighbor: t.tail,
                relation: t.relation,
                triple_idx: idx,
            });
            inc[t.tail.index()].push(Edge {
                neighbor: t.head,
                relation: t.relation,
                triple_idx: idx,
            });
            members.insert(*t);
            relation_counts[t.relation.index()] += 1;
        }
        KnowledgeGraph { triples, out, inc, members, num_relations: max_r, relation_counts }
    }

    /// All triples, in insertion order.
    pub fn triples(&self) -> &[Triple] {
        &self.triples
    }

    /// The triple at `idx`.
    pub fn triple(&self, idx: usize) -> Triple {
        self.triples[idx]
    }

    /// Number of triples (including duplicates, if any were supplied).
    pub fn num_triples(&self) -> usize {
        self.triples.len()
    }

    /// Capacity of the entity id space (max id + 1).
    pub fn num_entities(&self) -> usize {
        self.out.len()
    }

    /// Capacity of the relation id space (max id + 1).
    pub fn num_relations(&self) -> usize {
        self.num_relations
    }

    /// Outgoing edges of `e` (edges where `e` is the head).
    pub fn out_edges(&self, e: EntityId) -> &[Edge] {
        self.out.get(e.index()).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Incoming edges of `e` (edges where `e` is the tail).
    pub fn in_edges(&self, e: EntityId) -> &[Edge] {
        self.inc.get(e.index()).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Out-degree plus in-degree of `e`.
    pub fn degree(&self, e: EntityId) -> usize {
        self.out_edges(e).len() + self.in_edges(e).len()
    }

    /// O(1) membership test.
    pub fn contains(&self, t: &Triple) -> bool {
        self.members.contains(t)
    }

    /// How many triples use `r`.
    pub fn relation_count(&self, r: RelationId) -> usize {
        self.relation_counts.get(r.index()).copied().unwrap_or(0)
    }

    /// Entities with at least one incident edge, ascending.
    pub fn present_entities(&self) -> Vec<EntityId> {
        (0..self.num_entities() as u32).map(EntityId).filter(|&e| self.degree(e) > 0).collect()
    }

    /// Relations used by at least one triple, ascending.
    pub fn present_relations(&self) -> Vec<RelationId> {
        (0..self.num_relations as u32)
            .map(RelationId)
            .filter(|&r| self.relation_count(r) > 0)
            .collect()
    }

    /// Number of distinct entities with at least one incident edge.
    pub fn num_present_entities(&self) -> usize {
        (0..self.num_entities() as u32).filter(|&e| self.degree(EntityId(e)) > 0).count()
    }

    /// Number of distinct relations used by at least one triple.
    pub fn num_present_relations(&self) -> usize {
        self.relation_counts.iter().filter(|&&c| c > 0).count()
    }

    /// A new graph holding this graph's triples plus `extra`.
    pub fn with_extra_triples(&self, extra: &[Triple]) -> KnowledgeGraph {
        let mut all = self.triples.clone();
        all.extend_from_slice(extra);
        KnowledgeGraph::from_triples(all)
    }

    /// A new graph with the triples at the given indices removed.
    pub fn without_triples(&self, remove: &HashSet<usize>) -> KnowledgeGraph {
        let kept = self
            .triples
            .iter()
            .enumerate()
            .filter(|(i, _)| !remove.contains(i))
            .map(|(_, t)| *t)
            .collect();
        KnowledgeGraph::from_triples(kept)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> KnowledgeGraph {
        // 0 --r0--> 1 --r1--> 2,  2 --r0--> 0
        KnowledgeGraph::from_triples(vec![
            Triple::new(0u32, 0u32, 1u32),
            Triple::new(1u32, 1u32, 2u32),
            Triple::new(2u32, 0u32, 0u32),
        ])
    }

    #[test]
    fn sizes() {
        let g = toy();
        assert_eq!(g.num_triples(), 3);
        assert_eq!(g.num_entities(), 3);
        assert_eq!(g.num_relations(), 2);
        assert_eq!(g.num_present_entities(), 3);
        assert_eq!(g.num_present_relations(), 2);
    }

    #[test]
    fn adjacency() {
        let g = toy();
        let out0 = g.out_edges(EntityId(0));
        assert_eq!(out0.len(), 1);
        assert_eq!(out0[0].neighbor, EntityId(1));
        assert_eq!(out0[0].relation, RelationId(0));
        let in0 = g.in_edges(EntityId(0));
        assert_eq!(in0.len(), 1);
        assert_eq!(in0[0].neighbor, EntityId(2));
        assert_eq!(g.degree(EntityId(1)), 2);
    }

    #[test]
    fn membership_and_counts() {
        let g = toy();
        assert!(g.contains(&Triple::new(0u32, 0u32, 1u32)));
        assert!(!g.contains(&Triple::new(1u32, 0u32, 0u32)));
        assert_eq!(g.relation_count(RelationId(0)), 2);
        assert_eq!(g.relation_count(RelationId(1)), 1);
        assert_eq!(g.relation_count(RelationId(5)), 0);
    }

    #[test]
    fn out_of_range_queries_are_empty() {
        let g = toy();
        assert!(g.out_edges(EntityId(99)).is_empty());
        assert!(g.in_edges(EntityId(99)).is_empty());
        assert_eq!(g.degree(EntityId(99)), 0);
    }

    #[test]
    fn empty_graph() {
        let g = KnowledgeGraph::from_triples(vec![]);
        assert_eq!(g.num_triples(), 0);
        assert_eq!(g.num_entities(), 0);
        assert_eq!(g.num_relations(), 0);
        assert!(g.present_entities().is_empty());
    }

    #[test]
    fn sparse_ids_leave_holes() {
        let g = KnowledgeGraph::from_triples(vec![Triple::new(10u32, 5u32, 12u32)]);
        assert_eq!(g.num_entities(), 13);
        assert_eq!(g.num_relations(), 6);
        assert_eq!(g.num_present_entities(), 2);
        assert_eq!(g.num_present_relations(), 1);
        assert_eq!(g.present_relations(), vec![RelationId(5)]);
    }

    #[test]
    fn with_extra_and_without() {
        let g = toy();
        let g2 = g.with_extra_triples(&[Triple::new(0u32, 1u32, 2u32)]);
        assert_eq!(g2.num_triples(), 4);
        assert!(g2.contains(&Triple::new(0u32, 1u32, 2u32)));
        let mut rm = HashSet::new();
        rm.insert(0usize);
        let g3 = g.without_triples(&rm);
        assert_eq!(g3.num_triples(), 2);
        assert!(!g3.contains(&Triple::new(0u32, 0u32, 1u32)));
    }

    #[test]
    fn multigraph_keeps_duplicates_in_adjacency() {
        let t = Triple::new(0u32, 0u32, 1u32);
        let g = KnowledgeGraph::from_triples(vec![t, t]);
        assert_eq!(g.num_triples(), 2);
        assert_eq!(g.out_edges(EntityId(0)).len(), 2);
        assert_eq!(g.relation_count(RelationId(0)), 2);
    }
}
