//! Compact newtype identifiers for graph elements.
//!
//! Entities and relations are referred to by dense `u32` indices everywhere
//! in the workspace; the [`crate::Vocab`] maps them back to names. Newtypes
//! keep the two id spaces from being confused at compile time.

use std::fmt;

/// Identifier of an entity (graph node) within one [`crate::Vocab`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct EntityId(pub u32);

/// Identifier of a relation (edge label) within one [`crate::Vocab`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct RelationId(pub u32);

impl EntityId {
    /// The id as a usable array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl RelationId {
    /// The id as a usable array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EntityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for RelationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<u32> for EntityId {
    fn from(v: u32) -> Self {
        EntityId(v)
    }
}

impl From<u32> for RelationId {
    fn from(v: u32) -> Self {
        RelationId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(EntityId(3).to_string(), "e3");
        assert_eq!(RelationId(7).to_string(), "r7");
    }

    #[test]
    fn index_roundtrip() {
        assert_eq!(EntityId(42).index(), 42);
        assert_eq!(RelationId::from(9).index(), 9);
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(EntityId(1) < EntityId(2));
        assert!(RelationId(0) < RelationId(10));
    }
}
