//! Property-based tests for the KG substrate.

use proptest::prelude::*;
use rmpi_kg::{
    io, khop_distances, split_triples, EntityId, Interner, KnowledgeGraph, Triple, Vocab,
};
use std::collections::HashSet;
use std::io::Cursor;

fn arb_triples(max_e: u32, max_r: u32, max_n: usize) -> impl Strategy<Value = Vec<Triple>> {
    prop::collection::vec((0..max_e, 0..max_r, 0..max_e), 0..max_n)
        .prop_map(|v| v.into_iter().map(|(h, r, t)| Triple::new(h, r, t)).collect())
}

proptest! {
    #[test]
    fn degree_sum_equals_twice_triples(triples in arb_triples(40, 5, 120)) {
        let g = KnowledgeGraph::from_triples(triples.clone());
        let total: usize = (0..g.num_entities() as u32).map(|e| g.degree(EntityId(e))).sum();
        prop_assert_eq!(total, 2 * triples.len());
    }

    #[test]
    fn membership_matches_input(triples in arb_triples(30, 4, 80)) {
        let set: HashSet<Triple> = triples.iter().copied().collect();
        let g = KnowledgeGraph::from_triples(triples);
        for t in &set {
            prop_assert!(g.contains(t));
        }
        // a triple with an out-of-range relation can never be contained
        prop_assert!(!g.contains(&Triple::new(0u32, 99u32, 1u32)));
    }

    #[test]
    fn khop_is_monotone_in_k(triples in arb_triples(30, 4, 80), start in 0u32..30, k in 0usize..4) {
        let g = KnowledgeGraph::from_triples(triples);
        let small = khop_distances(&g, EntityId(start), k, None);
        let large = khop_distances(&g, EntityId(start), k + 1, None);
        for (e, d) in &small {
            prop_assert_eq!(large.get(e), Some(d), "distance changed when k grew");
        }
        prop_assert!(large.len() >= small.len());
    }

    #[test]
    fn khop_distances_are_bounded(triples in arb_triples(30, 4, 80), start in 0u32..30, k in 0usize..4) {
        let g = KnowledgeGraph::from_triples(triples);
        for (_, d) in khop_distances(&g, EntityId(start), k, None) {
            prop_assert!(d <= k);
        }
    }

    #[test]
    fn split_partitions_input(triples in arb_triples(50, 6, 200), seed in 0u64..1000) {
        let s = split_triples(&triples, 0.1, 0.1, seed);
        prop_assert_eq!(s.train.len() + s.valid.len() + s.test.len(), triples.len());
        let mut merged: Vec<Triple> = s.train.iter().chain(&s.valid).chain(&s.test).copied().collect();
        merged.sort();
        let mut orig = triples.clone();
        orig.sort();
        prop_assert_eq!(merged, orig);
    }

    #[test]
    fn interner_roundtrips(names in prop::collection::vec("[a-z]{1,8}", 1..30)) {
        let mut i = Interner::new();
        let ids: Vec<u32> = names.iter().map(|n| i.intern(n)).collect();
        for (name, id) in names.iter().zip(&ids) {
            prop_assert_eq!(i.get(name), Some(*id));
            prop_assert_eq!(i.name(*id), Some(name.as_str()));
        }
        prop_assert!(i.len() <= names.len());
    }

    #[test]
    fn tsv_roundtrips(pairs in prop::collection::vec(("[a-z]{1,6}", "[a-z]{1,6}", "[a-z]{1,6}"), 1..40)) {
        let mut vocab = Vocab::new();
        let triples: Vec<Triple> = pairs
            .iter()
            .map(|(h, r, t)| {
                let head = vocab.entity(h);
                let relation = vocab.relation(r);
                let tail = vocab.entity(t);
                Triple { head, relation, tail }
            })
            .collect();
        let mut buf = Vec::new();
        io::write_triples(&mut buf, &triples, &vocab).unwrap();
        let mut vocab2 = Vocab::new();
        let back = io::read_triples(Cursor::new(&buf), &mut vocab2).unwrap();
        // ids may differ but names must agree position-wise
        prop_assert_eq!(triples.len(), back.len());
        for (a, b) in triples.iter().zip(&back) {
            prop_assert_eq!(vocab.entity_name(a.head).unwrap(), vocab2.entity_name(b.head).unwrap());
            prop_assert_eq!(vocab.relation_name(a.relation).unwrap(), vocab2.relation_name(b.relation).unwrap());
            prop_assert_eq!(vocab.entity_name(a.tail).unwrap(), vocab2.entity_name(b.tail).unwrap());
        }
    }
}

proptest! {
    /// CSR and Vec-of-Vecs storage answer every query identically.
    #[test]
    fn csr_equivalent_to_vec_graph(triples in arb_triples(30, 5, 100)) {
        use rmpi_kg::CsrGraph;
        let g = KnowledgeGraph::from_triples(triples.clone());
        let c = CsrGraph::from_triples(triples.clone());
        prop_assert_eq!(g.num_triples(), c.num_triples());
        prop_assert_eq!(g.num_entities(), c.num_entities());
        prop_assert_eq!(g.num_relations(), c.num_relations());
        for e in 0..g.num_entities() as u32 {
            let e = EntityId(e);
            let key = |x: &rmpi_kg::Edge| (x.neighbor, x.relation, x.triple_idx);
            let mut a: Vec<_> = g.out_edges(e).to_vec();
            let mut b: Vec<_> = c.out_edges(e).to_vec();
            a.sort_by_key(key);
            b.sort_by_key(key);
            prop_assert_eq!(a, b);
            prop_assert_eq!(g.degree(e), c.degree(e));
        }
        for t in &triples {
            prop_assert!(c.contains(t));
        }
    }
}
