//! Property-style fuzz of the wire protocol: random printable garbage,
//! random binary bytes and overlong lines thrown at a live server.
//!
//! The invariant under test is the server's whole hostile-input posture:
//! every non-blank request line — whatever its bytes — is answered with
//! exactly one single-line `OK ...`/`ERR ...` response (or, for overlong
//! lines, `ERR request too long` followed by a close), and the server keeps
//! serving afterwards. Nothing a peer sends may panic a worker, wedge a
//! connection or produce an unframed response.

use proptest::prelude::*;
use rmpi_core::{RmpiConfig, RmpiModel};
use rmpi_kg::{KnowledgeGraph, Triple};
use rmpi_serve::{parse_request, serve, Engine, EngineConfig, ServerConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

fn test_engine() -> Arc<Engine> {
    let graph = KnowledgeGraph::from_triples(vec![
        Triple::new(0u32, 0u32, 1u32),
        Triple::new(1u32, 1u32, 2u32),
        Triple::new(2u32, 2u32, 0u32),
    ]);
    let model = RmpiModel::new(RmpiConfig { dim: 8, ..RmpiConfig::base() }, 4, 0);
    Arc::new(Engine::with_registry(
        model,
        graph,
        EngineConfig { seed: 3, cache_capacity: 32, threads: 1 },
        Arc::new(rmpi_obs::MetricsRegistry::new()),
    ))
}

/// One long-lived fuzz server per shape, shared by all cases (proptest
/// bodies are plain fns, so the address lives in a `OnceLock`; the handle is
/// forgotten — its threads serve until the test process exits).
fn fuzz_server(cell: &'static OnceLock<SocketAddr>, cfg: ServerConfig) -> SocketAddr {
    *cell.get_or_init(|| {
        let server = serve(test_engine(), cfg).expect("fuzz server");
        let addr = server.addr();
        std::mem::forget(server);
        addr
    })
}

static GARBAGE_SERVER: OnceLock<SocketAddr> = OnceLock::new();
static TINY_LINE_SERVER: OnceLock<SocketAddr> = OnceLock::new();
static PIPE_SERVER: OnceLock<SocketAddr> = OnceLock::new();

fn garbage_server() -> SocketAddr {
    fuzz_server(&GARBAGE_SERVER, ServerConfig { workers: 2, ..ServerConfig::default() })
}

fn tiny_line_server() -> SocketAddr {
    fuzz_server(
        &TINY_LINE_SERVER,
        ServerConfig { workers: 2, max_line_len: 64, ..ServerConfig::default() },
    )
}

/// Server for the v1/v2 interleaving property: enough workers for two
/// persistent connections per case plus churn, and a short batching window
/// so tagged requests route through the micro-batcher while they interleave
/// with untagged ones.
fn pipe_server() -> SocketAddr {
    fuzz_server(
        &PIPE_SERVER,
        ServerConfig {
            workers: 4,
            batch_window: Duration::from_millis(1),
            ..ServerConfig::default()
        },
    )
}

/// Send raw bytes (newline appended) followed by `PING`, and return every
/// response line received. The trailing `PING` both proves the server is
/// still alive on the *same* connection and unblocks the read when the fuzz
/// line was blank (blank lines are skipped without an answer).
fn exchange(addr: SocketAddr, payload: &[u8]) -> Vec<String> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
    stream.write_all(payload).expect("send payload");
    stream.write_all(b"\nPING\n").expect("send ping");
    let mut reader = BufReader::new(stream);
    let mut responses = Vec::new();
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                assert!(line.ends_with('\n'), "unframed response {line:?}");
                responses.push(line.trim_end().to_string());
                if line.starts_with("OK pong") {
                    break; // the PING answer is always last
                }
            }
            Err(e) => panic!("read failed before the PING answer: {e}"),
        }
    }
    responses
}

/// Whether the server will consider `bytes` (pre-newline) a blank line:
/// trailing `\r` stripped, lossy UTF-8, then whitespace-only.
fn is_blank(bytes: &[u8]) -> bool {
    let mut bytes = bytes.to_vec();
    while bytes.last() == Some(&b'\r') {
        bytes.pop();
    }
    String::from_utf8_lossy(&bytes).trim().is_empty()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn parse_request_never_panics_on_printable_garbage(line in "[ -~]{0,200}") {
        // pure-parser fuzz: any outcome is fine, panicking is not
        let _ = parse_request(&line);
    }

    #[test]
    fn printable_garbage_gets_one_framed_answer_and_the_server_survives(line in "[ -~]{0,120}") {
        let responses = exchange(garbage_server(), line.as_bytes());
        let expected = if is_blank(line.as_bytes()) { 1 } else { 2 };
        prop_assert_eq!(responses.len(), expected, "line {:?} -> {:?}", line, &responses);
        for r in &responses {
            prop_assert!(
                r.starts_with("OK") || r.starts_with("ERR "),
                "unprefixed response {:?} to {:?}", r, line
            );
        }
        prop_assert_eq!(responses.last().map(String::as_str), Some("OK pong"));
    }

    #[test]
    fn binary_garbage_gets_one_framed_answer_and_the_server_survives(
        bytes in prop::collection::vec(0u8..255, 0..160),
    ) {
        // a newline inside the payload would legitimately split it into two
        // requests; everything else (nulls, invalid UTF-8, control bytes)
        // must be handled as one line
        let mut bytes = bytes;
        bytes.retain(|&b| b != b'\n');
        let responses = exchange(garbage_server(), &bytes);
        let expected = if is_blank(&bytes) { 1 } else { 2 };
        prop_assert_eq!(responses.len(), expected, "bytes {:?} -> {:?}", &bytes, &responses);
        for r in &responses {
            prop_assert!(
                r.starts_with("OK") || r.starts_with("ERR "),
                "unprefixed response {:?} to {:?}", r, &bytes
            );
        }
        prop_assert_eq!(responses.last().map(String::as_str), Some("OK pong"));
    }

    #[test]
    fn interleaved_v1_and_v2_connections_get_correctly_framed_correctly_tagged_answers(
        ops in prop::collection::vec((any::<bool>(), 0u32..3, 0u32..3, 0u32..3), 1..12),
        tag_base in any::<u32>(),
    ) {
        let addr = pipe_server();
        let v1 = TcpStream::connect(addr).expect("connect v1");
        let v2 = TcpStream::connect(addr).expect("connect v2");
        for s in [&v1, &v2] {
            s.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
        }
        let mut v1_reader = BufReader::new(v1.try_clone().expect("clone v1"));
        let mut v2_reader = BufReader::new(v2.try_clone().expect("clone v2"));
        let mut v1 = &v1;
        let mut v2 = &v2;

        v2.write_all(b"PROTO 2\n").expect("hello");
        let mut line = String::new();
        v2_reader.read_line(&mut line).expect("hello reply");
        prop_assert_eq!(line.trim_end(), "OK proto=2");

        // every request goes down BOTH connections, writes interleaved and
        // pipelined; the property is that the payload a request gets must
        // not depend on the transport generation, the tag value, or what
        // the other connection is doing
        let mut tags = Vec::with_capacity(ops.len());
        for (i, &(ping, h, r, t)) in ops.iter().enumerate() {
            let req = if ping { "PING".to_string() } else { format!("SCORE {h} {r} {t}") };
            let tag = u64::from(tag_base) + (i as u64) * 7 + 1;
            v2.write_all(format!("ID {tag} {req}\n").as_bytes()).expect("v2 send");
            v1.write_all(format!("{req}\n").as_bytes()).expect("v1 send");
            tags.push(tag);
        }

        // v1 answers arrive untagged, in order
        let mut v1_payloads = Vec::with_capacity(ops.len());
        for i in 0..ops.len() {
            line.clear();
            v1_reader.read_line(&mut line).expect("v1 reply");
            prop_assert!(line.ends_with('\n'), "unframed v1 response {:?}", &line);
            let payload = line.trim_end();
            prop_assert!(
                payload.starts_with("OK") || payload.starts_with("ERR "),
                "unprefixed v1 response {:?} to op {}", payload, i
            );
            prop_assert!(
                rmpi_serve::parse_tagged(payload).is_err(),
                "v1 response must not carry a tag: {:?}", payload
            );
            v1_payloads.push(payload.to_string());
        }

        // v2 answers arrive tagged, any order, exactly one per tag
        let mut v2_payloads = std::collections::HashMap::new();
        for _ in 0..ops.len() {
            line.clear();
            v2_reader.read_line(&mut line).expect("v2 reply");
            prop_assert!(line.ends_with('\n'), "unframed v2 response {:?}", &line);
            let (tag, rest) =
                rmpi_serve::parse_tagged(line.trim_end()).expect("untagged v2 response");
            prop_assert!(
                v2_payloads.insert(tag, rest.to_string()).is_none(),
                "duplicate answer for tag {}", tag
            );
        }
        for (i, tag) in tags.iter().enumerate() {
            prop_assert_eq!(
                &v2_payloads[tag], &v1_payloads[i],
                "op {} answered differently over v2 (tag {}) than over v1", i, tag
            );
        }
    }

    #[test]
    fn overlong_lines_are_rejected_and_the_connection_closed(extra in 1usize..400) {
        let addr = tiny_line_server();
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
        let line = vec![b'A'; 64 + extra];
        stream.write_all(&line).expect("send");
        stream.write_all(b"\n").expect("send newline");
        let mut reader = BufReader::new(stream);
        let mut response = String::new();
        reader.read_line(&mut response).expect("read rejection");
        prop_assert_eq!(response.trim_end(), "ERR request too long (over 64 bytes)");
        // and the server hangs up: no further bytes arrive
        let mut rest = Vec::new();
        reader.read_to_end(&mut rest).expect("read to close");
        prop_assert!(rest.is_empty(), "bytes after the rejection: {:?}", rest);
        // the server itself keeps serving new connections
        let responses = exchange(addr, b"PING");
        prop_assert_eq!(responses.last().map(String::as_str), Some("OK pong"));
    }
}
