//! Self-healing serving under injected faults: hot reload atomicity,
//! panic-isolated request handling, and byte-offset bundle diagnostics.
//!
//! Every test holds `failpoint::exclusive()` for its whole body — some arm
//! global failpoints and the others drive concurrent scoring that must not
//! observe them.

use rmpi_core::{RmpiConfig, RmpiModel};
use rmpi_kg::{KnowledgeGraph, Triple};
use rmpi_serve::{
    load_bundle_file, save_bundle_file, serve, Engine, EngineConfig, ServerConfig, SCORE_FAILPOINT,
};
use rmpi_testutil::failpoint::{self, Action};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn toy_graph() -> KnowledgeGraph {
    KnowledgeGraph::from_triples(vec![
        Triple::new(0u32, 0u32, 1u32),
        Triple::new(1u32, 1u32, 3u32),
        Triple::new(0u32, 2u32, 2u32),
        Triple::new(2u32, 3u32, 3u32),
        Triple::new(3u32, 4u32, 4u32),
    ])
}

fn model(init_seed: u64) -> RmpiModel {
    RmpiModel::new(RmpiConfig { dim: 8, ne: true, ..RmpiConfig::base() }, 6, init_seed)
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rmpi-serve-fault-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn engine_for_bundle(path: &Path) -> Engine {
    let bundle = load_bundle_file(path).unwrap();
    // a fresh registry per engine: these tests assert exact counter values,
    // and the process-global registry is shared across the whole binary
    Engine::with_registry(
        bundle.model,
        toy_graph(),
        EngineConfig { seed: 9, cache_capacity: 64, threads: 2 },
        Arc::new(rmpi_obs::MetricsRegistry::new()),
    )
}

/// The two probe triples scored as one batch everywhere below: a batch is
/// the unit that must never be torn across a reload.
const PROBES: [Triple; 2] = [
    Triple {
        head: rmpi_kg::EntityId(0),
        relation: rmpi_kg::RelationId(1),
        tail: rmpi_kg::EntityId(2),
    },
    Triple {
        head: rmpi_kg::EntityId(2),
        relation: rmpi_kg::RelationId(3),
        tail: rmpi_kg::EntityId(3),
    },
];

#[test]
fn concurrent_reload_and_score_never_serves_a_torn_model() {
    let _lock = failpoint::exclusive();
    let dir = tmp_dir("torn");
    let (path_a, path_b) = (dir.join("a.bundle"), dir.join("b.bundle"));
    save_bundle_file(&path_a, &model(1), &[]).unwrap();
    save_bundle_file(&path_b, &model(2), &[]).unwrap();

    // ground truth: what a batch scores under each bundle, exclusively
    let expect_a = engine_for_bundle(&path_a).score_batch(&PROBES).unwrap();
    let expect_b = engine_for_bundle(&path_b).score_batch(&PROBES).unwrap();
    assert_ne!(expect_a, expect_b, "the two bundles must be distinguishable");

    let engine = Arc::new(engine_for_bundle(&path_a));
    let stop = AtomicBool::new(false);
    const RELOADS: u64 = 12;

    let observed = std::thread::scope(|scope| {
        let scorer = {
            let engine = Arc::clone(&engine);
            let stop = &stop;
            scope.spawn(move || {
                let mut seen = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    seen.push(engine.score_batch(&PROBES).unwrap());
                }
                seen.push(engine.score_batch(&PROBES).unwrap());
                seen
            })
        };
        for i in 0..RELOADS {
            let path = if i % 2 == 0 { &path_b } else { &path_a };
            engine.reload_from(path).unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        scorer.join().expect("scorer thread must not panic")
    });

    assert!(!observed.is_empty());
    for (i, batch) in observed.iter().enumerate() {
        assert!(
            *batch == expect_a || *batch == expect_b,
            "batch {i} mixed weights across a reload: {batch:?}\n a={expect_a:?}\n b={expect_b:?}"
        );
    }
    assert_eq!(engine.stats().reloads.get(), RELOADS);
    assert_eq!(engine.stats().reload_failures.get(), 0);
    assert!(engine.stats_json().contains(&format!("\"reloads\": {RELOADS}")));
    std::fs::remove_dir_all(&dir).unwrap();
}

fn query(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> String {
    writeln!(stream, "{line}").expect("send");
    let mut response = String::new();
    reader.read_line(&mut response).expect("recv");
    response.trim_end().to_string()
}

#[test]
fn wire_reload_swaps_model_validates_and_counts() {
    let _lock = failpoint::exclusive();
    let dir = tmp_dir("wire-reload");
    let (path_a, path_b) = (dir.join("a.bundle"), dir.join("b.bundle"));
    save_bundle_file(&path_a, &model(1), &[]).unwrap();
    save_bundle_file(&path_b, &model(2), &[]).unwrap();
    // a corrupt bundle: valid header, poisoned parameter section
    let corrupt = dir.join("corrupt.bundle");
    let text = std::fs::read_to_string(&path_b).unwrap();
    let idx = text.find("rmpi-params v1").unwrap();
    std::fs::write(&corrupt, format!("{}{}", &text[..idx], text[idx..].replacen("0.", "NaN ", 1)))
        .unwrap();

    let engine = Arc::new(engine_for_bundle(&path_a));
    let mut server = serve(Arc::clone(&engine), ServerConfig::default()).expect("serve");
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    let before = query(&mut stream, &mut reader, "SCORE 0 1 2 2 3 3");
    assert!(before.starts_with("OK "), "{before}");

    assert_eq!(
        query(&mut stream, &mut reader, &format!("RELOAD {}", path_b.display())),
        "OK reloaded"
    );
    let after = query(&mut stream, &mut reader, "SCORE 0 1 2 2 3 3");
    let offline: Vec<f32> = engine_for_bundle(&path_b).score_batch(&PROBES).unwrap();
    let served: Vec<f32> = after[3..].split(' ').map(|s| s.parse().unwrap()).collect();
    assert_eq!(served, offline, "post-reload wire scores come from the new bundle");
    assert_ne!(after, before);

    // a missing bundle is refused; the swapped-in model keeps serving
    let missing = query(&mut stream, &mut reader, "RELOAD /nonexistent/x.bundle");
    assert!(missing.starts_with("ERR "), "{missing}");
    // a corrupt bundle is refused with a byte-offset diagnostic
    let rejected = query(&mut stream, &mut reader, &format!("RELOAD {}", corrupt.display()));
    assert!(rejected.starts_with("ERR "), "{rejected}");
    assert!(rejected.contains("parameter section"), "{rejected}");
    assert!(rejected.contains("byte"), "{rejected}");
    assert_eq!(query(&mut stream, &mut reader, "SCORE 0 1 2 2 3 3"), after);

    let stats = query(&mut stream, &mut reader, "STATS");
    assert!(stats.contains("\"reloads\": 1"), "{stats}");
    assert!(stats.contains("\"reload_failures\": 2"), "{stats}");

    server.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn reload_rejects_bundle_directory_with_corrupt_graph_section() {
    let _lock = failpoint::exclusive();
    let dir = tmp_dir("dir-reload");
    let store_dir = dir.join("world.store");
    rmpi_store::build_from_graph(&store_dir, rmpi_store::StoreConfig::default(), &toy_graph())
        .unwrap();

    let good = dir.join("good.bundled");
    rmpi_serve::save_bundle_dir(&good, &model(2), &[], Some(&store_dir)).unwrap();
    let bad = dir.join("bad.bundled");
    rmpi_serve::save_bundle_dir(&bad, &model(2), &[], Some(&store_dir)).unwrap();
    // one flipped byte inside the bad copy's graph store
    let seg = bad.join("graph").join("fwd-00000.seg");
    let mut bytes = std::fs::read(&seg).unwrap();
    bytes[0] ^= 0x01;
    std::fs::write(&seg, bytes).unwrap();

    let base = dir.join("base.bundle");
    save_bundle_file(&base, &model(1), &[]).unwrap();
    let engine = engine_for_bundle(&base);
    let before = engine.score_batch(&PROBES).unwrap();

    // validate-before-swap: the corrupt graph section is caught by the
    // BUNDLE checksum pass and named; the old model keeps serving
    let err = engine.reload_from(&bad).unwrap_err();
    assert!(err.to_string().contains("checksum mismatch"), "{err}");
    assert!(err.to_string().contains("fwd-00000.seg"), "{err}");
    assert_eq!(engine.stats().reload_failures.get(), 1);
    assert_eq!(engine.score_batch(&PROBES).unwrap(), before, "old model keeps serving");

    // the undamaged copy of the same directory swaps in fine
    engine.reload_from(&good).unwrap();
    assert_eq!(engine.stats().reloads.get(), 1);
    let after = engine.score_batch(&PROBES).unwrap();
    assert_ne!(after, before, "reloaded weights must actually serve");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn wire_request_panic_answers_err_internal_and_connection_survives() {
    let _lock = failpoint::exclusive();
    let dir = tmp_dir("wire-panic");
    let path = dir.join("m.bundle");
    save_bundle_file(&path, &model(3), &[]).unwrap();
    let engine = Arc::new(engine_for_bundle(&path));
    let mut server = serve(Arc::clone(&engine), ServerConfig::default()).expect("serve");
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    let health = query(&mut stream, &mut reader, "HEALTH");
    assert!(health.starts_with("OK healthy"), "{health}");

    failpoint::arm(SCORE_FAILPOINT, Action::Panic("scoring kernel exploded".into()));
    let err = query(&mut stream, &mut reader, "SCORE 0 1 2");
    failpoint::disarm_all();
    assert!(err.starts_with("ERR internal"), "{err}");
    assert!(err.contains("scoring kernel exploded"), "{err}");

    // same connection, same worker: the panic did not take anything down
    let ok = query(&mut stream, &mut reader, "SCORE 0 1 2");
    assert!(ok.starts_with("OK "), "{ok}");
    assert!(query(&mut stream, &mut reader, "HEALTH").starts_with("OK healthy"));
    let stats = query(&mut stream, &mut reader, "STATS");
    assert!(stats.contains("\"internal_errors\": 1"), "{stats}");

    server.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}
