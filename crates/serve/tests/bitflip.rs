//! Bundle-directory durability property: flip one bit anywhere in a
//! finished bundle directory — `BUNDLE` manifest, params, or any graph
//! store file — and loading must either fail with a diagnostic naming the
//! damage, or (for a semantically invisible flip, e.g. manifest trailing
//! whitespace) serve scores bit-identical to the pristine artifact. A
//! silently different score is the one impossible outcome.

use proptest::prelude::*;
use rmpi_core::{RmpiConfig, RmpiModel};
use rmpi_kg::{KnowledgeGraph, Triple};
use rmpi_serve::{load_bundle_dir, save_bundle_dir, scrub_bundle_dir};
use rmpi_store::ReadMode;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn toy_graph() -> KnowledgeGraph {
    let mut triples: Vec<Triple> =
        (0..60u32).map(|i| Triple::new(i % 10, i % 5, (i * 7 + 1) % 10)).collect();
    triples.sort_unstable();
    KnowledgeGraph::from_triples(triples)
}

/// Build one pristine bundle directory (params + graph store) per case.
fn fresh_bundle_dir() -> PathBuf {
    static CASE: AtomicU64 = AtomicU64::new(0);
    let case = CASE.fetch_add(1, Ordering::Relaxed);
    let root = std::env::temp_dir().join(format!("rmpi-bdir-flip-{}-{case}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let store = root.join("world.store");
    rmpi_store::build_from_graph(&store, rmpi_store::StoreConfig::default(), &toy_graph()).unwrap();
    let model = RmpiModel::new(RmpiConfig { dim: 8, ne: true, ..RmpiConfig::base() }, 6, 3);
    let bdir = root.join("model.bundled");
    save_bundle_dir(&bdir, &model, &[], Some(&store)).unwrap();
    bdir
}

/// Every file in the bundle directory, recursively, in sorted order.
fn all_files(dir: &std::path::Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d).unwrap() {
            let p = entry.unwrap().path();
            if p.is_dir() {
                stack.push(p);
            } else {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}

/// Load the directory in `mode` and score a probe triple through the
/// returned model + reader pair (adjacency exercised via the reader sweep).
fn load_and_observe(
    dir: &std::path::Path,
    mode: ReadMode,
) -> Result<(f32, usize), rmpi_serve::ServeError> {
    let (bundle, reader) = load_bundle_dir(dir, mode)?;
    let reader = reader.expect("bundle dir carries a graph");
    let mut n = 0usize;
    reader.for_each_triple(|_| n += 1).map_err(rmpi_serve::ServeError::from)?;
    let mut view = rmpi_store::NeighborhoodView::new(&reader);
    view.pin(rmpi_kg::EntityId(0), rmpi_kg::EntityId(1), bundle.model.context_radius())
        .map_err(rmpi_serve::ServeError::from)?;
    use rmpi_core::ScoringModel;
    let sample = bundle.model.prepare_eval_sample(&view, Triple::new(0u32, 1u32, 1u32), 9);
    Ok((bundle.model.score_sample(&sample), n))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_single_bit_flip_in_a_bundle_dir_is_never_silently_wrong(
        file_sel in 0usize..10_000,
        byte_sel in 0usize..10_000_000,
        bit in 0u8..8,
    ) {
        let bdir = fresh_bundle_dir();
        let pristine = load_and_observe(&bdir, ReadMode::Resident).unwrap();

        let files = all_files(&bdir);
        let victim = &files[file_sel % files.len()];
        let mut bytes = std::fs::read(victim).unwrap();
        prop_assert!(!bytes.is_empty(), "no bundle file is empty");
        let at = byte_sel % bytes.len();
        bytes[at] ^= 1u8 << bit;
        std::fs::write(victim, &bytes).unwrap();

        for mode in [ReadMode::Resident, ReadMode::Stream { cache_blocks: 2 }] {
            if let Ok(got) = load_and_observe(&bdir, mode) {
                prop_assert_eq!(
                    got, pristine,
                    "flip {:?}[{at}] bit {bit} served silently different results in {mode:?}",
                    victim.file_name().unwrap()
                );
            }
        }

        // the scrub walk agrees: either every section is clean (invisible
        // flip), the report names damaged sections, or the manifest itself
        // became unreadable (e.g. a flip broke its UTF-8)
        if let Ok(report) = scrub_bundle_dir(&bdir) {
            if !report.is_clean() {
                prop_assert!(!report.corrupt_sections().is_empty());
            }
        }
        let root = bdir.parent().unwrap().to_path_buf();
        std::fs::remove_dir_all(&root).unwrap();
    }
}
