//! End-to-end serving pipeline: train → bundle → reload → serve, pinning the
//! ISSUE acceptance criterion that served scores are bit-identical to offline
//! `RmpiModel::score` with the same seed — on cache miss, cache hit, over the
//! wire, and after a bundle round trip through disk.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rmpi_core::{train_model, RmpiConfig, RmpiModel, ScoringModel, TrainConfig};
use rmpi_datasets::{build_benchmark, Scale};
use rmpi_serve::{load_bundle_file, save_bundle_file, serve, Engine, EngineConfig, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

const SEED: u64 = 11;

fn trained_model() -> (RmpiModel, rmpi_datasets::Benchmark) {
    let b = build_benchmark("nell.v1", Scale::Quick);
    let mut model =
        RmpiModel::new(RmpiConfig { dim: 8, ne: true, ..RmpiConfig::base() }, b.num_relations(), 5);
    let cfg = TrainConfig {
        epochs: 1,
        max_samples_per_epoch: 12,
        max_valid_samples: 4,
        ..TrainConfig::default()
    };
    train_model(&mut model, &b.train.graph, &b.train.targets, &b.train.valid, &cfg);
    (model, b)
}

#[test]
fn bundled_engine_scores_bit_identical_to_offline_model() {
    let (model, b) = trained_model();
    let test = b.test("TE").expect("TE split");

    // round-trip the trained model through a bundle file
    let path = std::env::temp_dir().join(format!("rmpi-serve-it-{}.bundle", std::process::id()));
    let names: Vec<String> = (0..b.num_relations()).map(|r| format!("rel_{r}")).collect();
    save_bundle_file(&path, &model, &names).expect("save bundle");
    let bundle = load_bundle_file(&path).expect("load bundle");
    std::fs::remove_file(&path).ok();
    assert_eq!(bundle.relation_names, names);

    let engine = Engine::new(
        bundle.model,
        test.graph.clone(),
        EngineConfig { seed: SEED, cache_capacity: 256, threads: 2 },
    );

    for &t in test.targets.iter().take(6) {
        let offline = model.score(&test.graph, t, &mut StdRng::seed_from_u64(SEED));
        let miss = engine.score(t).expect("serve miss");
        let hit = engine.score(t).expect("serve hit");
        assert_eq!(miss, offline, "cache-miss score must be bit-identical to offline");
        assert_eq!(hit, offline, "cache-hit score must be bit-identical to offline");
    }

    // the batched path agrees too, independent of thread count
    let targets: Vec<_> = test.targets.iter().copied().take(6).collect();
    let batch = engine.score_batch(&targets).expect("batch");
    for (t, s) in targets.iter().zip(&batch) {
        let offline = model.score(&test.graph, *t, &mut StdRng::seed_from_u64(SEED));
        assert_eq!(*s, offline);
    }
}

#[test]
fn wire_scores_match_offline_scoring() {
    let (model, b) = trained_model();
    let test = b.test("TE").expect("TE split");
    let engine = Arc::new(Engine::new(
        model.clone(),
        test.graph.clone(),
        EngineConfig { seed: SEED, cache_capacity: 64, threads: 1 },
    ));
    let mut server = serve(Arc::clone(&engine), ServerConfig::default()).expect("serve");

    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    let targets: Vec<_> = test.targets.iter().copied().take(4).collect();
    let mut request = String::from("SCORE");
    for t in &targets {
        request.push_str(&format!(" {} {} {}", t.head.0, t.relation.0, t.tail.0));
    }
    writeln!(stream, "{request}").expect("send");
    let mut line = String::new();
    reader.read_line(&mut line).expect("recv");
    let line = line.trim_end();
    let wire: Vec<f32> = line
        .strip_prefix("OK ")
        .unwrap_or_else(|| panic!("unexpected response: {line}"))
        .split(' ')
        .map(|s| s.parse().expect("f32"))
        .collect();

    for (t, s) in targets.iter().zip(&wire) {
        let offline = model.score(&test.graph, *t, &mut StdRng::seed_from_u64(SEED));
        assert_eq!(*s, offline, "wire score for {t:?} must round-trip bit-exactly");
    }
    server.shutdown();
}
