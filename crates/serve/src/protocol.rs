//! The line-delimited wire protocol: parsing and response formatting,
//! independent of any socket so it is testable in isolation.
//!
//! Requests are single ASCII lines; responses are single lines starting with
//! `OK ` or `ERR `:
//!
//! ```text
//! PING                          -> OK pong
//! HEALTH                        -> OK healthy ...
//! SCORE h r t [h r t ...]       -> OK s1 [s2 ...]
//! RANK h r k                    -> OK tail:score tail:score ...
//! STATS                         -> OK {"scores": ..., ...}
//! METRICS                       -> OK {"serve.score.us": {...}, ...}
//! RELOAD /path/to/model.bundle  -> OK reloaded | ERR reload rejected: ...
//! PROTO 2                       -> OK proto=2  (connection switches to v2)
//! anything else                 -> ERR <reason>
//! ```
//!
//! `SCORE` accepts any number of triples on one line — that is the batched
//! entry point: the server hands the whole batch to
//! [`crate::Engine::score_batch`], which shards it across the worker pool.
//! Scores are formatted with Rust's shortest-round-trip `f32` formatting, so
//! a client parsing them back gets the bit-exact served value.
//!
//! # Protocol v2: pipelined, tagged exchanges
//!
//! A connection starts in v1: strictly one in-order response per request
//! line. Sending `PROTO 2` (answered `OK proto=2`) switches the connection
//! into v2, where every request carries a client-chosen `ID <n>` tag and its
//! response echoes the tag — which is what lets a client keep N requests in
//! flight on one connection and match replies that return **out of order**
//! (batched verbs complete when their micro-batch flushes; cheap verbs
//! answer immediately):
//!
//! ```text
//! ID 7 SCORE 0 1 2   -> ID 7 OK 0.25
//! ID 8 PING          -> ID 8 OK pong
//! garbage-no-tag     -> ERR bad request: ...   (untagged: not attributable)
//! ```
//!
//! Tags are opaque `u64`s echoed verbatim; uniqueness among a connection's
//! in-flight requests is the client's job (the server never interprets
//! them). [`parse_tagged`] / [`format_tagged`] implement the framing.

use crate::error::ServeError;
use rmpi_kg::{EntityId, RelationId, Triple};

/// A parsed protocol request.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Score one or more triples (one batch).
    Score(Vec<Triple>),
    /// Rank context-graph entities as tails for `(head, relation, ?)`.
    Rank {
        /// Query head entity.
        head: EntityId,
        /// Query relation.
        relation: RelationId,
        /// How many top entities to return.
        k: usize,
    },
    /// Fetch the serving counters as JSON (legacy wire shape).
    Stats,
    /// Dump the full metrics registry as JSON (`subsystem.metric.unit`
    /// names; histograms carry count/sum/mean/max/p50/p90/p99).
    Metrics,
    /// Readiness probe: answers only if a request can actually be served.
    Health,
    /// Hot-swap the served model from a bundle file on the server's disk.
    Reload {
        /// Bundle path as the server sees it (rest of the line, verbatim).
        path: String,
    },
    /// Negotiate a protocol version for the rest of the connection.
    Proto {
        /// Requested version; only `2` is currently accepted.
        version: u32,
    },
}

/// Parse one request line.
pub fn parse_request(line: &str) -> Result<Request, ServeError> {
    let mut parts = line.split_whitespace();
    let bad = |msg: String| ServeError::BadRequest(msg);
    let command = parts.next().ok_or_else(|| bad("empty request".into()))?;
    match command {
        "PING" => Ok(Request::Ping),
        "PROTO" => {
            let version: u32 = parts
                .next()
                .ok_or_else(|| bad("PROTO needs a version".into()))?
                .parse()
                .map_err(|e| bad(format!("bad protocol version: {e}")))?;
            if parts.next().is_some() {
                return Err(bad("PROTO takes exactly one version".into()));
            }
            Ok(Request::Proto { version })
        }
        "STATS" => Ok(Request::Stats),
        "METRICS" => Ok(Request::Metrics),
        "HEALTH" => Ok(Request::Health),
        "RELOAD" => {
            // the rest of the line is the path, verbatim (paths may contain
            // spaces); leading/trailing whitespace is trimmed
            let path = line.trim_start()["RELOAD".len()..].trim();
            if path.is_empty() {
                return Err(bad("RELOAD needs a bundle path".into()));
            }
            Ok(Request::Reload { path: path.to_owned() })
        }
        "SCORE" => {
            let ids: Vec<u32> = parts
                .map(|p| p.parse().map_err(|e| bad(format!("bad id {p:?}: {e}"))))
                .collect::<Result<_, _>>()?;
            if ids.is_empty() || ids.len() % 3 != 0 {
                return Err(bad(format!(
                    "SCORE takes head/relation/tail id triplets, got {} ids",
                    ids.len()
                )));
            }
            let triples = ids.chunks_exact(3).map(|c| Triple::new(c[0], c[1], c[2])).collect();
            Ok(Request::Score(triples))
        }
        "RANK" => {
            let mut next = |what: &str| -> Result<u32, ServeError> {
                parts
                    .next()
                    .ok_or_else(|| ServeError::BadRequest(format!("RANK is missing {what}")))?
                    .parse()
                    .map_err(|e| ServeError::BadRequest(format!("bad {what}: {e}")))
            };
            let head = next("head")?;
            let relation = next("relation")?;
            let k = next("k")? as usize;
            if parts.next().is_some() {
                return Err(bad("RANK takes exactly head, relation, k".into()));
            }
            Ok(Request::Rank { head: EntityId(head), relation: RelationId(relation), k })
        }
        other => Err(bad(format!("unknown command {other:?}"))),
    }
}

/// `OK s1 s2 ...` for a score batch.
pub fn format_scores(scores: &[f32]) -> String {
    let mut out = String::from("OK");
    for s in scores {
        out.push(' ');
        out.push_str(&s.to_string());
    }
    out
}

/// `OK tail:score ...` for a ranking, best first.
pub fn format_ranked(ranked: &[(EntityId, f32)]) -> String {
    let mut out = String::from("OK");
    for (e, s) in ranked {
        out.push(' ');
        out.push_str(&format!("{}:{}", e.0, s));
    }
    out
}

/// `ERR <reason>` (single line, whatever the error was).
pub fn format_error(err: &ServeError) -> String {
    let msg = err.to_string().replace('\n', " ");
    format!("ERR {msg}")
}

/// Split a v2 line `ID <n> <request...>` into its tag and inner request.
///
/// The inner request is returned verbatim (not parsed); an empty inner
/// request is rejected here so every tag the server echoes corresponds to a
/// request that at least reached the dispatcher.
pub fn parse_tagged(line: &str) -> Result<(u64, &str), ServeError> {
    let bad = |msg: String| ServeError::BadRequest(msg);
    let rest = line
        .trim_start()
        .strip_prefix("ID")
        .ok_or_else(|| bad("protocol v2 requests start with `ID <n>`".into()))?;
    // require whitespace after the verb so `IDX` is not mistaken for a tag
    if !rest.starts_with(|c: char| c.is_ascii_whitespace()) {
        return Err(bad("protocol v2 requests start with `ID <n>`".into()));
    }
    let rest = rest.trim_start();
    let (tag_str, inner) = rest.split_once(|c: char| c.is_ascii_whitespace()).unwrap_or((rest, ""));
    let tag: u64 = tag_str.parse().map_err(|e| bad(format!("bad request tag {tag_str:?}: {e}")))?;
    let inner = inner.trim();
    if inner.is_empty() {
        return Err(bad(format!("tagged request {tag} is empty")));
    }
    Ok((tag, inner))
}

/// Frame a response line for v2: `ID <tag> <response>`.
pub fn format_tagged(tag: u64, response: &str) -> String {
    format!("ID {tag} {response}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_command() {
        assert_eq!(parse_request("PING").unwrap(), Request::Ping);
        assert_eq!(parse_request("STATS").unwrap(), Request::Stats);
        assert_eq!(parse_request("METRICS").unwrap(), Request::Metrics);
        assert_eq!(
            parse_request("SCORE 1 2 3").unwrap(),
            Request::Score(vec![Triple::new(1u32, 2u32, 3u32)])
        );
        assert_eq!(
            parse_request("SCORE 1 2 3 4 5 6").unwrap(),
            Request::Score(vec![Triple::new(1u32, 2u32, 3u32), Triple::new(4u32, 5u32, 6u32)])
        );
        assert_eq!(
            parse_request("RANK 7 0 10").unwrap(),
            Request::Rank { head: EntityId(7), relation: RelationId(0), k: 10 }
        );
        assert_eq!(parse_request("HEALTH").unwrap(), Request::Health);
        assert_eq!(
            parse_request("RELOAD /models/next.bundle").unwrap(),
            Request::Reload { path: "/models/next.bundle".into() }
        );
        assert_eq!(
            parse_request("RELOAD /models/with space/m.bundle ").unwrap(),
            Request::Reload { path: "/models/with space/m.bundle".into() },
            "the path is the rest of the line, spaces included"
        );
        assert_eq!(parse_request("PROTO 2").unwrap(), Request::Proto { version: 2 });
    }

    #[test]
    fn rejects_malformed_requests() {
        for bad in [
            "",
            "FROB",
            "SCORE",
            "SCORE 1 2",
            "SCORE 1 2 3 4",
            "SCORE a b c",
            "RANK 1 2",
            "RANK 1 2 3 4",
            "RANK x 2 3",
            "RELOAD",
            "RELOAD   ",
            "PROTO",
            "PROTO two",
            "PROTO 2 3",
        ] {
            let err = parse_request(bad).unwrap_err();
            assert!(matches!(err, ServeError::BadRequest(_)), "{bad:?} -> {err}");
        }
    }

    #[test]
    fn score_formatting_round_trips_f32() {
        let scores = [1.5f32, -0.12345678, 3.0e-8];
        let line = format_scores(&scores);
        assert!(line.starts_with("OK "));
        let parsed: Vec<f32> = line[3..].split(' ').map(|s| s.parse().unwrap()).collect();
        assert_eq!(parsed, scores);
    }

    #[test]
    fn ranked_and_error_formatting() {
        let line = format_ranked(&[(EntityId(3), 1.5), (EntityId(9), -0.25)]);
        assert_eq!(line, "OK 3:1.5 9:-0.25");
        assert_eq!(format_ranked(&[]), "OK");
        let err = format_error(&ServeError::Overloaded);
        assert_eq!(err, "ERR server overloaded");
    }

    #[test]
    fn tagged_framing_round_trips() {
        assert_eq!(parse_tagged("ID 7 SCORE 0 1 2").unwrap(), (7, "SCORE 0 1 2"));
        assert_eq!(parse_tagged("  ID  42  PING ").unwrap(), (42, "PING"));
        assert_eq!(parse_tagged(&format!("ID {} PING", u64::MAX)).unwrap(), (u64::MAX, "PING"));
        assert_eq!(format_tagged(7, "OK pong"), "ID 7 OK pong");
    }

    #[test]
    fn tagged_framing_rejects_malformed_lines() {
        for bad in ["", "SCORE 0 1 2", "ID", "ID PING", "ID x PING", "ID 7", "ID 7   ", "ID7 PING"]
        {
            let err = parse_tagged(bad).unwrap_err();
            assert!(matches!(err, ServeError::BadRequest(_)), "{bad:?} -> {err}");
        }
    }
}
