//! The line-delimited wire protocol: parsing and response formatting,
//! independent of any socket so it is testable in isolation.
//!
//! Requests are single ASCII lines; responses are single lines starting with
//! `OK ` or `ERR `:
//!
//! ```text
//! PING                          -> OK pong
//! HEALTH                        -> OK healthy ...
//! SCORE h r t [h r t ...]       -> OK s1 [s2 ...]
//! RANK h r k                    -> OK tail:score tail:score ...
//! STATS                         -> OK {"scores": ..., ...}
//! METRICS                       -> OK {"serve.score.us": {...}, ...}
//! RELOAD /path/to/model.bundle  -> OK reloaded | ERR reload rejected: ...
//! anything else                 -> ERR <reason>
//! ```
//!
//! `SCORE` accepts any number of triples on one line — that is the batched
//! entry point: the server hands the whole batch to
//! [`crate::Engine::score_batch`], which shards it across the worker pool.
//! Scores are formatted with Rust's shortest-round-trip `f32` formatting, so
//! a client parsing them back gets the bit-exact served value.

use crate::error::ServeError;
use rmpi_kg::{EntityId, RelationId, Triple};

/// A parsed protocol request.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Score one or more triples (one batch).
    Score(Vec<Triple>),
    /// Rank context-graph entities as tails for `(head, relation, ?)`.
    Rank {
        /// Query head entity.
        head: EntityId,
        /// Query relation.
        relation: RelationId,
        /// How many top entities to return.
        k: usize,
    },
    /// Fetch the serving counters as JSON (legacy wire shape).
    Stats,
    /// Dump the full metrics registry as JSON (`subsystem.metric.unit`
    /// names; histograms carry count/sum/mean/max/p50/p90/p99).
    Metrics,
    /// Readiness probe: answers only if a request can actually be served.
    Health,
    /// Hot-swap the served model from a bundle file on the server's disk.
    Reload {
        /// Bundle path as the server sees it (rest of the line, verbatim).
        path: String,
    },
}

/// Parse one request line.
pub fn parse_request(line: &str) -> Result<Request, ServeError> {
    let mut parts = line.split_whitespace();
    let bad = |msg: String| ServeError::BadRequest(msg);
    let command = parts.next().ok_or_else(|| bad("empty request".into()))?;
    match command {
        "PING" => Ok(Request::Ping),
        "STATS" => Ok(Request::Stats),
        "METRICS" => Ok(Request::Metrics),
        "HEALTH" => Ok(Request::Health),
        "RELOAD" => {
            // the rest of the line is the path, verbatim (paths may contain
            // spaces); leading/trailing whitespace is trimmed
            let path = line.trim_start()["RELOAD".len()..].trim();
            if path.is_empty() {
                return Err(bad("RELOAD needs a bundle path".into()));
            }
            Ok(Request::Reload { path: path.to_owned() })
        }
        "SCORE" => {
            let ids: Vec<u32> = parts
                .map(|p| p.parse().map_err(|e| bad(format!("bad id {p:?}: {e}"))))
                .collect::<Result<_, _>>()?;
            if ids.is_empty() || ids.len() % 3 != 0 {
                return Err(bad(format!(
                    "SCORE takes head/relation/tail id triplets, got {} ids",
                    ids.len()
                )));
            }
            let triples = ids.chunks_exact(3).map(|c| Triple::new(c[0], c[1], c[2])).collect();
            Ok(Request::Score(triples))
        }
        "RANK" => {
            let mut next = |what: &str| -> Result<u32, ServeError> {
                parts
                    .next()
                    .ok_or_else(|| ServeError::BadRequest(format!("RANK is missing {what}")))?
                    .parse()
                    .map_err(|e| ServeError::BadRequest(format!("bad {what}: {e}")))
            };
            let head = next("head")?;
            let relation = next("relation")?;
            let k = next("k")? as usize;
            if parts.next().is_some() {
                return Err(bad("RANK takes exactly head, relation, k".into()));
            }
            Ok(Request::Rank { head: EntityId(head), relation: RelationId(relation), k })
        }
        other => Err(bad(format!("unknown command {other:?}"))),
    }
}

/// `OK s1 s2 ...` for a score batch.
pub fn format_scores(scores: &[f32]) -> String {
    let mut out = String::from("OK");
    for s in scores {
        out.push(' ');
        out.push_str(&s.to_string());
    }
    out
}

/// `OK tail:score ...` for a ranking, best first.
pub fn format_ranked(ranked: &[(EntityId, f32)]) -> String {
    let mut out = String::from("OK");
    for (e, s) in ranked {
        out.push(' ');
        out.push_str(&format!("{}:{}", e.0, s));
    }
    out
}

/// `ERR <reason>` (single line, whatever the error was).
pub fn format_error(err: &ServeError) -> String {
    let msg = err.to_string().replace('\n', " ");
    format!("ERR {msg}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_command() {
        assert_eq!(parse_request("PING").unwrap(), Request::Ping);
        assert_eq!(parse_request("STATS").unwrap(), Request::Stats);
        assert_eq!(parse_request("METRICS").unwrap(), Request::Metrics);
        assert_eq!(
            parse_request("SCORE 1 2 3").unwrap(),
            Request::Score(vec![Triple::new(1u32, 2u32, 3u32)])
        );
        assert_eq!(
            parse_request("SCORE 1 2 3 4 5 6").unwrap(),
            Request::Score(vec![Triple::new(1u32, 2u32, 3u32), Triple::new(4u32, 5u32, 6u32)])
        );
        assert_eq!(
            parse_request("RANK 7 0 10").unwrap(),
            Request::Rank { head: EntityId(7), relation: RelationId(0), k: 10 }
        );
        assert_eq!(parse_request("HEALTH").unwrap(), Request::Health);
        assert_eq!(
            parse_request("RELOAD /models/next.bundle").unwrap(),
            Request::Reload { path: "/models/next.bundle".into() }
        );
        assert_eq!(
            parse_request("RELOAD /models/with space/m.bundle ").unwrap(),
            Request::Reload { path: "/models/with space/m.bundle".into() },
            "the path is the rest of the line, spaces included"
        );
    }

    #[test]
    fn rejects_malformed_requests() {
        for bad in [
            "",
            "FROB",
            "SCORE",
            "SCORE 1 2",
            "SCORE 1 2 3 4",
            "SCORE a b c",
            "RANK 1 2",
            "RANK 1 2 3 4",
            "RANK x 2 3",
            "RELOAD",
            "RELOAD   ",
        ] {
            let err = parse_request(bad).unwrap_err();
            assert!(matches!(err, ServeError::BadRequest(_)), "{bad:?} -> {err}");
        }
    }

    #[test]
    fn score_formatting_round_trips_f32() {
        let scores = [1.5f32, -0.12345678, 3.0e-8];
        let line = format_scores(&scores);
        assert!(line.starts_with("OK "));
        let parsed: Vec<f32> = line[3..].split(' ').map(|s| s.parse().unwrap()).collect();
        assert_eq!(parsed, scores);
    }

    #[test]
    fn ranked_and_error_formatting() {
        let line = format_ranked(&[(EntityId(3), 1.5), (EntityId(9), -0.25)]);
        assert_eq!(line, "OK 3:1.5 9:-0.25");
        assert_eq!(format_ranked(&[]), "OK");
        let err = format_error(&ServeError::Overloaded);
        assert_eq!(err, "ERR server overloaded");
    }
}
