//! The in-process inference engine: an immutable context graph, a seeded
//! subgraph cache, and batch fan-out over the worker pool.
//!
//! # Determinism contract
//!
//! Every query is scored exactly as the offline evaluator would score it:
//! `engine.score(t)` equals
//! `model.score(&graph, t, &mut StdRng::seed_from_u64(cfg.seed))` bit for
//! bit, whether the enclosing subgraph came from the cache or was freshly
//! extracted. This holds because (a) extraction is a pure function of
//! `(graph, target, hop, seed)` and the engine's graph and seed never change
//! after construction, so a cached [`SampleInput`] is byte-identical to a
//! re-extracted one; and (b) the forward pass past extraction is fully
//! deterministic ([`RmpiModel::score_sample`]). Batch scoring shards targets
//! across a [`ThreadPool`], and since each target's score is independent of
//! every other, results are identical for every thread count.
//!
//! # Hot reload and fault isolation
//!
//! The model and its subgraph cache live together in one `Arc<ModelState>`
//! behind an `RwLock`. Every request clones that `Arc` exactly once up
//! front, so a request sees one consistent (model, cache) pair for its whole
//! lifetime — [`Engine::reload_from`] swapping in a new bundle mid-request
//! can never mix old cached subgraphs with new weights. A reload candidate
//! is validated *before* the swap (relation coverage plus a probe score
//! under `catch_unwind`); a bad bundle is rejected, counted, and the
//! previous model keeps serving. Scoring panics are caught per request and
//! surface as [`ServeError::Internal`] — one poisoned query never takes the
//! engine down.
//!
//! # Degraded mode
//!
//! A store-backed engine that hits **confirmed corruption** (a block whose
//! checksum mismatch survived every re-read, or a truncated segment) stops
//! trusting the disk: it flips into degraded mode — sticky for the life of
//! the process, surfaced through [`Engine::is_degraded`], `HEALTH`, and the
//! `store.degraded` gauge. While degraded, cache hits keep serving normally
//! (those subgraphs were extracted from verified bytes), but a request that
//! would need fresh disk reads is answered [`ServeError::Degraded`]
//! (`ERR degraded` on the wire) instead of a possibly-wrong score. Transient
//! read failures never degrade the engine — the reader retries them, and
//! exhaustion surfaces as [`ServeError::Internal`].

use crate::error::ServeError;
use crate::stats::ServeStats;
use rmpi_autograd::Tape;
use rmpi_core::{RmpiModel, SampleInput, ScoringModel};
use rmpi_kg::{CsrGraph, EntityId, KnowledgeGraph, RelationId, Triple};
use rmpi_obs::MetricsRegistry;
use rmpi_runtime::{panic_message, ThreadPool};
use rmpi_store::{NeighborhoodView, StoreError, StoreReader};
use rmpi_subgraph::{LruCache, SubgraphKey};
use rmpi_testutil::failpoint;
use std::ops::Deref;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// Failpoint inside every scoring closure — lets tests inject a panic into
/// a live request and watch the engine answer `ERR internal` and survive.
pub const SCORE_FAILPOINT: &str = "engine::score";

/// One logical request inside a coalesced engine batch — what the
/// cross-connection micro-batcher ([`crate::batcher`]) collects from
/// concurrent wire requests and hands to [`Engine::run_batch`] as a unit.
#[derive(Clone, PartialEq, Debug)]
pub enum BatchItem {
    /// Score these triples (one wire `SCORE` line).
    Score(Vec<Triple>),
    /// Rank context-graph entities as tails for `(head, relation, ?)`,
    /// returning the top `k` (one wire `RANK` line).
    Rank {
        /// Query head entity.
        head: EntityId,
        /// Query relation.
        relation: RelationId,
        /// How many top entities to return.
        k: usize,
    },
}

impl BatchItem {
    /// How many flat scoring targets this item contributes to a coalesced
    /// batch: rank items expand over every ranking candidate
    /// ([`Engine::rank_width`]).
    pub fn cost(&self, rank_width: usize) -> usize {
        match self {
            BatchItem::Score(targets) => targets.len(),
            BatchItem::Rank { .. } => rank_width,
        }
    }
}

/// The per-item result of [`Engine::run_batch`], mirroring [`BatchItem`].
#[derive(Clone, PartialEq, Debug)]
pub enum BatchOutcome {
    /// Scores for a [`BatchItem::Score`], in request order.
    Scores(Vec<f32>),
    /// `(entity, score)` pairs for a [`BatchItem::Rank`], best first.
    Ranked(Vec<(EntityId, f32)>),
}

/// Engine construction knobs.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Extraction seed: the engine scores exactly like
    /// `model.score(graph, t, &mut StdRng::seed_from_u64(seed))`.
    pub seed: u64,
    /// Maximum cached subgraph samples (0 disables caching).
    pub cache_capacity: usize,
    /// Worker threads for batch scoring (`0` = one per available core).
    /// Scores are bit-identical for every value.
    pub threads: usize,
}

impl EngineConfig {
    /// Set the extraction seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the subgraph-cache capacity (0 disables caching).
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Set the batch-scoring worker count (`0` = one per available core).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig { seed: 0, cache_capacity: 4096, threads: 1 }
    }
}

/// The swappable half of the engine: a model and the subgraph cache that is
/// only valid for that model's hop radius. They swap together or not at all.
struct ModelState {
    model: RmpiModel,
    cache: Mutex<LruCache<SampleInput>>,
}

impl ModelState {
    fn new(model: RmpiModel, cache_capacity: usize) -> Arc<Self> {
        Arc::new(ModelState { model, cache: Mutex::new(LruCache::new(cache_capacity)) })
    }
}

/// A read snapshot of the served model, pinned for as long as the caller
/// holds it. Dereferences to [`RmpiModel`]; a concurrent [`Engine::reload_from`]
/// does not affect snapshots already taken.
pub struct ModelSnapshot(Arc<ModelState>);

impl Deref for ModelSnapshot {
    type Target = RmpiModel;
    fn deref(&self) -> &RmpiModel {
        &self.0.model
    }
}

/// Where the engine's context graph lives. Both backends answer every query
/// bit-identically — the store backend pins the target's
/// [`ScoringModel::context_radius`]-hop neighbourhood in RAM before
/// extraction, which reproduces exactly the adjacency the CSR would serve.
// one instance per engine, and boxing would put a pointer chase in front of
// every CSR access on the scoring hot path — the size gap is intentional
#[allow(clippy::large_enum_variant)]
pub enum GraphBackend {
    /// The whole graph resident in memory, scored through a CSR mirror.
    Memory {
        /// The context graph.
        graph: KnowledgeGraph,
        /// CSR mirror of `graph`: the adjacency layout scoring queries walk.
        /// Built once at bind time — sound because the graph is immutable.
        csr: CsrGraph,
    },
    /// An on-disk `rmpi-store` directory; adjacency is read through the
    /// reader's block cache and pinned per query. RSS stays bounded by the
    /// pinned neighbourhood, not the graph.
    Store(Arc<StoreReader>),
}

impl GraphBackend {
    fn num_entities(&self) -> usize {
        match self {
            GraphBackend::Memory { graph, .. } => graph.num_entities(),
            GraphBackend::Store(reader) => reader.num_entities(),
        }
    }

    fn num_relations(&self) -> usize {
        match self {
            GraphBackend::Memory { graph, .. } => graph.num_relations(),
            GraphBackend::Store(reader) => reader.num_relations(),
        }
    }

    fn present_entities(&self) -> Vec<EntityId> {
        match self {
            GraphBackend::Memory { graph, .. } => graph.present_entities(),
            GraphBackend::Store(reader) => reader.present_entities(),
        }
    }

    /// A known triple to validate reload candidates against. A store that
    /// cannot even read triple 0 yields `None` — validation then skips the
    /// probe score rather than wedging reloads behind a broken disk.
    fn probe(&self) -> Option<Triple> {
        match self {
            GraphBackend::Memory { graph, .. } => graph.triples().first().copied(),
            GraphBackend::Store(reader) => {
                (reader.num_triples() > 0).then(|| reader.triple_at(0).ok()).flatten()
            }
        }
    }

    /// Extract the forward input for `target`. Store failures surface as
    /// [`StoreError`] so the caller can tell confirmed corruption (degrade)
    /// from exhausted transient retries (internal error).
    fn prepare(
        &self,
        model: &RmpiModel,
        target: Triple,
        seed: u64,
    ) -> Result<SampleInput, StoreError> {
        match self {
            GraphBackend::Memory { csr, .. } => Ok(model.prepare_eval_sample(csr, target, seed)),
            GraphBackend::Store(reader) => {
                let mut view = NeighborhoodView::new(reader);
                view.pin(target.head, target.tail, model.context_radius())?;
                Ok(model.prepare_eval_sample(&view, target, seed))
            }
        }
    }
}

/// A loaded model bound to an immutable context graph, answering scoring and
/// ranking queries through a subgraph cache.
pub struct Engine {
    state: RwLock<Arc<ModelState>>,
    backend: GraphBackend,
    pool: ThreadPool,
    stats: ServeStats,
    /// Ranking candidates: every entity present in the context graph.
    candidates: Vec<EntityId>,
    seed: u64,
    cache_capacity: usize,
    /// Sticky corruption latch: set once the store backend confirms bad
    /// bytes, never cleared for the life of the process.
    degraded: AtomicBool,
    /// `store.degraded` — 0 healthy, 1 once corruption is confirmed.
    degraded_gauge: rmpi_obs::Gauge,
}

impl Engine {
    /// Bind `model` to `graph`. The graph is the context for all subgraph
    /// extraction and is never mutated — which is what makes caching sound.
    /// Metrics record into the process-global registry; use
    /// [`Engine::with_registry`] to isolate them.
    pub fn new(model: RmpiModel, graph: KnowledgeGraph, cfg: EngineConfig) -> Self {
        Engine::with_registry(model, graph, cfg, Arc::clone(rmpi_obs::global()))
    }

    /// Like [`Engine::new`], but metrics record into `registry` instead of
    /// the process-global one — tests pass a fresh registry so per-engine
    /// counts stay exact under concurrent test execution.
    pub fn with_registry(
        model: RmpiModel,
        graph: KnowledgeGraph,
        cfg: EngineConfig,
        registry: Arc<MetricsRegistry>,
    ) -> Self {
        let csr = CsrGraph::from_graph(&graph);
        Engine::with_backend(model, GraphBackend::Memory { graph, csr }, cfg, registry)
    }

    /// Bind `model` to an on-disk store: same query surface and bit-identical
    /// scores as the in-memory engine, with RSS bounded by the pinned
    /// neighbourhood instead of the graph. Metrics record into the
    /// process-global registry.
    pub fn with_store(model: RmpiModel, reader: Arc<StoreReader>, cfg: EngineConfig) -> Self {
        Engine::with_backend(
            model,
            GraphBackend::Store(reader),
            cfg,
            Arc::clone(rmpi_obs::global()),
        )
    }

    /// The fully explicit constructor: any backend, any registry.
    pub fn with_backend(
        model: RmpiModel,
        backend: GraphBackend,
        cfg: EngineConfig,
        registry: Arc<MetricsRegistry>,
    ) -> Self {
        let candidates = backend.present_entities();
        let stats = ServeStats::with_registry(registry);
        let degraded_gauge = stats.registry().gauge("store.degraded");
        degraded_gauge.set(0);
        Engine {
            state: RwLock::new(ModelState::new(model, cfg.cache_capacity)),
            backend,
            pool: ThreadPool::new(cfg.threads),
            stats,
            candidates,
            seed: cfg.seed,
            cache_capacity: cfg.cache_capacity,
            degraded: AtomicBool::new(false),
            degraded_gauge,
        }
    }

    /// Whether confirmed store corruption has flipped this engine into
    /// degraded (cache-only) serving. Sticky: a degraded engine stays
    /// degraded until the process is restarted over a repaired store.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Latch degraded mode: first caller flips the gauge and logs, everyone
    /// else is a no-op. Never called for transient failures.
    fn enter_degraded(&self, why: &str) {
        if !self.degraded.swap(true, Ordering::Relaxed) {
            self.degraded_gauge.set(1);
            eprintln!(
                "[rmpi-serve] store corruption confirmed, entering degraded mode \
                 (cache-only serving): {why}"
            );
        }
    }

    /// Count and build the `ERR degraded` answer for one rejected request.
    fn degraded_reject(&self, message: String) -> ServeError {
        self.stats.degraded_rejects.inc();
        ServeError::Degraded(message)
    }

    /// Route a caught scoring failure: panics whose message carries the
    /// store's corruption signature degrade the engine (a worker hit bad
    /// bytes mid-extraction); anything else is an internal error.
    fn classify_failure(&self, message: String) -> ServeError {
        if message.contains("corrupt store file") {
            self.enter_degraded(&message);
            self.degraded_reject(message)
        } else {
            self.internal(message)
        }
    }

    /// One `Arc` clone: the request-scoped view of the served model.
    fn snapshot(&self) -> Arc<ModelState> {
        Arc::clone(&self.state.read().expect("model lock"))
    }

    /// The served model (a snapshot: stable even across a concurrent reload).
    pub fn model(&self) -> ModelSnapshot {
        ModelSnapshot(self.snapshot())
    }

    /// The immutable in-memory context graph, when this engine has one.
    /// Store-backed engines return `None` — use [`Engine::num_entities`] /
    /// [`Engine::num_relations`] for the counts either backend answers.
    pub fn graph(&self) -> Option<&KnowledgeGraph> {
        match &self.backend {
            GraphBackend::Memory { graph, .. } => Some(graph),
            GraphBackend::Store(_) => None,
        }
    }

    /// Entities in the context graph's id space.
    pub fn num_entities(&self) -> usize {
        self.backend.num_entities()
    }

    /// Relations in the context graph's id space.
    pub fn num_relations(&self) -> usize {
        self.backend.num_relations()
    }

    /// The engine's counters (the TCP front end adds its own through this).
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// `(hits, misses, entries)` of the current model's subgraph cache.
    /// A reload installs a fresh cache, so these reset on swap.
    pub fn cache_stats(&self) -> (u64, u64, usize) {
        let state = self.snapshot();
        let cache = state.cache.lock().expect("cache lock");
        (cache.hits(), cache.misses(), cache.len())
    }

    /// Mirror the current cache's counters into the metrics registry as
    /// `subgraph.cache_*` gauges. The cache lives behind the model lock, so
    /// these are synced at dump time rather than on every lookup.
    fn sync_cache_gauges(&self) {
        let state = self.snapshot();
        let cache = state.cache.lock().expect("cache lock");
        let reg = self.stats.registry();
        reg.gauge("subgraph.cache_hits.count").set(cache.hits() as i64);
        reg.gauge("subgraph.cache_misses.count").set(cache.misses() as i64);
        reg.gauge("subgraph.cache_evictions.count").set(cache.evictions() as i64);
        reg.gauge("subgraph.cache_entries.count").set(cache.len() as i64);
    }

    /// The full metrics registry as one single-line JSON object — the
    /// `METRICS` wire payload. Cache gauges are synced first, so the dump
    /// includes up-to-date `subgraph.cache_*` values; on the default
    /// (global) registry it also carries trainer and pool metrics from the
    /// same process.
    pub fn metrics_json(&self) -> String {
        self.sync_cache_gauges();
        self.stats.registry().to_json()
    }

    /// Drop all cached subgraphs (counters survive) — the bench harness's
    /// cold-start lever.
    pub fn clear_cache(&self) {
        self.snapshot().cache.lock().expect("cache lock").clear();
    }

    /// All counters plus cache state and the sticky degraded flag as a
    /// single-line JSON object.
    pub fn stats_json(&self) -> String {
        let (hits, misses, len) = self.cache_stats();
        self.stats.to_json(hits, misses, len, self.is_degraded())
    }

    /// Validate a candidate bundle and, if sound, atomically swap it (with a
    /// fresh cache) in as the served model. On any failure — unreadable or
    /// corrupt bundle, insufficient relation coverage, non-finite or panicking
    /// probe score — the swap does **not** happen: the previous model keeps
    /// serving, `reload_failures` is bumped and the error is returned.
    pub fn reload_from<P: AsRef<Path>>(&self, path: P) -> Result<(), ServeError> {
        let result = self.try_reload(path.as_ref());
        match result {
            Ok(()) => {
                self.stats.reloads.inc();
                Ok(())
            }
            Err(e) => {
                self.stats.reload_failures.inc();
                Err(e)
            }
        }
    }

    fn try_reload(&self, path: &Path) -> Result<(), ServeError> {
        let model = if path.join(crate::bundledir::DIR_MANIFEST_NAME).is_file() {
            // A bundle directory: every section — params AND the graph store,
            // when present — is size- and checksum-verified before the swap,
            // so a corrupt graph rejects the reload instead of being
            // discovered mid-query later. Only the model is swapped; the
            // engine keeps its own backend, so the validation reader is
            // dropped here.
            let (bundle, _reader) = crate::bundledir::load_bundle_dir(
                path,
                rmpi_store::ReadMode::Stream { cache_blocks: 1 },
            )?;
            bundle.model
        } else {
            crate::bundle::load_bundle_file(path)?.model
        };
        self.validate_candidate(&model).map_err(ServeError::Reload)?;
        let state = ModelState::new(model, self.cache_capacity);
        *self.state.write().expect("model lock") = state;
        Ok(())
    }

    /// Pre-swap validation: the candidate must cover every relation the
    /// context graph uses, and must produce a finite score (without
    /// panicking) on a probe triple from the graph.
    fn validate_candidate(&self, model: &RmpiModel) -> Result<(), String> {
        if model.num_relations() < self.backend.num_relations() {
            return Err(format!(
                "bundle covers {} relations but the context graph uses {}",
                model.num_relations(),
                self.backend.num_relations()
            ));
        }
        if let Some(probe) = self.backend.probe() {
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let sample = self.backend.prepare(model, probe, self.seed)?;
                Ok(model.score_sample(&sample))
            }));
            match outcome {
                Ok(Ok(s)) if s.is_finite() => {}
                Ok(Ok(s)) => return Err(format!("probe score is non-finite ({s})")),
                Ok(Err(e)) => {
                    let e: StoreError = e;
                    return Err(format!("probe extraction failed: {e}"));
                }
                Err(p) => {
                    return Err(format!("probe scoring panicked: {}", panic_message(p.as_ref())))
                }
            }
        }
        Ok(())
    }

    fn check_relation(&self, model: &RmpiModel, r: RelationId) -> Result<(), ServeError> {
        if r.index() < model.num_relations() {
            Ok(())
        } else {
            Err(ServeError::UnknownRelation(r.0))
        }
    }

    /// The cached-extraction path: return the prepared forward input for
    /// `target`, extracting (and caching) it on a miss. Always reads and
    /// writes the cache belonging to the snapshot that will score the sample.
    ///
    /// Cache hits serve even while degraded — those subgraphs came from
    /// verified bytes. A miss while degraded is rejected without touching
    /// the disk; a miss that *confirms* corruption flips the engine into
    /// degraded mode.
    fn prepared(&self, state: &ModelState, target: Triple) -> Result<SampleInput, ServeError> {
        let key = SubgraphKey::new(target, state.model.config().hop);
        if let Some(sample) = state.cache.lock().expect("cache lock").get(&key) {
            return Ok(sample.clone());
        }
        if self.is_degraded() {
            return Err(
                self.degraded_reject("store is quarantined and the subgraph is not cached".into())
            );
        }
        // extraction happens outside the lock: concurrent misses on the same
        // key duplicate work but produce identical samples, so correctness
        // (and bit-parity) is unaffected
        let sample = match self.backend.prepare(&state.model, target, self.seed) {
            Ok(sample) => sample,
            Err(e) if e.is_corruption() => {
                self.enter_degraded(&e.to_string());
                return Err(self.degraded_reject(e.to_string()));
            }
            Err(e) => return Err(self.internal(e.to_string())),
        };
        state.cache.lock().expect("cache lock").insert(key, sample.clone());
        Ok(sample)
    }

    fn internal(&self, message: String) -> ServeError {
        self.stats.internal_errors.inc();
        ServeError::Internal(message)
    }

    /// Score one triple. Bit-identical to offline
    /// `model.score(graph, t, &mut StdRng::seed_from_u64(seed))`. A panic in
    /// the scoring path is caught and reported as [`ServeError::Internal`].
    pub fn score(&self, target: Triple) -> Result<f32, ServeError> {
        let state = self.snapshot();
        self.check_relation(&state.model, target.relation)?;
        let t0 = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            failpoint::point(SCORE_FAILPOINT);
            let sample = self.prepared(&state, target)?;
            Ok(state.model.score_sample(&sample))
        }));
        match outcome {
            Ok(Ok(score)) => {
                self.stats.record_score_call(1, t0.elapsed());
                Ok(score)
            }
            Ok(Err(e)) => Err(e),
            Err(p) => Err(self.classify_failure(panic_message(p.as_ref()))),
        }
    }

    /// Score a batch, sharded across the worker pool. Each worker reuses one
    /// tape arena for its whole shard; results come back in request order.
    /// A worker panic fails only this request, not the pool.
    pub fn score_batch(&self, targets: &[Triple]) -> Result<Vec<f32>, ServeError> {
        let state = self.snapshot();
        for t in targets {
            self.check_relation(&state.model, t.relation)?;
        }
        let t0 = Instant::now();
        let scores = self.pool.try_map_init(targets.len(), Tape::new, |tape, i| {
            failpoint::point(SCORE_FAILPOINT);
            let sample = self.prepared(&state, targets[i])?;
            tape.reset();
            let v = state.model.score_sample_on_tape(tape, &sample);
            Ok::<f32, ServeError>(tape.value(v).item())
        });
        match scores {
            Ok(scores) => {
                let scores = scores.into_iter().collect::<Result<Vec<f32>, ServeError>>()?;
                self.stats.record_score_call(targets.len() as u64, t0.elapsed());
                Ok(scores)
            }
            Err(e) => Err(self.classify_failure(e.to_string())),
        }
    }

    /// Rank every entity present in the context graph as a tail for
    /// `(head, relation, ?)` and return the top `k` as `(entity, score)`,
    /// best first. Ties break towards the smaller entity id so rankings are
    /// fully deterministic.
    pub fn rank_tails(
        &self,
        head: EntityId,
        relation: RelationId,
        k: usize,
    ) -> Result<Vec<(EntityId, f32)>, ServeError> {
        let state = self.snapshot();
        self.check_relation(&state.model, relation)?;
        let t0 = Instant::now();
        let scores = self.pool.try_map_init(self.candidates.len(), Tape::new, |tape, i| {
            failpoint::point(SCORE_FAILPOINT);
            let sample =
                self.prepared(&state, Triple { head, relation, tail: self.candidates[i] })?;
            tape.reset();
            let v = state.model.score_sample_on_tape(tape, &sample);
            Ok::<f32, ServeError>(tape.value(v).item())
        });
        let scores = match scores {
            Ok(s) => s.into_iter().collect::<Result<Vec<f32>, ServeError>>()?,
            Err(e) => return Err(self.classify_failure(e.to_string())),
        };
        let ranked = order_ranked(&self.candidates, scores, k);
        self.stats.record_rank_call(self.candidates.len() as u64, t0.elapsed());
        Ok(ranked)
    }

    /// How many candidates one [`BatchItem::Rank`] expands into — every
    /// entity present in the context graph. The micro-batcher budgets rank
    /// items by this width.
    pub fn rank_width(&self) -> usize {
        self.candidates.len()
    }

    /// Run a coalesced batch of independent requests through **one** model
    /// snapshot and **one** pool fan-out, answering each item separately.
    ///
    /// This is the micro-batcher's entry point: items from different
    /// connections, collected within one batching window, score together
    /// exactly as `score_batch` would score their concatenation — so every
    /// item's answer is bit-identical to calling [`Engine::score`] /
    /// [`Engine::rank_tails`] for it alone (the determinism contract above;
    /// extraction and the forward pass depend only on `(graph, target,
    /// seed)`, never on batch-mates).
    ///
    /// Failure is isolated per item: a bad relation fails only its own item,
    /// and a degraded-store rejection on one item's extraction leaves the
    /// other items' answers intact. A worker panic aborts the flush and
    /// fails every unanswered item (each with its own classified error) —
    /// the pool and engine survive. Because the whole batch scores under a
    /// single `Arc<ModelState>` clone, a concurrent [`Engine::reload_from`]
    /// can never split one batch across two models.
    pub fn run_batch(&self, items: &[BatchItem]) -> Vec<Result<BatchOutcome, ServeError>> {
        enum Plan {
            Failed,
            Score { len: usize },
            Rank { k: usize },
        }
        let state = self.snapshot();
        let t0 = Instant::now();
        // expansion: validate each item, flatten the survivors into one
        // target list (rank items fan out over every candidate)
        let mut plans = Vec::with_capacity(items.len());
        let mut results: Vec<Option<Result<BatchOutcome, ServeError>>> =
            Vec::with_capacity(items.len());
        let mut flat: Vec<Triple> = Vec::new();
        for item in items {
            match item {
                BatchItem::Score(targets) => {
                    match targets
                        .iter()
                        .try_for_each(|t| self.check_relation(&state.model, t.relation))
                    {
                        Ok(()) => {
                            flat.extend_from_slice(targets);
                            plans.push(Plan::Score { len: targets.len() });
                            results.push(None);
                        }
                        Err(e) => {
                            plans.push(Plan::Failed);
                            results.push(Some(Err(e)));
                        }
                    }
                }
                BatchItem::Rank { head, relation, k } => {
                    match self.check_relation(&state.model, *relation) {
                        Ok(()) => {
                            flat.extend(self.candidates.iter().map(|&tail| Triple {
                                head: *head,
                                relation: *relation,
                                tail,
                            }));
                            plans.push(Plan::Rank { k: *k });
                            results.push(None);
                        }
                        Err(e) => {
                            plans.push(Plan::Failed);
                            results.push(Some(Err(e)));
                        }
                    }
                }
            }
        }
        let pool_out = if flat.is_empty() {
            Ok(Vec::new())
        } else {
            self.pool.try_map_init(flat.len(), Tape::new, |tape, i| {
                failpoint::point(SCORE_FAILPOINT);
                let sample = self.prepared(&state, flat[i])?;
                tape.reset();
                let v = state.model.score_sample_on_tape(tape, &sample);
                Ok::<f32, ServeError>(tape.value(v).item())
            })
        };
        match pool_out {
            Err(e) => {
                // a worker panic fails every still-unanswered item, each with
                // its own classified error (ServeError is not Clone)
                let msg = e.to_string();
                for slot in results.iter_mut().filter(|s| s.is_none()) {
                    *slot = Some(Err(self.classify_failure(msg.clone())));
                }
            }
            Ok(elems) => {
                let elapsed = t0.elapsed();
                let mut cursor = elems.into_iter();
                for (slot, plan) in results.iter_mut().zip(&plans) {
                    let take = match plan {
                        Plan::Failed => continue,
                        Plan::Score { len } => *len,
                        Plan::Rank { .. } => self.candidates.len(),
                    };
                    // drain exactly `take` elements even when one errors, so
                    // later items stay aligned with their span of the batch
                    let span: Vec<Result<f32, ServeError>> = cursor.by_ref().take(take).collect();
                    debug_assert_eq!(span.len(), take, "flat batch misaligned");
                    let scores: Result<Vec<f32>, ServeError> = span.into_iter().collect();
                    *slot = Some(scores.map(|scores| match plan {
                        Plan::Score { len } => {
                            self.stats.record_score_call(*len as u64, elapsed);
                            BatchOutcome::Scores(scores)
                        }
                        Plan::Rank { k } => {
                            self.stats.record_rank_call(self.candidates.len() as u64, elapsed);
                            BatchOutcome::Ranked(order_ranked(&self.candidates, scores, *k))
                        }
                        Plan::Failed => unreachable!("failed items answered above"),
                    }));
                }
            }
        }
        results.into_iter().map(|slot| slot.expect("every batch item answered")).collect()
    }
}

/// The deterministic ranking order shared by [`Engine::rank_tails`] and
/// [`Engine::run_batch`]: descending score, ties towards the smaller entity
/// id — factored out so the batched path cannot drift from the direct one.
fn order_ranked(candidates: &[EntityId], scores: Vec<f32>, k: usize) -> Vec<(EntityId, f32)> {
    let mut ranked: Vec<(EntityId, f32)> = candidates.iter().copied().zip(scores).collect();
    ranked.sort_by(|a, b| {
        b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
    });
    ranked.truncate(k);
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rmpi_core::{RmpiConfig, ScoringModel};

    fn setup(threads: usize, cache: usize) -> Engine {
        let graph = KnowledgeGraph::from_triples(vec![
            Triple::new(0u32, 0u32, 1u32),
            Triple::new(1u32, 1u32, 3u32),
            Triple::new(0u32, 2u32, 2u32),
            Triple::new(2u32, 3u32, 3u32),
            Triple::new(3u32, 4u32, 4u32),
        ]);
        let model = RmpiModel::new(RmpiConfig { dim: 8, ne: true, ..RmpiConfig::base() }, 6, 0);
        // a fresh registry per engine: tests in this binary run concurrently
        // and assert exact counter values
        Engine::with_registry(
            model,
            graph,
            EngineConfig { seed: 9, cache_capacity: cache, threads },
            Arc::new(rmpi_obs::MetricsRegistry::new()),
        )
    }

    #[test]
    fn scores_match_offline_on_miss_and_hit() {
        let engine = setup(1, 16);
        let t = Triple::new(0u32, 5u32, 3u32);
        let offline =
            engine.model().score(engine.graph().unwrap(), t, &mut StdRng::seed_from_u64(9));
        let miss = engine.score(t).unwrap();
        let hit = engine.score(t).unwrap();
        assert_eq!(miss, offline, "cache miss must equal offline scoring");
        assert_eq!(hit, offline, "cache hit must equal offline scoring");
        let (hits, misses, len) = engine.cache_stats();
        assert_eq!((hits, misses, len), (1, 1, 1));
    }

    #[test]
    fn batch_scores_are_thread_count_invariant() {
        let targets: Vec<Triple> =
            (0..12u32).map(|i| Triple::new(i % 5, i % 6, (i + 1) % 5)).collect();
        let sequential = setup(1, 64).score_batch(&targets).unwrap();
        for threads in [2, 4] {
            let parallel = setup(threads, 64).score_batch(&targets).unwrap();
            assert_eq!(sequential, parallel, "threads={threads}");
        }
        // and caching does not change batch results either
        let uncached = setup(1, 0).score_batch(&targets).unwrap();
        assert_eq!(sequential, uncached);
    }

    #[test]
    fn unknown_relation_is_an_error_not_a_panic() {
        let engine = setup(1, 4);
        let err = engine.score(Triple::new(0u32, 17u32, 1u32)).unwrap_err();
        assert!(matches!(err, ServeError::UnknownRelation(17)), "{err}");
        assert!(engine.rank_tails(EntityId(0), RelationId(17), 3).is_err());
        assert!(engine
            .score_batch(&[Triple::new(0u32, 0u32, 1u32), Triple::new(0u32, 17u32, 1u32)])
            .is_err());
    }

    #[test]
    fn rank_tails_returns_sorted_top_k() {
        let engine = setup(2, 64);
        let ranked = engine.rank_tails(EntityId(0), RelationId(1), 3).unwrap();
        assert_eq!(ranked.len(), 3);
        for pair in ranked.windows(2) {
            assert!(pair[0].1 >= pair[1].1, "scores must be descending: {ranked:?}");
        }
        // parity with direct scoring of the winner
        let (best, best_score) = ranked[0];
        let direct = engine
            .score(Triple { head: EntityId(0), relation: RelationId(1), tail: best })
            .unwrap();
        assert_eq!(direct, best_score);
    }

    #[test]
    fn run_batch_matches_direct_calls_bit_for_bit() {
        let engine = setup(2, 64);
        let targets: Vec<Triple> =
            (0..6u32).map(|i| Triple::new(i % 5, i % 6, (i + 1) % 5)).collect();
        let items = vec![
            BatchItem::Score(targets.clone()),
            BatchItem::Rank { head: EntityId(0), relation: RelationId(1), k: 3 },
            BatchItem::Score(vec![targets[0]]),
        ];
        let out = engine.run_batch(&items);
        assert_eq!(out.len(), 3);
        assert_eq!(
            out[0].as_ref().unwrap(),
            &BatchOutcome::Scores(engine.score_batch(&targets).unwrap())
        );
        assert_eq!(
            out[1].as_ref().unwrap(),
            &BatchOutcome::Ranked(engine.rank_tails(EntityId(0), RelationId(1), 3).unwrap())
        );
        assert_eq!(
            out[2].as_ref().unwrap(),
            &BatchOutcome::Scores(vec![engine.score(targets[0]).unwrap()])
        );
        assert!(engine.run_batch(&[]).is_empty());
    }

    #[test]
    fn run_batch_isolates_per_item_failures() {
        let engine = setup(1, 16);
        let good = Triple::new(0u32, 0u32, 1u32);
        let items = vec![
            BatchItem::Score(vec![good]),
            BatchItem::Score(vec![Triple::new(0u32, 17u32, 1u32)]),
            BatchItem::Rank { head: EntityId(0), relation: RelationId(99), k: 2 },
            BatchItem::Rank { head: EntityId(0), relation: RelationId(1), k: 2 },
        ];
        let out = engine.run_batch(&items);
        assert_eq!(
            out[0].as_ref().unwrap(),
            &BatchOutcome::Scores(vec![engine.score(good).unwrap()]),
            "a bad batch-mate must not disturb a good item"
        );
        assert!(matches!(out[1], Err(ServeError::UnknownRelation(17))), "{:?}", out[1]);
        assert!(matches!(out[2], Err(ServeError::UnknownRelation(99))), "{:?}", out[2]);
        assert_eq!(
            out[3].as_ref().unwrap(),
            &BatchOutcome::Ranked(engine.rank_tails(EntityId(0), RelationId(1), 2).unwrap())
        );
    }

    #[test]
    fn run_batch_panic_fails_every_item_but_not_the_engine() {
        use rmpi_testutil::failpoint::Action;
        let _lock = failpoint::exclusive();
        let engine = setup(2, 8);
        let t = Triple::new(0u32, 1u32, 2u32);
        let items = vec![
            BatchItem::Score(vec![t]),
            BatchItem::Rank { head: EntityId(0), relation: RelationId(1), k: 2 },
        ];
        failpoint::arm(SCORE_FAILPOINT, Action::Panic("flush blew up".into()));
        let out = engine.run_batch(&items);
        failpoint::disarm_all();
        assert!(out.iter().all(|r| matches!(r, Err(ServeError::Internal(_)))), "{out:?}");
        // the engine and pool survive the poisoned flush
        let healthy = engine.run_batch(&items);
        assert!(healthy.iter().all(|r| r.is_ok()), "{healthy:?}");
    }

    #[test]
    fn stats_json_reflects_traffic() {
        let engine = setup(1, 8);
        let t = Triple::new(0u32, 1u32, 2u32);
        engine.score(t).unwrap();
        engine.score(t).unwrap();
        let json = engine.stats_json();
        assert!(json.contains("\"score_requests\": 2"), "{json}");
        assert!(json.contains("\"cache_hits\": 1"), "{json}");
        assert!(json.contains("\"cache_misses\": 1"), "{json}");
    }

    #[test]
    fn metrics_json_carries_cache_gauges_and_latency_percentiles() {
        let engine = setup(1, 8);
        let t = Triple::new(0u32, 1u32, 2u32);
        engine.score(t).unwrap();
        engine.score(t).unwrap();
        let json = engine.metrics_json();
        assert!(json.contains("\"subgraph.cache_hits.count\": 1"), "{json}");
        assert!(json.contains("\"subgraph.cache_misses.count\": 1"), "{json}");
        assert!(json.contains("\"subgraph.cache_entries.count\": 1"), "{json}");
        assert!(json.contains("\"serve.score_requests.count\": 2"), "{json}");
        assert!(json.contains("\"serve.score.us\": {\"count\": 2"), "{json}");
        assert!(json.contains("\"p99\":"), "{json}");
        assert!(!json.contains('\n'), "METRICS payload must be one line");
    }

    #[test]
    fn clear_cache_forces_reextraction_with_same_result() {
        let engine = setup(1, 8);
        let t = Triple::new(0u32, 1u32, 2u32);
        let a = engine.score(t).unwrap();
        engine.clear_cache();
        let b = engine.score(t).unwrap();
        assert_eq!(a, b);
        let (_, misses, _) = engine.cache_stats();
        assert_eq!(misses, 2, "both lookups missed after the clear");
    }

    #[test]
    fn reload_from_missing_bundle_keeps_serving_and_counts_failure() {
        let engine = setup(1, 8);
        let t = Triple::new(0u32, 1u32, 2u32);
        let before = engine.score(t).unwrap();
        let err = engine.reload_from("/nonexistent/model.bundle").unwrap_err();
        assert!(matches!(err, ServeError::Io(_)), "{err}");
        assert_eq!(engine.stats().reload_failures.get(), 1);
        assert_eq!(engine.stats().reloads.get(), 0);
        assert_eq!(engine.score(t).unwrap(), before, "old model must keep serving");
    }

    #[test]
    fn reload_rejects_bundle_with_too_few_relations() {
        let _lock = failpoint::exclusive();
        let dir = std::env::temp_dir().join(format!("rmpi-reload-narrow-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("narrow.bundle");
        // 2 relations < the 6-relation graph space (graph relations are 0..=4)
        let narrow = RmpiModel::new(RmpiConfig { dim: 8, ..RmpiConfig::base() }, 2, 1);
        crate::bundle::save_bundle_file(&path, &narrow, &[]).unwrap();

        let engine = setup(1, 8);
        let err = engine.reload_from(&path).unwrap_err();
        assert!(matches!(err, ServeError::Reload(_)), "{err}");
        assert!(err.to_string().contains("relations"), "{err}");
        assert_eq!(engine.stats().reload_failures.get(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn successful_reload_swaps_model_and_resets_cache() {
        let _lock = failpoint::exclusive();
        let dir = std::env::temp_dir().join(format!("rmpi-reload-ok-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("next.bundle");
        let next = RmpiModel::new(RmpiConfig { dim: 8, ne: true, ..RmpiConfig::base() }, 6, 7);
        crate::bundle::save_bundle_file(&path, &next, &[]).unwrap();

        let engine = setup(1, 8);
        let t = Triple::new(0u32, 1u32, 2u32);
        let before = engine.score(t).unwrap();
        engine.reload_from(&path).unwrap();
        assert_eq!(engine.stats().reloads.get(), 1);
        let after = engine.score(t).unwrap();
        let offline = next.score(engine.graph().unwrap(), t, &mut StdRng::seed_from_u64(9));
        assert_eq!(after, offline, "post-reload scores come from the new model");
        assert_ne!(before, after, "different weights should score differently");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn store_backend_scores_bit_identically_to_memory() {
        use rmpi_store::{build_from_graph, ReadMode, StoreConfig};
        let graph = KnowledgeGraph::from_triples(vec![
            Triple::new(0u32, 0u32, 1u32),
            Triple::new(1u32, 1u32, 3u32),
            Triple::new(0u32, 2u32, 2u32),
            Triple::new(2u32, 3u32, 3u32),
            Triple::new(3u32, 4u32, 4u32),
        ]);
        let dir = std::env::temp_dir().join(format!("rmpi-engine-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        build_from_graph(&dir, StoreConfig::default(), &graph).unwrap();

        let mk_model =
            || RmpiModel::new(RmpiConfig { dim: 8, ne: true, ..RmpiConfig::base() }, 6, 0);
        let cfg = EngineConfig { seed: 9, cache_capacity: 16, threads: 2 };
        let memory = Engine::with_registry(
            mk_model(),
            graph,
            cfg,
            Arc::new(rmpi_obs::MetricsRegistry::new()),
        );
        for mode in [ReadMode::Resident, ReadMode::Stream { cache_blocks: 4 }] {
            let reader = Arc::new(rmpi_store::StoreReader::open(&dir, mode).unwrap());
            let stored = Engine::with_backend(
                mk_model(),
                GraphBackend::Store(reader),
                cfg,
                Arc::new(rmpi_obs::MetricsRegistry::new()),
            );
            assert!(stored.graph().is_none());
            assert_eq!(stored.num_entities(), memory.num_entities());
            assert_eq!(stored.num_relations(), memory.num_relations());
            let targets: Vec<Triple> =
                (0..12u32).map(|i| Triple::new(i % 5, i % 6, (i + 1) % 5)).collect();
            assert_eq!(
                stored.score_batch(&targets).unwrap(),
                memory.score_batch(&targets).unwrap(),
                "{mode:?}"
            );
            assert_eq!(
                stored.rank_tails(EntityId(0), RelationId(1), 4).unwrap(),
                memory.rank_tails(EntityId(0), RelationId(1), 4).unwrap(),
                "{mode:?}"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_score_panic_is_an_internal_error_not_a_crash() {
        use rmpi_testutil::failpoint::Action;
        let _lock = failpoint::exclusive();
        let engine = setup(2, 8);
        let t = Triple::new(0u32, 1u32, 2u32);

        failpoint::arm(SCORE_FAILPOINT, Action::Panic("score blew up".into()));
        let err = engine.score(t).unwrap_err();
        assert!(matches!(err, ServeError::Internal(_)), "{err}");
        assert!(err.to_string().contains("score blew up"), "{err}");

        failpoint::arm(SCORE_FAILPOINT, Action::Panic("batch blew up".into()));
        let err = engine.score_batch(&[t]).unwrap_err();
        assert!(matches!(err, ServeError::Internal(_)), "{err}");
        failpoint::disarm_all();

        assert_eq!(engine.stats().internal_errors.get(), 2);
        // the engine (and its pool) keep working after both panics
        let healthy = engine.score(t).unwrap();
        assert!(healthy.is_finite());
        assert_eq!(engine.score_batch(&[t]).unwrap(), vec![healthy]);
    }

    fn store_test_graph() -> KnowledgeGraph {
        KnowledgeGraph::from_triples(vec![
            Triple::new(0u32, 0u32, 1u32),
            Triple::new(1u32, 1u32, 3u32),
            Triple::new(0u32, 2u32, 2u32),
            Triple::new(2u32, 3u32, 3u32),
            Triple::new(3u32, 4u32, 4u32),
        ])
    }

    #[test]
    fn confirmed_corruption_degrades_engine_but_cache_keeps_serving() {
        use rmpi_store::{build_from_graph, ReadMode, StoreConfig, StoreReader};
        use std::io::{Read as _, Seek, SeekFrom, Write};
        let graph = store_test_graph();
        let dir = std::env::temp_dir().join(format!("rmpi-engine-degraded-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        build_from_graph(&dir, StoreConfig::default(), &graph).unwrap();

        let model = RmpiModel::new(RmpiConfig { dim: 8, ne: true, ..RmpiConfig::base() }, 6, 0);
        // cache_blocks: 1 — any two-file pin alternates fwd/inv reads, so an
        // uncached query is guaranteed to touch the disk again
        let reader =
            Arc::new(StoreReader::open(&dir, ReadMode::Stream { cache_blocks: 1 }).unwrap());
        let engine = Engine::with_backend(
            model,
            GraphBackend::Store(reader),
            EngineConfig { seed: 9, cache_capacity: 16, threads: 1 },
            Arc::new(rmpi_obs::MetricsRegistry::new()),
        );
        assert!(!engine.is_degraded());
        let cached = Triple::new(0u32, 1u32, 2u32);
        let before = engine.score(cached).unwrap();

        // flip one data bit in the forward segment, in place: the reader's
        // already-open descriptor sees the damaged bytes on its next pread
        let seg = dir.join("fwd-00000.seg");
        let mut f = std::fs::OpenOptions::new().read(true).write(true).open(&seg).unwrap();
        let mut byte = [0u8; 1];
        f.read_exact(&mut byte).unwrap();
        f.seek(SeekFrom::Start(0)).unwrap();
        f.write_all(&[byte[0] ^ 0x40]).unwrap();
        f.sync_all().unwrap();

        // the uncached query needs fresh reads -> block checksum mismatch
        // survives every re-read -> degraded, never a wrong score
        let uncached = Triple::new(3u32, 2u32, 1u32);
        let err = engine.score(uncached).unwrap_err();
        assert!(matches!(err, ServeError::Degraded(_)), "{err}");
        assert!(engine.is_degraded());

        // cache hits keep serving bit-identically; uncached stays rejected
        // with no further disk traffic
        assert_eq!(engine.score(cached).unwrap(), before);
        let err = engine.score(uncached).unwrap_err();
        assert!(matches!(err, ServeError::Degraded(_)), "{err}");
        assert!(engine.stats().degraded_rejects.get() >= 2);
        assert_eq!(engine.stats().internal_errors.get(), 0);
        let metrics = engine.metrics_json();
        assert!(metrics.contains("\"store.degraded\": 1"), "{metrics}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn transient_read_faults_are_retried_not_degraded() {
        use rmpi_store::{build_from_graph, ReadMode, StoreConfig, StoreOptions, StoreReader};
        use rmpi_testutil::chaosfile::ChaosFileConfig;
        let graph = store_test_graph();
        let dir =
            std::env::temp_dir().join(format!("rmpi-engine-transient-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        build_from_graph(&dir, StoreConfig::default(), &graph).unwrap();

        let mk_model =
            || RmpiModel::new(RmpiConfig { dim: 8, ne: true, ..RmpiConfig::base() }, 6, 0);
        let cfg = EngineConfig { seed: 9, cache_capacity: 0, threads: 1 };
        let clean_reader =
            Arc::new(StoreReader::open(&dir, ReadMode::Stream { cache_blocks: 1 }).unwrap());
        let clean = Engine::with_backend(
            mk_model(),
            GraphBackend::Store(clean_reader),
            cfg,
            Arc::new(rmpi_obs::MetricsRegistry::new()),
        );
        let registry = Arc::new(rmpi_obs::MetricsRegistry::new());
        let opts = StoreOptions {
            mode: ReadMode::Stream { cache_blocks: 1 },
            chaos: Some(ChaosFileConfig {
                seed: 7,
                transient_rate: 0.2,
                delay: std::time::Duration::ZERO,
                ..ChaosFileConfig::default()
            }),
            ..StoreOptions::default()
        };
        let faulty_reader = Arc::new(StoreReader::open_opts(&dir, opts, &registry).unwrap());
        let faulty = Engine::with_backend(
            mk_model(),
            GraphBackend::Store(faulty_reader),
            cfg,
            Arc::clone(&registry),
        );

        let targets: Vec<Triple> =
            (0..12u32).map(|i| Triple::new(i % 5, i % 6, (i + 1) % 5)).collect();
        for &t in &targets {
            assert_eq!(faulty.score(t).unwrap(), clean.score(t).unwrap(), "{t:?}");
        }
        assert!(!faulty.is_degraded(), "transient faults must never degrade the engine");
        let dump = registry.to_json();
        assert!(dump.contains("\"store.read_retries.count\""), "{dump}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
