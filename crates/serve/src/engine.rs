//! The in-process inference engine: an immutable context graph, a seeded
//! subgraph cache, and batch fan-out over the worker pool.
//!
//! # Determinism contract
//!
//! Every query is scored exactly as the offline evaluator would score it:
//! `engine.score(t)` equals
//! `model.score(&graph, t, &mut StdRng::seed_from_u64(cfg.seed))` bit for
//! bit, whether the enclosing subgraph came from the cache or was freshly
//! extracted. This holds because (a) extraction is a pure function of
//! `(graph, target, hop, seed)` and the engine's graph and seed never change
//! after construction, so a cached [`SampleInput`] is byte-identical to a
//! re-extracted one; and (b) the forward pass past extraction is fully
//! deterministic ([`RmpiModel::score_sample`]). Batch scoring shards targets
//! across a [`ThreadPool`], and since each target's score is independent of
//! every other, results are identical for every thread count.

use crate::error::ServeError;
use crate::stats::ServeStats;
use rmpi_autograd::Tape;
use rmpi_core::{RmpiModel, SampleInput};
use rmpi_kg::{EntityId, KnowledgeGraph, RelationId, Triple};
use rmpi_runtime::ThreadPool;
use rmpi_subgraph::{LruCache, SubgraphKey};
use std::sync::Mutex;
use std::time::Instant;

/// Engine construction knobs.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Extraction seed: the engine scores exactly like
    /// `model.score(graph, t, &mut StdRng::seed_from_u64(seed))`.
    pub seed: u64,
    /// Maximum cached subgraph samples (0 disables caching).
    pub cache_capacity: usize,
    /// Worker threads for batch scoring (`0` = one per available core).
    /// Scores are bit-identical for every value.
    pub threads: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig { seed: 0, cache_capacity: 4096, threads: 1 }
    }
}

/// A loaded model bound to an immutable context graph, answering scoring and
/// ranking queries through a subgraph cache.
pub struct Engine {
    model: RmpiModel,
    graph: KnowledgeGraph,
    pool: ThreadPool,
    cache: Mutex<LruCache<SampleInput>>,
    stats: ServeStats,
    /// Ranking candidates: every entity present in the context graph.
    candidates: Vec<EntityId>,
    seed: u64,
}

impl Engine {
    /// Bind `model` to `graph`. The graph is the context for all subgraph
    /// extraction and is never mutated — which is what makes caching sound.
    pub fn new(model: RmpiModel, graph: KnowledgeGraph, cfg: EngineConfig) -> Self {
        let candidates = graph.present_entities();
        Engine {
            model,
            graph,
            pool: ThreadPool::new(cfg.threads),
            cache: Mutex::new(LruCache::new(cfg.cache_capacity)),
            stats: ServeStats::new(),
            candidates,
            seed: cfg.seed,
        }
    }

    /// The served model.
    pub fn model(&self) -> &RmpiModel {
        &self.model
    }

    /// The immutable context graph.
    pub fn graph(&self) -> &KnowledgeGraph {
        &self.graph
    }

    /// The engine's counters (the TCP front end adds its own through this).
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// `(hits, misses, entries)` of the subgraph cache.
    pub fn cache_stats(&self) -> (u64, u64, usize) {
        let cache = self.cache.lock().expect("cache lock");
        (cache.hits(), cache.misses(), cache.len())
    }

    /// Drop all cached subgraphs (counters survive) — the bench harness's
    /// cold-start lever.
    pub fn clear_cache(&self) {
        self.cache.lock().expect("cache lock").clear();
    }

    /// All counters plus cache state as a single-line JSON object.
    pub fn stats_json(&self) -> String {
        let (hits, misses, len) = self.cache_stats();
        self.stats.to_json(hits, misses, len)
    }

    fn check_relation(&self, r: RelationId) -> Result<(), ServeError> {
        if r.index() < self.model.num_relations() {
            Ok(())
        } else {
            Err(ServeError::UnknownRelation(r.0))
        }
    }

    /// The cached-extraction path: return the prepared forward input for
    /// `target`, extracting (and caching) it on a miss.
    fn prepared(&self, target: Triple) -> SampleInput {
        let key = SubgraphKey::new(target, self.model.config().hop);
        if let Some(sample) = self.cache.lock().expect("cache lock").get(&key) {
            return sample.clone();
        }
        // extraction happens outside the lock: concurrent misses on the same
        // key duplicate work but produce identical samples, so correctness
        // (and bit-parity) is unaffected
        let sample = self.model.prepare_eval_sample(&self.graph, target, self.seed);
        self.cache.lock().expect("cache lock").insert(key, sample.clone());
        sample
    }

    /// Score one triple. Bit-identical to offline
    /// `model.score(graph, t, &mut StdRng::seed_from_u64(seed))`.
    pub fn score(&self, target: Triple) -> Result<f32, ServeError> {
        self.check_relation(target.relation)?;
        let t0 = Instant::now();
        let sample = self.prepared(target);
        let score = self.model.score_sample(&sample);
        self.stats.record_call(&self.stats.score_requests, 1, t0.elapsed());
        Ok(score)
    }

    /// Score a batch, sharded across the worker pool. Each worker reuses one
    /// tape arena for its whole shard; results come back in request order.
    pub fn score_batch(&self, targets: &[Triple]) -> Result<Vec<f32>, ServeError> {
        for t in targets {
            self.check_relation(t.relation)?;
        }
        let t0 = Instant::now();
        let scores = self.pool.map_init(targets.len(), Tape::new, |tape, i| {
            let sample = self.prepared(targets[i]);
            tape.reset();
            let v = self.model.score_sample_on_tape(tape, &sample);
            tape.value(v).item()
        });
        self.stats.record_call(&self.stats.score_requests, targets.len() as u64, t0.elapsed());
        Ok(scores)
    }

    /// Rank every entity present in the context graph as a tail for
    /// `(head, relation, ?)` and return the top `k` as `(entity, score)`,
    /// best first. Ties break towards the smaller entity id so rankings are
    /// fully deterministic.
    pub fn rank_tails(
        &self,
        head: EntityId,
        relation: RelationId,
        k: usize,
    ) -> Result<Vec<(EntityId, f32)>, ServeError> {
        self.check_relation(relation)?;
        let t0 = Instant::now();
        let scores = self.pool.map_init(self.candidates.len(), Tape::new, |tape, i| {
            let sample = self.prepared(Triple { head, relation, tail: self.candidates[i] });
            tape.reset();
            let v = self.model.score_sample_on_tape(tape, &sample);
            tape.value(v).item()
        });
        let mut ranked: Vec<(EntityId, f32)> =
            self.candidates.iter().copied().zip(scores).collect();
        ranked.sort_by(|a, b| {
            b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
        });
        ranked.truncate(k);
        self.stats.record_call(&self.stats.rank_requests, self.candidates.len() as u64, t0.elapsed());
        Ok(ranked)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rmpi_core::{RmpiConfig, ScoringModel};

    fn setup(threads: usize, cache: usize) -> Engine {
        let graph = KnowledgeGraph::from_triples(vec![
            Triple::new(0u32, 0u32, 1u32),
            Triple::new(1u32, 1u32, 3u32),
            Triple::new(0u32, 2u32, 2u32),
            Triple::new(2u32, 3u32, 3u32),
            Triple::new(3u32, 4u32, 4u32),
        ]);
        let model = RmpiModel::new(RmpiConfig { dim: 8, ne: true, ..RmpiConfig::base() }, 6, 0);
        Engine::new(model, graph, EngineConfig { seed: 9, cache_capacity: cache, threads })
    }

    #[test]
    fn scores_match_offline_on_miss_and_hit() {
        let engine = setup(1, 16);
        let t = Triple::new(0u32, 5u32, 3u32);
        let offline = engine.model().score(engine.graph(), t, &mut StdRng::seed_from_u64(9));
        let miss = engine.score(t).unwrap();
        let hit = engine.score(t).unwrap();
        assert_eq!(miss, offline, "cache miss must equal offline scoring");
        assert_eq!(hit, offline, "cache hit must equal offline scoring");
        let (hits, misses, len) = engine.cache_stats();
        assert_eq!((hits, misses, len), (1, 1, 1));
    }

    #[test]
    fn batch_scores_are_thread_count_invariant() {
        let targets: Vec<Triple> =
            (0..12u32).map(|i| Triple::new(i % 5, i % 6, (i + 1) % 5)).collect();
        let sequential = setup(1, 64).score_batch(&targets).unwrap();
        for threads in [2, 4] {
            let parallel = setup(threads, 64).score_batch(&targets).unwrap();
            assert_eq!(sequential, parallel, "threads={threads}");
        }
        // and caching does not change batch results either
        let uncached = setup(1, 0).score_batch(&targets).unwrap();
        assert_eq!(sequential, uncached);
    }

    #[test]
    fn unknown_relation_is_an_error_not_a_panic() {
        let engine = setup(1, 4);
        let err = engine.score(Triple::new(0u32, 17u32, 1u32)).unwrap_err();
        assert!(matches!(err, ServeError::UnknownRelation(17)), "{err}");
        assert!(engine.rank_tails(EntityId(0), RelationId(17), 3).is_err());
        assert!(engine
            .score_batch(&[Triple::new(0u32, 0u32, 1u32), Triple::new(0u32, 17u32, 1u32)])
            .is_err());
    }

    #[test]
    fn rank_tails_returns_sorted_top_k() {
        let engine = setup(2, 64);
        let ranked = engine.rank_tails(EntityId(0), RelationId(1), 3).unwrap();
        assert_eq!(ranked.len(), 3);
        for pair in ranked.windows(2) {
            assert!(pair[0].1 >= pair[1].1, "scores must be descending: {ranked:?}");
        }
        // parity with direct scoring of the winner
        let (best, best_score) = ranked[0];
        let direct = engine.score(Triple { head: EntityId(0), relation: RelationId(1), tail: best }).unwrap();
        assert_eq!(direct, best_score);
    }

    #[test]
    fn stats_json_reflects_traffic() {
        let engine = setup(1, 8);
        let t = Triple::new(0u32, 1u32, 2u32);
        engine.score(t).unwrap();
        engine.score(t).unwrap();
        let json = engine.stats_json();
        assert!(json.contains("\"score_requests\": 2"), "{json}");
        assert!(json.contains("\"cache_hits\": 1"), "{json}");
        assert!(json.contains("\"cache_misses\": 1"), "{json}");
    }

    #[test]
    fn clear_cache_forces_reextraction_with_same_result() {
        let engine = setup(1, 8);
        let t = Triple::new(0u32, 1u32, 2u32);
        let a = engine.score(t).unwrap();
        engine.clear_cache();
        let b = engine.score(t).unwrap();
        assert_eq!(a, b);
        let (_, misses, _) = engine.cache_stats();
        assert_eq!(misses, 2, "both lookups missed after the clear");
    }
}
