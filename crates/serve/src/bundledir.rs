//! Bundle *directories*: a model bundle plus an optional on-disk graph,
//! packaged as one self-describing directory artifact.
//!
//! A single-file [`crate::bundle`] carries everything a model needs — but a
//! store-backed deployment also needs the graph, and a multi-gigabyte store
//! does not belong inside a text artifact. A bundle directory keeps each
//! piece as its own file and binds them together with a `BUNDLE` manifest
//! listing every section's byte length and FNV-64 checksum:
//!
//! ```text
//! my-model.bundled/
//!   BUNDLE                        # manifest, written last (commit point)
//!   params.bundle                 # an ordinary rmpi-bundle v1 file
//!   graph/MANIFEST                # optional: a verbatim rmpi-store directory
//!   graph/index.bin
//!   graph/fwd-00000.seg
//!   graph/inv-00000.seg
//! ```
//!
//! ```text
//! rmpi-bundle-dir v1
//! section params params.bundle <bytes> <fnv64>
//! section graph graph/MANIFEST <bytes> <fnv64>
//! section graph graph/index.bin <bytes> <fnv64>
//! ...
//! end
//! ```
//!
//! [`load_bundle_dir`] verifies every section's size and checksum **before**
//! parsing anything, so corruption is reported against the offending file —
//! [`ServeError::Checksum`] names it — rather than surfacing later as a
//! confusing parse error deep inside the tensor or segment readers. The
//! `BUNDLE` manifest is written last via temp + rename: a crashed save
//! leaves a directory without a manifest, recognisably not a bundle.

use crate::bundle::{load_bundle_file, save_bundle, Bundle};
use crate::error::ServeError;
use rmpi_autograd::io::atomic_write_bytes;
use rmpi_core::RmpiModel;
use rmpi_store::{
    fnv64, Fnv64, Manifest as StoreManifest, ReadMode, ScrubReport, ScrubSection, StoreReader,
    INDEX_NAME, MANIFEST_NAME,
};
use std::fs::File;
use std::io::{BufReader, Read, Write};
use std::path::{Component, Path, PathBuf};

/// Manifest file name inside a bundle directory.
pub const DIR_MANIFEST_NAME: &str = "BUNDLE";

/// Magic first line of the directory manifest.
const DIR_MAGIC: &str = "rmpi-bundle-dir v1";

/// File name of the model-bundle section.
pub const PARAMS_FILE: &str = "params.bundle";

/// Subdirectory holding the graph store sections.
pub const GRAPH_DIR: &str = "graph";

/// One section of a bundle directory, as recorded in `BUNDLE`.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Section {
    /// `params` or `graph`.
    kind: String,
    /// Path relative to the bundle directory (`/`-separated).
    rel: String,
    /// Byte length of the file.
    bytes: u64,
    /// FNV-1a 64 of the file's bytes.
    checksum: u64,
}

/// Serialise `model` (and, when `store_dir` is given, the graph store at
/// that path) into the bundle directory `dir`.
///
/// The store is copied file-by-file into `<dir>/graph/` exactly as its own
/// MANIFEST lists it; each copy is hashed on the way through. The `BUNDLE`
/// manifest lands last, atomically, so an interrupted save never leaves a
/// loadable-looking artifact.
pub fn save_bundle_dir(
    dir: impl AsRef<Path>,
    model: &RmpiModel,
    relation_names: &[String],
    store_dir: Option<&Path>,
) -> Result<(), ServeError> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;

    let mut params = Vec::new();
    save_bundle(&mut params, model, relation_names)?;
    atomic_write_bytes(dir.join(PARAMS_FILE), &params)?;
    let mut sections = vec![Section {
        kind: "params".into(),
        rel: PARAMS_FILE.into(),
        bytes: params.len() as u64,
        checksum: fnv64(&params),
    }];

    if let Some(src) = store_dir {
        let text = std::fs::read_to_string(src.join(MANIFEST_NAME))?;
        let manifest = StoreManifest::parse(&text)?;
        let graph_dir = dir.join(GRAPH_DIR);
        std::fs::create_dir_all(&graph_dir)?;
        let mut files = vec![MANIFEST_NAME.to_string(), INDEX_NAME.to_string()];
        files.extend(manifest.fwd.iter().chain(manifest.inv.iter()).map(|s| s.file.clone()));
        for file in files {
            let (bytes, checksum) = copy_hashed(&src.join(&file), &graph_dir.join(&file))?;
            sections.push(Section {
                kind: "graph".into(),
                rel: format!("{GRAPH_DIR}/{file}"),
                bytes,
                checksum,
            });
        }
    }

    let mut text = format!("{DIR_MAGIC}\n");
    for s in &sections {
        text.push_str(&format!("section {} {} {} {:016x}\n", s.kind, s.rel, s.bytes, s.checksum));
    }
    text.push_str("end\n");
    atomic_write_bytes(dir.join(DIR_MANIFEST_NAME), text.as_bytes())?;
    Ok(())
}

/// Stream-copy `src` to `dst`, returning the byte count and FNV-64 of the
/// copied data.
fn copy_hashed(src: &Path, dst: &Path) -> Result<(u64, u64), ServeError> {
    let mut r = BufReader::with_capacity(1 << 16, File::open(src)?);
    let mut w = File::create(dst)?;
    let mut hash = Fnv64::new();
    let mut total = 0u64;
    let mut buf = [0u8; 1 << 16];
    loop {
        let n = r.read(&mut buf)?;
        if n == 0 {
            break;
        }
        hash.update(&buf[..n]);
        w.write_all(&buf[..n])?;
        total += n as u64;
    }
    w.sync_all()?;
    Ok((total, hash.finish()))
}

/// Load a bundle directory: verify every section against the `BUNDLE`
/// manifest (size, then checksum), parse the model bundle, and — when graph
/// sections are present — open a [`StoreReader`] over `<dir>/graph` in the
/// requested [`ReadMode`].
///
/// Verification failures name the file: a size mismatch is a
/// [`ServeError::Manifest`] pointing at the section's manifest line, a hash
/// mismatch is a [`ServeError::Checksum`] whose `section` is the file's
/// relative path.
pub fn load_bundle_dir(
    dir: impl AsRef<Path>,
    mode: ReadMode,
) -> Result<(Bundle, Option<StoreReader>), ServeError> {
    let dir = dir.as_ref();
    let text = std::fs::read_to_string(dir.join(DIR_MANIFEST_NAME))?;
    let sections = parse_dir_manifest(&text)?;

    // Verify every section before parsing any of them: a corrupt byte is
    // reported against its file, never as a downstream parse error.
    for (s, at) in &sections {
        let path = section_path(dir, &s.rel, *at)?;
        let actual_len = std::fs::metadata(&path).map_err(ServeError::Io)?.len();
        if actual_len != s.bytes {
            return Err(ServeError::Manifest {
                line: at.line,
                offset: at.offset,
                message: format!(
                    "section {} is {actual_len} bytes on disk, manifest says {}",
                    s.rel, s.bytes
                ),
            });
        }
        let actual = hash_file(&path)?;
        if actual != s.checksum {
            return Err(ServeError::Checksum {
                section: s.rel.clone(),
                expected: s.checksum,
                actual,
            });
        }
    }

    let params =
        sections.iter().find(|(s, _)| s.kind == "params").ok_or_else(|| ServeError::Manifest {
            line: text.lines().count(),
            offset: 0,
            message: "bundle directory has no params section".into(),
        })?;
    let bundle = load_bundle_file(dir.join(&params.0.rel))?;

    let reader = if sections.iter().any(|(s, _)| s.kind == "graph") {
        Some(StoreReader::open(dir.join(GRAPH_DIR), mode)?)
    } else {
        None
    };
    Ok((bundle, reader))
}

/// Scrub a bundle directory: verify every `BUNDLE` section's size and
/// checksum, then — when graph sections are present — run the store's own
/// block-level scrub over `<dir>/graph` so damage is located to a 64 KiB
/// block, not just a file. Unlike [`load_bundle_dir`] this keeps going after
/// the first problem, so one pass reports *all* damage. `Err` only when
/// `dir` has no `BUNDLE` manifest at all or the directory is unreadable.
pub fn scrub_bundle_dir(dir: impl AsRef<Path>) -> Result<ScrubReport, ServeError> {
    let dir = dir.as_ref();
    let text = std::fs::read_to_string(dir.join(DIR_MANIFEST_NAME))?;
    let mut report = ScrubReport::default();
    let sections = match parse_dir_manifest(&text) {
        Ok(s) => s,
        Err(e) => {
            report.sections.push(ScrubSection {
                file: DIR_MANIFEST_NAME.into(),
                bytes: text.len() as u64,
                blocks_checked: 0,
                error: Some(e.to_string()),
            });
            return Ok(report);
        }
    };
    report.sections.push(ScrubSection {
        file: DIR_MANIFEST_NAME.into(),
        bytes: text.len() as u64,
        blocks_checked: 0,
        error: None,
    });

    let mut has_graph = false;
    for (s, at) in &sections {
        has_graph |= s.kind == "graph";
        let error = match section_path(dir, &s.rel, *at) {
            Ok(path) => verify_section(&path, s),
            Err(e) => Some(e.to_string()),
        };
        report.sections.push(ScrubSection {
            file: s.rel.clone(),
            bytes: s.bytes,
            blocks_checked: 0,
            error,
        });
    }

    // Second, finer-grained pass over the embedded store: per-block
    // checksums narrow any graph damage to its 64 KiB block.
    if has_graph {
        match rmpi_store::scrub_store(dir.join(GRAPH_DIR)) {
            Ok(inner) => report.sections.extend(inner.sections.into_iter().map(|mut sec| {
                sec.file = format!("{GRAPH_DIR}/{}", sec.file);
                sec
            })),
            Err(e) => report.sections.push(ScrubSection {
                file: format!("{GRAPH_DIR}/"),
                bytes: 0,
                blocks_checked: 0,
                error: Some(e.to_string()),
            }),
        }
    }
    Ok(report)
}

/// Size-then-checksum verification of one `BUNDLE` section; `None` = clean.
fn verify_section(path: &Path, s: &Section) -> Option<String> {
    let len = match std::fs::metadata(path) {
        Ok(m) => m.len(),
        Err(e) => return Some(e.to_string()),
    };
    if len != s.bytes {
        return Some(format!("expected {} bytes, found {len}", s.bytes));
    }
    match hash_file(path) {
        Ok(h) if h == s.checksum => None,
        Ok(h) => Some(format!("checksum mismatch: manifest {:016x}, file {h:016x}", s.checksum)),
        Err(e) => Some(e.to_string()),
    }
}

/// FNV-64 of a whole file, streamed.
fn hash_file(path: &Path) -> Result<u64, ServeError> {
    let mut r = BufReader::with_capacity(1 << 16, File::open(path)?);
    let mut hash = Fnv64::new();
    let mut buf = [0u8; 1 << 16];
    loop {
        let n = r.read(&mut buf)?;
        if n == 0 {
            break;
        }
        hash.update(&buf[..n]);
    }
    Ok(hash.finish())
}

/// Position of a manifest line, for error reporting.
#[derive(Clone, Copy)]
struct At {
    line: usize,
    offset: u64,
}

/// Resolve a section's relative path, rejecting anything that could escape
/// the bundle directory (absolute paths, `..`).
fn section_path(dir: &Path, rel: &str, at: At) -> Result<PathBuf, ServeError> {
    let p = Path::new(rel);
    let safe = p.components().all(|c| matches!(c, Component::Normal(_)));
    if !safe || rel.is_empty() {
        return Err(ServeError::Manifest {
            line: at.line,
            offset: at.offset,
            message: format!("unsafe section path {rel:?}"),
        });
    }
    Ok(dir.join(p))
}

/// Parse the `BUNDLE` manifest into sections, each tagged with its line
/// number and byte offset for error reporting.
fn parse_dir_manifest(text: &str) -> Result<Vec<(Section, At)>, ServeError> {
    let err = |at: At, message: String| ServeError::Manifest {
        line: at.line,
        offset: at.offset,
        message,
    };
    let mut offset = 0u64;
    let mut sections = Vec::new();
    let mut saw_magic = false;
    let mut saw_end = false;
    for (i, line) in text.lines().enumerate() {
        let at = At { line: i + 1, offset };
        offset += line.len() as u64 + 1;
        if !saw_magic {
            if line != DIR_MAGIC {
                return Err(err(at, format!("bad header {line:?}")));
            }
            saw_magic = true;
            continue;
        }
        if saw_end {
            return Err(err(at, "content after `end`".into()));
        }
        if line.trim().is_empty() {
            continue;
        }
        if line.trim() == "end" {
            saw_end = true;
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("section") => {
                let kind =
                    parts.next().ok_or_else(|| err(at, "section needs a kind".into()))?.to_string();
                if kind != "params" && kind != "graph" {
                    return Err(err(at, format!("unknown section kind {kind:?}")));
                }
                let rel =
                    parts.next().ok_or_else(|| err(at, "section needs a path".into()))?.to_string();
                let bytes = parts
                    .next()
                    .ok_or_else(|| err(at, "section needs a byte count".into()))?
                    .parse::<u64>()
                    .map_err(|e| err(at, format!("bad section byte count: {e}")))?;
                let checksum = parts
                    .next()
                    .and_then(|t| u64::from_str_radix(t, 16).ok())
                    .ok_or_else(|| err(at, "section needs a 16-hex-digit checksum".into()))?;
                if parts.next().is_some() {
                    return Err(err(at, "trailing tokens on section line".into()));
                }
                sections.push((Section { kind, rel, bytes, checksum }, at));
            }
            Some(other) => return Err(err(at, format!("unknown key {other:?}"))),
            None => {}
        }
    }
    if !saw_magic {
        return Err(err(At { line: 1, offset: 0 }, "empty bundle directory manifest".into()));
    }
    if !saw_end {
        return Err(err(
            At { line: text.lines().count(), offset },
            "missing `end` (truncated manifest)".into(),
        ));
    }
    Ok(sections)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmpi_core::RmpiConfig;
    use rmpi_kg::{KnowledgeGraph, Triple};
    use rmpi_store::{build_from_graph, StoreConfig};
    use std::path::PathBuf;

    fn toy_graph() -> KnowledgeGraph {
        KnowledgeGraph::from_triples(vec![
            Triple::new(0u32, 0u32, 1u32),
            Triple::new(1u32, 1u32, 3u32),
            Triple::new(0u32, 2u32, 2u32),
            Triple::new(2u32, 3u32, 3u32),
        ])
    }

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rmpi-bdir-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn model() -> RmpiModel {
        RmpiModel::new(RmpiConfig { dim: 4, ..RmpiConfig::base() }, 4, 7)
    }

    #[test]
    fn roundtrips_with_graph_section() {
        let root = scratch("roundtrip");
        let store_dir = root.join("world.store");
        build_from_graph(
            &store_dir,
            StoreConfig { seg_records: 2, ..StoreConfig::default() },
            &toy_graph(),
        )
        .unwrap();
        let bdir = root.join("model.bundled");
        let names = vec!["a".into(), "b".into(), "c".into(), "d".into()];
        save_bundle_dir(&bdir, &model(), &names, Some(&store_dir)).unwrap();

        let (bundle, reader) = load_bundle_dir(&bdir, ReadMode::Resident).unwrap();
        assert_eq!(bundle.relation_names, names);
        assert_eq!(bundle.model.num_relations(), 4);
        let reader = reader.expect("graph sections must open a reader");
        assert_eq!(reader.num_triples(), 4);
        assert_eq!(reader.num_entities(), 4);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn roundtrips_without_graph() {
        let root = scratch("nograph");
        let bdir = root.join("model.bundled");
        save_bundle_dir(&bdir, &model(), &[], None).unwrap();
        let (bundle, reader) = load_bundle_dir(&bdir, ReadMode::Resident).unwrap();
        assert_eq!(bundle.model.num_relations(), 4);
        assert!(reader.is_none());
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn corrupt_graph_segment_is_rejected_naming_the_file() {
        let root = scratch("corrupt-seg");
        let store_dir = root.join("world.store");
        build_from_graph(&store_dir, StoreConfig::default(), &toy_graph()).unwrap();
        let bdir = root.join("model.bundled");
        save_bundle_dir(&bdir, &model(), &[], Some(&store_dir)).unwrap();

        // flip one byte in the forward segment — size unchanged, so only
        // the checksum can catch it
        let seg = bdir.join(GRAPH_DIR).join("fwd-00000.seg");
        let mut bytes = std::fs::read(&seg).unwrap();
        bytes[0] ^= 0xff;
        std::fs::write(&seg, bytes).unwrap();

        let err = load_bundle_dir(&bdir, ReadMode::Resident).unwrap_err();
        match &err {
            ServeError::Checksum { section, expected, actual } => {
                assert_eq!(section, "graph/fwd-00000.seg");
                assert_ne!(expected, actual);
            }
            other => panic!("expected checksum error, got {other}"),
        }
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn corrupt_params_is_rejected_naming_the_file() {
        let root = scratch("corrupt-params");
        let bdir = root.join("model.bundled");
        save_bundle_dir(&bdir, &model(), &[], None).unwrap();

        let path = bdir.join(PARAMS_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 2;
        bytes[last] ^= 0x01;
        std::fs::write(&path, bytes).unwrap();

        let err = load_bundle_dir(&bdir, ReadMode::Resident).unwrap_err();
        assert!(
            matches!(&err, ServeError::Checksum { section, .. } if section == PARAMS_FILE),
            "{err}"
        );
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn truncated_section_reports_its_manifest_line() {
        let root = scratch("truncated");
        let store_dir = root.join("world.store");
        build_from_graph(&store_dir, StoreConfig::default(), &toy_graph()).unwrap();
        let bdir = root.join("model.bundled");
        save_bundle_dir(&bdir, &model(), &[], Some(&store_dir)).unwrap();

        let seg = bdir.join(GRAPH_DIR).join("inv-00000.seg");
        let bytes = std::fs::read(&seg).unwrap();
        std::fs::write(&seg, &bytes[..bytes.len() - 1]).unwrap();

        let err = load_bundle_dir(&bdir, ReadMode::Resident).unwrap_err();
        match &err {
            ServeError::Manifest { line, message, .. } => {
                assert!(message.contains("inv-00000.seg"), "{message}");
                assert!(*line > 1, "error must carry the section's line, got {line}");
            }
            other => panic!("expected manifest error, got {other}"),
        }
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn rejects_unsafe_section_paths_and_bad_manifests() {
        let root = scratch("hostile");
        let bdir = root.join("model.bundled");
        save_bundle_dir(&bdir, &model(), &[], None).unwrap();

        let manifest = bdir.join(DIR_MANIFEST_NAME);
        let original = std::fs::read_to_string(&manifest).unwrap();

        // path traversal
        let hostile = original.replace(PARAMS_FILE, "../escape");
        std::fs::write(&manifest, &hostile).unwrap();
        let err = load_bundle_dir(&bdir, ReadMode::Resident).unwrap_err();
        assert!(err.to_string().contains("unsafe section path"), "{err}");

        // truncation (no `end`)
        std::fs::write(&manifest, original.replace("end\n", "")).unwrap();
        let err = load_bundle_dir(&bdir, ReadMode::Resident).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");

        // bad magic
        std::fs::write(&manifest, original.replace("v1", "v9")).unwrap();
        let err = load_bundle_dir(&bdir, ReadMode::Resident).unwrap_err();
        assert!(matches!(err, ServeError::Manifest { line: 1, .. }), "{err}");
        std::fs::remove_dir_all(&root).unwrap();
    }
}
