//! The std-only TCP front end: a line-delimited protocol over a bounded
//! connection queue with backpressure, per-request deadlines, and graceful
//! shutdown.
//!
//! # Architecture
//!
//! One acceptor thread owns the listener. Accepted connections become jobs in
//! a bounded `Mutex<VecDeque>` + `Condvar` queue; a fixed set of connection
//! workers pops jobs and speaks the protocol (see [`crate::protocol`]) until
//! the client disconnects. Scoring itself happens inside the shared
//! [`Engine`], whose own pool shards score batches — connection workers only
//! parse, dispatch and format.
//!
//! # Dynamic batching and protocol v2
//!
//! With batching enabled (the default), `SCORE`/`RANK` requests are not
//! scored by the connection worker: they are submitted to the shared
//! cross-connection micro-batcher ([`crate::batcher`]), which coalesces
//! everything arriving within `batch_window` into one `Engine::run_batch`
//! call. A v1 connection's worker blocks on its item's result, preserving
//! strict in-order responses while still coalescing with other connections.
//!
//! A connection that sends `PROTO 2` (answered `OK proto=2`) switches to
//! protocol v2: requests carry client-chosen `ID <n>` tags, responses echo
//! them, and replies may return out of order — the worker keeps reading
//! while batched answers are in flight, and a dedicated per-connection
//! writer thread serialises response writes (batched verbs deliver from the
//! batcher thread; cheap verbs answer inline). One connection can therefore
//! keep N requests in flight, and concurrent tagged requests from one
//! socket batch together exactly like requests from N sockets.
//!
//! # Backpressure and deadlines
//!
//! When the queue is full the acceptor does not block or buffer: it answers
//! the new connection with `ERR server overloaded` and closes it, so load
//! shedding is explicit and immediate. Every queued job carries its enqueue
//! time; if it waits longer than the configured request timeout before a
//! worker picks it up, the worker answers `ERR deadline expired` and closes
//! the connection without scoring. The same timeout also bounds socket reads
//! so an idle client cannot pin a worker forever.
//!
//! # Shutdown
//!
//! [`ServerHandle::shutdown`] flips a stop flag, wakes the acceptor with a
//! self-connection, drains the workers via the condvar, and joins every
//! thread. Dropping the handle shuts down implicitly.
//!
//! # Fault isolation
//!
//! Every request line is answered under `catch_unwind`: a panic anywhere in
//! parsing, scoring or formatting becomes a single `ERR internal: ...` line
//! and the connection (and worker) keep serving. `HEALTH` is the readiness
//! probe; `RELOAD <path>` hot-swaps the served bundle through
//! [`Engine::reload_from`], which validates before swapping and keeps the
//! old model on rejection.
//!
//! # Connection hardening
//!
//! A misbehaving or hostile peer cannot pin resources:
//!
//! - request lines are read through [`crate::lineio::read_line_bounded`], so
//!   a line over `max_line_len` is answered `ERR request too long` and the
//!   connection closed (counted in `serve.rejected_overlong`) instead of
//!   buffering without bound;
//! - every accepted socket gets read **and write** timeouts; if either
//!   cannot be set the connection is shed (`serve.sock_config_failures`)
//!   rather than served unbounded;
//! - a connection that sends nothing for `idle_timeout` is closed
//!   (`serve.idle_closed`), releasing its worker;
//! - at most `max_connections` connections are admitted at once; the rest
//!   are answered `ERR too many connections` (`serve.rejected_conn_limit`).

use crate::batcher::{BatchConfig, Batcher};
use crate::engine::{BatchItem, BatchOutcome, Engine};
use crate::error::ServeError;
use crate::lineio::{read_line_bounded, LineRead};
use crate::protocol::{
    format_error, format_ranked, format_scores, format_tagged, parse_request, parse_tagged, Request,
};
use std::collections::VecDeque;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// TCP front-end knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port (tests, benches).
    pub addr: String,
    /// Connection worker threads (protocol handling, not scoring).
    pub workers: usize,
    /// Bounded queue capacity; connections beyond it are rejected with
    /// `ERR server overloaded`.
    pub queue_capacity: usize,
    /// Queue-wait deadline per connection.
    pub request_timeout: Duration,
    /// Maximum request-line length in bytes; longer lines are answered
    /// `ERR request too long` and the connection is closed.
    pub max_line_len: usize,
    /// Socket read timeout: a connection that sends nothing for this long is
    /// closed and counted in `serve.idle_closed`.
    pub idle_timeout: Duration,
    /// Socket write timeout: a peer that stops draining responses for this
    /// long has its connection closed.
    pub write_timeout: Duration,
    /// Concurrent-connection cap (queued + being served). Connections beyond
    /// it are answered `ERR too many connections`.
    pub max_connections: usize,
    /// Route `SCORE`/`RANK` through the cross-connection micro-batcher.
    /// Off, every request is scored by its own engine call, as before PR 9.
    pub batching: bool,
    /// Micro-batcher window: how long the first queued request may wait for
    /// company before its batch flushes (the latency floor under light load).
    pub batch_window: Duration,
    /// Micro-batcher flat-target budget per flush (scores count one per
    /// triple, ranks one per ranking candidate).
    pub batch_max: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_capacity: 64,
            request_timeout: Duration::from_secs(5),
            max_line_len: 64 * 1024,
            idle_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            max_connections: 256,
            batching: true,
            batch_window: Duration::from_millis(1),
            batch_max: 256,
        }
    }
}

struct Job {
    stream: TcpStream,
    enqueued: Instant,
    /// Decrements the active-connection count when the job is done or shed.
    _guard: ConnGuard,
}

/// RAII active-connection slot: one per admitted connection, released on
/// drop whether the connection was served, shed at the deadline, or its
/// worker bailed out.
struct ConnGuard(Arc<Shared>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.active.fetch_sub(1, Ordering::SeqCst);
    }
}

struct Shared {
    engine: Arc<Engine>,
    /// The cross-connection micro-batcher; `None` when batching is off.
    batcher: Option<Arc<Batcher>>,
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    stop: AtomicBool,
    timeout: Duration,
    max_line_len: usize,
    idle_timeout: Duration,
    write_timeout: Duration,
    max_connections: usize,
    /// Admitted connections (queued + in service).
    active: AtomicUsize,
}

/// A running server; owns its threads. [`ServerHandle::shutdown`] (or drop)
/// stops it.
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
    threads: Vec<JoinHandle<()>>,
}

/// Bind a listener and spawn the acceptor and connection workers.
pub fn serve(engine: Arc<Engine>, cfg: ServerConfig) -> Result<ServerHandle, ServeError> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let batcher = cfg.batching.then(|| {
        Arc::new(Batcher::new(
            Arc::clone(&engine),
            BatchConfig { window: cfg.batch_window, max_batch: cfg.batch_max },
        ))
    });
    let shared = Arc::new(Shared {
        engine,
        batcher,
        queue: Mutex::new(VecDeque::new()),
        available: Condvar::new(),
        stop: AtomicBool::new(false),
        timeout: cfg.request_timeout,
        max_line_len: cfg.max_line_len.max(16),
        idle_timeout: cfg.idle_timeout,
        write_timeout: cfg.write_timeout,
        max_connections: cfg.max_connections.max(1),
        active: AtomicUsize::new(0),
    });

    let mut threads = Vec::with_capacity(cfg.workers + 1);
    let capacity = cfg.queue_capacity.max(1);
    {
        let shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name("rmpi-serve-accept".into())
                .spawn(move || accept_loop(&shared, listener, capacity))
                .map_err(ServeError::Io)?,
        );
    }
    for w in 0..cfg.workers.max(1) {
        let shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name(format!("rmpi-serve-conn-{w}"))
                .spawn(move || worker_loop(&shared))
                .map_err(ServeError::Io)?,
        );
    }

    Ok(ServerHandle { shared, addr, threads })
}

impl ServerHandle {
    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The served engine (for stats inspection alongside the wire API).
    pub fn engine(&self) -> &Engine {
        &self.shared.engine
    }

    /// Stop accepting, drain nothing further, join all threads. Idempotent.
    pub fn shutdown(&mut self) {
        if self.shared.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // wake the acceptor out of accept() with a throwaway connection
        let _ = TcpStream::connect(self.addr);
        self.shared.available.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        // only after the workers are gone (no further submissions): drain
        // and stop the batcher
        if let Some(batcher) = &self.shared.batcher {
            batcher.shutdown();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: TcpListener, capacity: usize) {
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        // connection cap first: it bounds total sockets held open, which the
        // queue cap alone does not (conns being served are off the queue)
        if shared.active.load(Ordering::SeqCst) >= shared.max_connections {
            shared.engine.stats().rejected_conn_limit.inc();
            let mut s = stream;
            let _ = writeln!(s, "{}", format_error(&ServeError::ConnLimit));
            continue;
        }
        let mut queue = shared.queue.lock().expect("serve queue lock");
        if queue.len() >= capacity {
            drop(queue);
            shared.engine.stats().rejected_overload.inc();
            let mut s = stream;
            let _ = writeln!(s, "{}", format_error(&ServeError::Overloaded));
            continue; // dropping `s` closes the connection: explicit load shedding
        }
        shared.active.fetch_add(1, Ordering::SeqCst);
        let guard = ConnGuard(Arc::clone(shared));
        queue.push_back(Job { stream, enqueued: Instant::now(), _guard: guard });
        shared.engine.stats().queue_depth.set(queue.len() as i64);
        drop(queue);
        shared.available.notify_one();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("serve queue lock");
            loop {
                if let Some(job) = queue.pop_front() {
                    shared.engine.stats().queue_depth.set(queue.len() as i64);
                    break job;
                }
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                queue = shared.available.wait(queue).expect("serve queue lock");
            }
        };
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        handle_connection(shared, job);
    }
}

fn handle_connection(shared: &Shared, job: Job) {
    let mut stream = job.stream;
    let waited = job.enqueued.elapsed();
    shared.engine.stats().queue_wait.record_duration(waited);
    // deadline check at dequeue: a job that sat in the queue past the
    // request timeout is shed, not served late
    if waited > shared.timeout {
        shared.engine.stats().rejected_deadline.inc();
        let _ = writeln!(stream, "{}", format_error(&ServeError::DeadlineExpired));
        return;
    }
    // Surfacing these failures matters: serving a socket whose reads or
    // writes can block forever would pin a worker, so the connection is shed
    // instead (and counted, so the condition is visible in METRICS).
    if stream
        .set_read_timeout(Some(shared.idle_timeout))
        .and_then(|()| stream.set_write_timeout(Some(shared.write_timeout)))
        .is_err()
    {
        shared.engine.stats().sock_config_failures.inc();
        return;
    }
    let _ = stream.set_nodelay(true);
    let mut reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return,
    };
    let mut line = String::new();
    // protocol v2 state, set on `PROTO 2`: all writes move to a dedicated
    // writer thread fed through a channel, so batched answers delivered from
    // the batcher thread and inline answers from this worker serialise
    // without a lock — and a slow client stalls only its own writer
    let mut v2: Option<V2Writer> = None;
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        match read_line_bounded(&mut reader, &mut line, shared.max_line_len) {
            Ok(LineRead::Line) => {}
            Ok(LineRead::TooLong) => {
                shared.engine.stats().rejected_overlong.inc();
                let err = ServeError::OverlongRequest { limit: shared.max_line_len };
                let framed = format_error(&err);
                match &v2 {
                    Some(writer) => {
                        let _ = writer.tx.send(framed);
                    }
                    None => {
                        let _ = writeln!(stream, "{framed}");
                    }
                }
                break; // can't resync mid-line reliably from a hostile peer
            }
            // clean disconnect, or a cut connection mid-line: nothing to answer
            Ok(LineRead::Eof) | Ok(LineRead::Partial) => break,
            Err(e) => {
                if matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut)
                {
                    shared.engine.stats().idle_closed.inc();
                }
                break;
            }
        }
        if line.trim().is_empty() {
            continue;
        }
        match &v2 {
            Some(writer) => handle_v2_line(shared, &line, &writer.tx),
            None => {
                let response = respond(shared, &line);
                let upgrade = response == "OK proto=2";
                if writeln!(stream, "{response}").is_err() {
                    break;
                }
                if upgrade {
                    // the hello is on the wire (written above, in order);
                    // from here every response goes through the writer thread
                    match V2Writer::spawn(&stream) {
                        Some(writer) => v2 = Some(writer),
                        None => break,
                    }
                }
            }
        }
    }
    // v2 teardown: in-flight batched responders still hold channel senders,
    // so the writer thread keeps draining until the batcher has answered
    // every request this connection submitted — then the channel closes and
    // the join completes. Nothing in flight is ever silently dropped.
    if let Some(writer) = v2 {
        drop(writer.tx);
        let _ = writer.thread.join();
    }
}

/// The write side of a v2 connection: a channel-fed thread owning a clone of
/// the socket. The channel is the serialisation point — any thread holding a
/// sender may deliver a framed response line.
struct V2Writer {
    tx: mpsc::Sender<String>,
    thread: JoinHandle<()>,
}

impl V2Writer {
    fn spawn(stream: &TcpStream) -> Option<V2Writer> {
        let mut out = stream.try_clone().ok()?;
        let (tx, rx) = mpsc::channel::<String>();
        let thread = std::thread::Builder::new()
            .name("rmpi-serve-v2-write".into())
            .spawn(move || {
                // a failed write (peer gone, write timeout) ends the thread;
                // senders see the closed channel and drop their responses
                for response in rx {
                    if writeln!(out, "{response}").is_err() {
                        break;
                    }
                }
            })
            .ok()?;
        Some(V2Writer { tx, thread })
    }
}

/// Answer one v2 (tagged) request line. Batchable verbs are submitted to the
/// micro-batcher and answered asynchronously through `tx` when their flush
/// completes; everything else answers inline. Untagged or unparsable frames
/// get one **untagged** `ERR` line — there is no tag to attribute them to,
/// and inventing one could collide with a real in-flight request.
fn handle_v2_line(shared: &Shared, line: &str, tx: &mpsc::Sender<String>) {
    let stats = shared.engine.stats();
    let (tag, inner) = match parse_tagged(line) {
        Ok(parts) => parts,
        Err(err) => {
            stats.wire_requests.inc();
            stats.bad_requests.inc();
            let _ = tx.send(format_error(&err));
            return;
        }
    };
    // an optional `DEADLINE <ms>` prefix carries the caller's remaining
    // end-to-end budget (routers decrement it hop by hop); it tightens the
    // micro-batcher window for this item and sheds it once expired
    let (budget, inner) = split_deadline(inner);
    let deadline = budget.map(|b| Instant::now() + b);
    let batchable = matches!(wire_verb(inner), "score" | "rank");
    match (&shared.batcher, batchable) {
        (Some(batcher), true) => {
            stats.wire_requests.inc();
            let t0 = Instant::now();
            let item = match parse_request(inner) {
                Ok(Request::Score(targets)) => BatchItem::Score(targets),
                Ok(Request::Rank { head, relation, k }) => BatchItem::Rank { head, relation, k },
                Ok(_) => unreachable!("wire_verb admitted only SCORE/RANK"),
                Err(err) => {
                    stats.bad_requests.inc();
                    stats.wire_latency(wire_verb(inner)).record_duration(t0.elapsed());
                    let _ = tx.send(format_tagged(tag, &format_error(&err)));
                    return;
                }
            };
            let verb = wire_verb(inner);
            let stats = stats.clone();
            let tx = tx.clone();
            batcher.submit_with_deadline(item, deadline, move |result| {
                stats.wire_latency(verb).record_duration(t0.elapsed());
                let response = match &result {
                    Ok(outcome) => format_outcome(outcome),
                    Err(err) => format_error(err),
                };
                let _ = tx.send(format_tagged(tag, &response));
            });
        }
        _ => {
            // cheap/admin verbs (and score/rank with batching off) answer in
            // request order; `respond` does its own counting
            let response = respond(shared, inner);
            let _ = tx.send(format_tagged(tag, &response));
        }
    }
}

/// Split an optional `DEADLINE <ms> ` prefix off a v2 request line. The
/// hint is advisory budget propagation: a missing or malformed hint leaves
/// the line untouched, so the normal parser reports malformed requests and
/// v1 semantics are never affected (v1 lines skip this path entirely).
fn split_deadline(inner: &str) -> (Option<Duration>, &str) {
    let Some(rest) = inner.strip_prefix("DEADLINE") else {
        return (None, inner);
    };
    if !rest.starts_with(|c: char| c.is_ascii_whitespace()) {
        return (None, inner);
    }
    let rest = rest.trim_start();
    let Some((ms, tail)) = rest.split_once(|c: char| c.is_ascii_whitespace()) else {
        return (None, inner);
    };
    match ms.parse::<u64>() {
        Ok(ms) => (Some(Duration::from_millis(ms)), tail.trim_start()),
        Err(_) => (None, inner),
    }
}

/// Format a batch outcome exactly as the direct dispatch path would.
fn format_outcome(outcome: &BatchOutcome) -> String {
    match outcome {
        BatchOutcome::Scores(scores) => format_scores(scores),
        BatchOutcome::Ranked(ranked) => format_ranked(ranked),
    }
}

/// Answer one request line. Split out of the socket loop so the protocol
/// semantics are testable without a live server. Runs the whole
/// parse → dispatch → format path under `catch_unwind`: a panicking request
/// becomes `ERR internal: ...` and the worker keeps serving.
fn respond(shared: &Shared, line: &str) -> String {
    let stats = shared.engine.stats();
    stats.wire_requests.inc();
    let t0 = Instant::now();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| dispatch(shared, line)));
    let result = match outcome {
        Ok(result) => result,
        Err(payload) => {
            // Engine-level catches count themselves; this only sees panics
            // that escaped the engine (parsing, formatting, bugs).
            stats.internal_errors.inc();
            Err(ServeError::Internal(rmpi_runtime::panic_message(payload.as_ref())))
        }
    };
    stats.wire_latency(wire_verb(line)).record_duration(t0.elapsed());
    match result {
        Ok(response) => response,
        Err(err) => {
            if matches!(err, ServeError::BadRequest(_)) {
                stats.bad_requests.inc();
            }
            format_error(&err)
        }
    }
}

/// The metric label for a request line's verb (`serve.wire.<verb>.us`).
/// Unknown or malformed commands share one `other` histogram so hostile
/// input cannot grow the registry unboundedly.
fn wire_verb(line: &str) -> &'static str {
    match line.split_whitespace().next() {
        Some("PING") => "ping",
        Some("SCORE") => "score",
        Some("RANK") => "rank",
        Some("STATS") => "stats",
        Some("METRICS") => "metrics",
        Some("HEALTH") => "health",
        Some("RELOAD") => "reload",
        Some("PROTO") => "proto",
        _ => "other",
    }
}

fn dispatch(shared: &Shared, line: &str) -> Result<String, ServeError> {
    parse_request(line).and_then(|req| match req {
        Request::Ping => Ok("OK pong".to_string()),
        Request::Stats => Ok(format!("OK {}", shared.engine.stats_json())),
        Request::Metrics => Ok(format!("OK {}", shared.engine.metrics_json())),
        Request::Health => {
            let model = shared.engine.model();
            // degraded still answers OK-prefixed: the process is alive and
            // serving cache hits, so failover probes must not kill it — but
            // operators (and tests) can see the store is quarantined
            let status = if shared.engine.is_degraded() { "degraded" } else { "healthy" };
            Ok(format!(
                "OK {status} relations={} entities={}",
                model.num_relations(),
                shared.engine.num_entities()
            ))
        }
        Request::Reload { path } => {
            shared.engine.reload_from(&path).map(|()| "OK reloaded".to_string())
        }
        Request::Proto { version: 2 } => Ok("OK proto=2".to_string()),
        Request::Proto { version } => {
            Err(ServeError::BadRequest(format!("unsupported protocol version {version}")))
        }
        // with batching on, the worker blocks on the coalesced flush — v1
        // connections keep strict in-order responses while their requests
        // share engine calls with every other connection in the window
        Request::Score(targets) => match &shared.batcher {
            Some(batcher) => {
                batcher.submit_wait(BatchItem::Score(targets)).map(|o| format_outcome(&o))
            }
            None => shared.engine.score_batch(&targets).map(|scores| format_scores(&scores)),
        },
        Request::Rank { head, relation, k } => match &shared.batcher {
            Some(batcher) => batcher
                .submit_wait(BatchItem::Rank { head, relation, k })
                .map(|o| format_outcome(&o)),
            None => shared.engine.rank_tails(head, relation, k).map(|r| format_ranked(&r)),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use rmpi_core::{RmpiConfig, RmpiModel};
    use rmpi_kg::{KnowledgeGraph, Triple};
    use std::io::BufRead;

    fn test_engine() -> Arc<Engine> {
        let graph = KnowledgeGraph::from_triples(vec![
            Triple::new(0u32, 0u32, 1u32),
            Triple::new(1u32, 1u32, 2u32),
            Triple::new(2u32, 2u32, 0u32),
        ]);
        let model = RmpiModel::new(RmpiConfig { dim: 8, ..RmpiConfig::base() }, 4, 0);
        Arc::new(Engine::with_registry(
            model,
            graph,
            EngineConfig { seed: 3, cache_capacity: 32, threads: 1 },
            Arc::new(rmpi_obs::MetricsRegistry::new()),
        ))
    }

    fn query(addr: SocketAddr, line: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        writeln!(stream, "{line}").expect("send");
        let mut reader = BufReader::new(stream);
        let mut response = String::new();
        reader.read_line(&mut response).expect("recv");
        response.trim_end().to_string()
    }

    #[test]
    fn serves_ping_score_rank_stats_over_tcp() {
        let engine = test_engine();
        let mut server = serve(Arc::clone(&engine), ServerConfig::default()).expect("serve");
        let addr = server.addr();

        assert_eq!(query(addr, "PING"), "OK pong");
        let health = query(addr, "HEALTH");
        assert!(health.starts_with("OK healthy"), "{health}");
        assert!(health.contains("relations=4"), "{health}");

        let scored = query(addr, "SCORE 0 1 2");
        let wire: f32 = scored.strip_prefix("OK ").expect(&scored).parse().expect("score");
        let direct = engine.score(Triple::new(0u32, 1u32, 2u32)).unwrap();
        assert_eq!(wire, direct, "wire score must equal in-process score");

        let ranked = query(addr, "RANK 0 1 2");
        assert!(ranked.starts_with("OK "), "{ranked}");
        assert_eq!(ranked[3..].split(' ').count(), 2);

        let stats = query(addr, "STATS");
        assert!(stats.starts_with("OK {"), "{stats}");
        assert!(stats.contains("\"wire_requests\""), "{stats}");

        let metrics = query(addr, "METRICS");
        assert!(metrics.starts_with("OK {"), "{metrics}");
        assert!(metrics.contains("\"serve.wire.score.us\""), "{metrics}");
        assert!(metrics.contains("\"serve.queue_wait.us\""), "{metrics}");
        assert!(metrics.contains("\"subgraph.cache_entries.count\""), "{metrics}");

        assert!(query(addr, "NOPE").starts_with("ERR bad request"));
        server.shutdown();
    }

    #[test]
    fn one_connection_can_send_many_requests() {
        let mut server = serve(test_engine(), ServerConfig::default()).expect("serve");
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        for _ in 0..3 {
            writeln!(stream, "SCORE 0 0 1 1 1 2").expect("send");
            let mut line = String::new();
            reader.read_line(&mut line).expect("recv");
            assert!(line.starts_with("OK "), "{line}");
            assert_eq!(line.trim_end().split(' ').count(), 3, "batch of 2 scores");
        }
        server.shutdown();
    }

    #[test]
    fn overload_is_rejected_not_queued() {
        // zero workers would hang; instead use 1 worker and capacity 1, then
        // wedge the worker with a held-open idle connection so further
        // connections pile into the bounded queue
        let engine = test_engine();
        let mut server = serve(
            Arc::clone(&engine),
            ServerConfig {
                workers: 1,
                queue_capacity: 1,
                request_timeout: Duration::from_millis(400),
                ..ServerConfig::default()
            },
        )
        .expect("serve");
        let addr = server.addr();

        // occupy the single worker: connected but silent until read timeout
        let wedge = TcpStream::connect(addr).expect("wedge connect");
        std::thread::sleep(Duration::from_millis(50));
        // fill the queue
        let _queued = TcpStream::connect(addr).expect("queued connect");
        std::thread::sleep(Duration::from_millis(50));
        // queue is full now: this one must be shed immediately
        let shed = TcpStream::connect(addr).expect("shed connect");
        let mut reader = BufReader::new(shed);
        let mut line = String::new();
        reader.read_line(&mut line).expect("recv");
        assert_eq!(line.trim_end(), "ERR server overloaded");
        assert!(engine.stats().rejected_overload.get() >= 1);

        drop(wedge);
        server.shutdown();
    }

    #[test]
    fn overlong_line_is_rejected_and_counted() {
        let engine = test_engine();
        let mut server = serve(
            Arc::clone(&engine),
            ServerConfig { max_line_len: 64, ..ServerConfig::default() },
        )
        .expect("serve");
        let long = format!("SCORE {}", "0 1 2 ".repeat(64));
        let reply = query(server.addr(), &long);
        assert_eq!(reply, "ERR request too long (over 64 bytes)");
        assert_eq!(engine.stats().rejected_overlong.get(), 1);
        // a line exactly at the cap still parses (and gets a normal answer)
        assert_eq!(query(server.addr(), "PING"), "OK pong");
        server.shutdown();
    }

    #[test]
    fn idle_connection_is_closed_and_counted() {
        let engine = test_engine();
        let mut server = serve(
            Arc::clone(&engine),
            ServerConfig { idle_timeout: Duration::from_millis(100), ..ServerConfig::default() },
        )
        .expect("serve");
        let stream = TcpStream::connect(server.addr()).expect("connect");
        let mut reader = BufReader::new(stream);
        // send nothing: the server must hang up after idle_timeout
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("read to eof");
        assert_eq!(n, 0, "server should close the idle connection, got {line:?}");
        assert_eq!(engine.stats().idle_closed.get(), 1);
        server.shutdown();
    }

    #[test]
    fn connection_cap_sheds_with_err_too_many_connections() {
        let engine = test_engine();
        let mut server = serve(
            Arc::clone(&engine),
            ServerConfig {
                workers: 1,
                max_connections: 1,
                idle_timeout: Duration::from_millis(500),
                ..ServerConfig::default()
            },
        )
        .expect("serve");
        let addr = server.addr();
        // occupy the single admitted slot with a held-open idle connection
        let wedge = TcpStream::connect(addr).expect("wedge connect");
        std::thread::sleep(Duration::from_millis(50));
        // the rejection is written (and the socket closed) before any request
        // arrives, so just read — writing could race a broken pipe
        let shed = TcpStream::connect(addr).expect("shed connect");
        let mut reply = String::new();
        BufReader::new(shed).read_line(&mut reply).expect("recv");
        assert_eq!(reply.trim_end(), "ERR too many connections");
        assert!(engine.stats().rejected_conn_limit.get() >= 1);
        drop(wedge);
        // slot released after the wedge closes: service resumes
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(query(addr, "PING"), "OK pong");
        server.shutdown();
    }

    #[test]
    fn proto2_pipelines_tagged_requests_on_one_connection() {
        let engine = test_engine();
        let mut server = serve(
            Arc::clone(&engine),
            ServerConfig { batch_window: Duration::from_millis(2), ..ServerConfig::default() },
        )
        .expect("serve");
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut line = String::new();

        writeln!(stream, "PROTO 2").expect("hello");
        reader.read_line(&mut line).expect("hello reply");
        assert_eq!(line.trim_end(), "OK proto=2");

        // eight requests in flight at once, one write: scores, a rank, a
        // ping, and one bad relation — every reply must carry its tag
        let mut pipelined = String::new();
        for tag in 0..5u64 {
            pipelined.push_str(&format!("ID {tag} SCORE {} 1 2\n", tag % 3));
        }
        pipelined.push_str("ID 5 RANK 0 1 2\n");
        pipelined.push_str("ID 6 PING\n");
        pipelined.push_str("ID 7 SCORE 0 9 1\n");
        stream.write_all(pipelined.as_bytes()).expect("pipeline");

        let mut replies = std::collections::HashMap::new();
        for _ in 0..8 {
            line.clear();
            reader.read_line(&mut line).expect("reply");
            let (tag, rest) = crate::protocol::parse_tagged(line.trim_end()).expect("tagged");
            assert!(replies.insert(tag, rest.to_string()).is_none(), "duplicate tag {tag}");
        }
        for tag in 0..5u64 {
            let direct = engine.score(Triple::new((tag % 3) as u32, 1u32, 2u32)).unwrap();
            assert_eq!(replies[&tag], format!("OK {direct}"), "tag {tag}");
        }
        assert!(replies[&5].starts_with("OK "), "{}", replies[&5]);
        assert_eq!(replies[&6], "OK pong");
        assert_eq!(replies[&7], "ERR unknown relation id 9");

        // the concurrent tagged scores coalesced: at least one flush held
        // more than one request
        let max_batch = engine.stats().registry().histogram("serve.batch_size.count").max();
        assert!(max_batch > 1, "pipelined requests should batch, max batch = {max_batch}");

        // an untagged line on a v2 connection gets one untagged ERR frame
        writeln!(stream, "SCORE 0 1 2").expect("untagged");
        line.clear();
        reader.read_line(&mut line).expect("untagged reply");
        assert!(line.starts_with("ERR bad request"), "{line}");
        server.shutdown();
    }

    #[test]
    fn deadline_prefix_parsing() {
        let (budget, rest) = split_deadline("DEADLINE 40 SCORE 0 1 2");
        assert_eq!(budget, Some(Duration::from_millis(40)));
        assert_eq!(rest, "SCORE 0 1 2");
        // no hint, malformed hint, or a hint with nothing after it: the
        // line passes through untouched for the normal parser to judge
        assert_eq!(split_deadline("SCORE 0 1 2"), (None, "SCORE 0 1 2"));
        assert_eq!(split_deadline("DEADLINE x SCORE 0"), (None, "DEADLINE x SCORE 0"));
        assert_eq!(split_deadline("DEADLINE 40"), (None, "DEADLINE 40"));
        assert_eq!(split_deadline("DEADLINES 1 2"), (None, "DEADLINES 1 2"));
    }

    #[test]
    fn v2_deadline_hint_serves_in_time_and_sheds_late_items() {
        let engine = test_engine();
        let mut server = serve(
            Arc::clone(&engine),
            ServerConfig { batch_window: Duration::from_secs(600), ..ServerConfig::default() },
        )
        .expect("serve");
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut line = String::new();
        writeln!(stream, "PROTO 2").expect("hello");
        reader.read_line(&mut line).expect("hello reply");
        assert_eq!(line.trim_end(), "OK proto=2");

        // with a 600 s batch window only the DEADLINE hint can flush this
        // item while the test is alive
        writeln!(stream, "ID 1 DEADLINE 30 SCORE 0 1 2").expect("send");
        line.clear();
        reader.read_line(&mut line).expect("reply");
        let direct = engine.score(Triple::new(0u32, 1u32, 2u32)).unwrap();
        assert_eq!(line.trim_end(), format!("ID 1 OK {direct}"));

        // a zero budget expires before the batcher can collect the item
        writeln!(stream, "ID 2 DEADLINE 0 SCORE 0 1 2").expect("send");
        line.clear();
        reader.read_line(&mut line).expect("reply");
        assert_eq!(line.trim_end(), "ID 2 ERR deadline expired");
        server.shutdown();
    }

    #[test]
    fn proto_rejects_unknown_versions_and_v1_still_serves() {
        let engine = test_engine();
        let mut server = serve(Arc::clone(&engine), ServerConfig::default()).expect("serve");
        let addr = server.addr();
        assert!(query(addr, "PROTO 3").starts_with("ERR bad request"), "only v2 exists");
        // a v1 connection after a rejected upgrade keeps serving untagged
        let mut stream = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut line = String::new();
        for (req, want) in [("PROTO 9", "ERR"), ("PING", "OK pong")] {
            writeln!(stream, "{req}").expect("send");
            line.clear();
            reader.read_line(&mut line).expect("recv");
            assert!(line.starts_with(want), "{req} -> {line}");
        }
        server.shutdown();
    }

    #[test]
    fn batching_disabled_still_serves_v1_and_v2() {
        let engine = test_engine();
        let mut server =
            serve(Arc::clone(&engine), ServerConfig { batching: false, ..ServerConfig::default() })
                .expect("serve");
        let direct = engine.score(Triple::new(0u32, 1u32, 2u32)).unwrap();
        assert_eq!(query(server.addr(), "SCORE 0 1 2"), format!("OK {direct}"));
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut line = String::new();
        writeln!(stream, "PROTO 2").expect("hello");
        reader.read_line(&mut line).expect("hello reply");
        assert_eq!(line.trim_end(), "OK proto=2");
        writeln!(stream, "ID 3 SCORE 0 1 2").expect("send");
        line.clear();
        reader.read_line(&mut line).expect("recv");
        assert_eq!(line.trim_end(), format!("ID 3 OK {direct}"));
        server.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_unblocks_threads() {
        let mut server = serve(test_engine(), ServerConfig::default()).expect("serve");
        server.shutdown();
        server.shutdown();
        assert!(server.threads.is_empty());
    }
}
