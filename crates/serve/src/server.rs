//! The std-only TCP front end: a line-delimited protocol over a bounded
//! connection queue with backpressure, per-request deadlines, and graceful
//! shutdown.
//!
//! # Architecture
//!
//! One acceptor thread owns the listener. Accepted connections become jobs in
//! a bounded `Mutex<VecDeque>` + `Condvar` queue; a fixed set of connection
//! workers pops jobs and speaks the protocol (see [`crate::protocol`]) until
//! the client disconnects. Scoring itself happens inside the shared
//! [`Engine`], whose own pool shards score batches — connection workers only
//! parse, dispatch and format.
//!
//! # Backpressure and deadlines
//!
//! When the queue is full the acceptor does not block or buffer: it answers
//! the new connection with `ERR server overloaded` and closes it, so load
//! shedding is explicit and immediate. Every queued job carries its enqueue
//! time; if it waits longer than the configured request timeout before a
//! worker picks it up, the worker answers `ERR deadline expired` and closes
//! the connection without scoring. The same timeout also bounds socket reads
//! so an idle client cannot pin a worker forever.
//!
//! # Shutdown
//!
//! [`ServerHandle::shutdown`] flips a stop flag, wakes the acceptor with a
//! self-connection, drains the workers via the condvar, and joins every
//! thread. Dropping the handle shuts down implicitly.
//!
//! # Fault isolation
//!
//! Every request line is answered under `catch_unwind`: a panic anywhere in
//! parsing, scoring or formatting becomes a single `ERR internal: ...` line
//! and the connection (and worker) keep serving. `HEALTH` is the readiness
//! probe; `RELOAD <path>` hot-swaps the served bundle through
//! [`Engine::reload_from`], which validates before swapping and keeps the
//! old model on rejection.

use crate::engine::Engine;
use crate::error::ServeError;
use crate::protocol::{format_error, format_ranked, format_scores, parse_request, Request};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// TCP front-end knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port (tests, benches).
    pub addr: String,
    /// Connection worker threads (protocol handling, not scoring).
    pub workers: usize,
    /// Bounded queue capacity; connections beyond it are rejected with
    /// `ERR server overloaded`.
    pub queue_capacity: usize,
    /// Queue-wait deadline and socket read timeout per connection.
    pub request_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_capacity: 64,
            request_timeout: Duration::from_secs(5),
        }
    }
}

struct Job {
    stream: TcpStream,
    enqueued: Instant,
}

struct Shared {
    engine: Arc<Engine>,
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    stop: AtomicBool,
    timeout: Duration,
}

/// A running server; owns its threads. [`ServerHandle::shutdown`] (or drop)
/// stops it.
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
    threads: Vec<JoinHandle<()>>,
}

/// Bind a listener and spawn the acceptor and connection workers.
pub fn serve(engine: Arc<Engine>, cfg: ServerConfig) -> Result<ServerHandle, ServeError> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        engine,
        queue: Mutex::new(VecDeque::new()),
        available: Condvar::new(),
        stop: AtomicBool::new(false),
        timeout: cfg.request_timeout,
    });

    let mut threads = Vec::with_capacity(cfg.workers + 1);
    let capacity = cfg.queue_capacity.max(1);
    {
        let shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name("rmpi-serve-accept".into())
                .spawn(move || accept_loop(&shared, listener, capacity))
                .map_err(ServeError::Io)?,
        );
    }
    for w in 0..cfg.workers.max(1) {
        let shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name(format!("rmpi-serve-conn-{w}"))
                .spawn(move || worker_loop(&shared))
                .map_err(ServeError::Io)?,
        );
    }

    Ok(ServerHandle { shared, addr, threads })
}

impl ServerHandle {
    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The served engine (for stats inspection alongside the wire API).
    pub fn engine(&self) -> &Engine {
        &self.shared.engine
    }

    /// Stop accepting, drain nothing further, join all threads. Idempotent.
    pub fn shutdown(&mut self) {
        if self.shared.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // wake the acceptor out of accept() with a throwaway connection
        let _ = TcpStream::connect(self.addr);
        self.shared.available.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(shared: &Shared, listener: TcpListener, capacity: usize) {
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        let mut queue = shared.queue.lock().expect("serve queue lock");
        if queue.len() >= capacity {
            drop(queue);
            shared.engine.stats().rejected_overload.inc();
            let mut s = stream;
            let _ = writeln!(s, "{}", format_error(&ServeError::Overloaded));
            continue; // dropping `s` closes the connection: explicit load shedding
        }
        queue.push_back(Job { stream, enqueued: Instant::now() });
        shared.engine.stats().queue_depth.set(queue.len() as i64);
        drop(queue);
        shared.available.notify_one();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("serve queue lock");
            loop {
                if let Some(job) = queue.pop_front() {
                    shared.engine.stats().queue_depth.set(queue.len() as i64);
                    break job;
                }
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                queue = shared.available.wait(queue).expect("serve queue lock");
            }
        };
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        handle_connection(shared, job);
    }
}

fn handle_connection(shared: &Shared, job: Job) {
    let mut stream = job.stream;
    let waited = job.enqueued.elapsed();
    shared.engine.stats().queue_wait.record_duration(waited);
    // deadline check at dequeue: a job that sat in the queue past the
    // request timeout is shed, not served late
    if waited > shared.timeout {
        shared.engine.stats().rejected_deadline.inc();
        let _ = writeln!(stream, "{}", format_error(&ServeError::DeadlineExpired));
        return;
    }
    let _ = stream.set_read_timeout(Some(shared.timeout));
    let _ = stream.set_nodelay(true);
    let reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return,
    };
    for line in reader.lines() {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let line = match line {
            Ok(l) => l,
            Err(_) => return, // read timeout or disconnect
        };
        if line.trim().is_empty() {
            continue;
        }
        let response = respond(shared, &line);
        if writeln!(stream, "{response}").is_err() {
            return;
        }
    }
}

/// Answer one request line. Split out of the socket loop so the protocol
/// semantics are testable without a live server. Runs the whole
/// parse → dispatch → format path under `catch_unwind`: a panicking request
/// becomes `ERR internal: ...` and the worker keeps serving.
fn respond(shared: &Shared, line: &str) -> String {
    let stats = shared.engine.stats();
    stats.wire_requests.inc();
    let t0 = Instant::now();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| dispatch(shared, line)));
    let result = match outcome {
        Ok(result) => result,
        Err(payload) => {
            // Engine-level catches count themselves; this only sees panics
            // that escaped the engine (parsing, formatting, bugs).
            stats.internal_errors.inc();
            Err(ServeError::Internal(rmpi_runtime::panic_message(payload.as_ref())))
        }
    };
    stats.wire_latency(wire_verb(line)).record_duration(t0.elapsed());
    match result {
        Ok(response) => response,
        Err(err) => {
            if matches!(err, ServeError::BadRequest(_)) {
                stats.bad_requests.inc();
            }
            format_error(&err)
        }
    }
}

/// The metric label for a request line's verb (`serve.wire.<verb>.us`).
/// Unknown or malformed commands share one `other` histogram so hostile
/// input cannot grow the registry unboundedly.
fn wire_verb(line: &str) -> &'static str {
    match line.split_whitespace().next() {
        Some("PING") => "ping",
        Some("SCORE") => "score",
        Some("RANK") => "rank",
        Some("STATS") => "stats",
        Some("METRICS") => "metrics",
        Some("HEALTH") => "health",
        Some("RELOAD") => "reload",
        _ => "other",
    }
}

fn dispatch(shared: &Shared, line: &str) -> Result<String, ServeError> {
    parse_request(line).and_then(|req| match req {
        Request::Ping => Ok("OK pong".to_string()),
        Request::Stats => Ok(format!("OK {}", shared.engine.stats_json())),
        Request::Metrics => Ok(format!("OK {}", shared.engine.metrics_json())),
        Request::Health => {
            let model = shared.engine.model();
            Ok(format!(
                "OK healthy relations={} entities={}",
                model.num_relations(),
                shared.engine.graph().num_entities()
            ))
        }
        Request::Reload { path } => {
            shared.engine.reload_from(&path).map(|()| "OK reloaded".to_string())
        }
        Request::Score(targets) => {
            shared.engine.score_batch(&targets).map(|scores| format_scores(&scores))
        }
        Request::Rank { head, relation, k } => {
            shared.engine.rank_tails(head, relation, k).map(|ranked| format_ranked(&ranked))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use rmpi_core::{RmpiConfig, RmpiModel};
    use rmpi_kg::{KnowledgeGraph, Triple};

    fn test_engine() -> Arc<Engine> {
        let graph = KnowledgeGraph::from_triples(vec![
            Triple::new(0u32, 0u32, 1u32),
            Triple::new(1u32, 1u32, 2u32),
            Triple::new(2u32, 2u32, 0u32),
        ]);
        let model = RmpiModel::new(RmpiConfig { dim: 8, ..RmpiConfig::base() }, 4, 0);
        Arc::new(Engine::with_registry(
            model,
            graph,
            EngineConfig { seed: 3, cache_capacity: 32, threads: 1 },
            Arc::new(rmpi_obs::MetricsRegistry::new()),
        ))
    }

    fn query(addr: SocketAddr, line: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        writeln!(stream, "{line}").expect("send");
        let mut reader = BufReader::new(stream);
        let mut response = String::new();
        reader.read_line(&mut response).expect("recv");
        response.trim_end().to_string()
    }

    #[test]
    fn serves_ping_score_rank_stats_over_tcp() {
        let engine = test_engine();
        let mut server = serve(Arc::clone(&engine), ServerConfig::default()).expect("serve");
        let addr = server.addr();

        assert_eq!(query(addr, "PING"), "OK pong");
        let health = query(addr, "HEALTH");
        assert!(health.starts_with("OK healthy"), "{health}");
        assert!(health.contains("relations=4"), "{health}");

        let scored = query(addr, "SCORE 0 1 2");
        let wire: f32 = scored.strip_prefix("OK ").expect(&scored).parse().expect("score");
        let direct = engine.score(Triple::new(0u32, 1u32, 2u32)).unwrap();
        assert_eq!(wire, direct, "wire score must equal in-process score");

        let ranked = query(addr, "RANK 0 1 2");
        assert!(ranked.starts_with("OK "), "{ranked}");
        assert_eq!(ranked[3..].split(' ').count(), 2);

        let stats = query(addr, "STATS");
        assert!(stats.starts_with("OK {"), "{stats}");
        assert!(stats.contains("\"wire_requests\""), "{stats}");

        let metrics = query(addr, "METRICS");
        assert!(metrics.starts_with("OK {"), "{metrics}");
        assert!(metrics.contains("\"serve.wire.score.us\""), "{metrics}");
        assert!(metrics.contains("\"serve.queue_wait.us\""), "{metrics}");
        assert!(metrics.contains("\"subgraph.cache_entries.count\""), "{metrics}");

        assert!(query(addr, "NOPE").starts_with("ERR bad request"));
        server.shutdown();
    }

    #[test]
    fn one_connection_can_send_many_requests() {
        let mut server = serve(test_engine(), ServerConfig::default()).expect("serve");
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        for _ in 0..3 {
            writeln!(stream, "SCORE 0 0 1 1 1 2").expect("send");
            let mut line = String::new();
            reader.read_line(&mut line).expect("recv");
            assert!(line.starts_with("OK "), "{line}");
            assert_eq!(line.trim_end().split(' ').count(), 3, "batch of 2 scores");
        }
        server.shutdown();
    }

    #[test]
    fn overload_is_rejected_not_queued() {
        // zero workers would hang; instead use 1 worker and capacity 1, then
        // wedge the worker with a held-open idle connection so further
        // connections pile into the bounded queue
        let engine = test_engine();
        let mut server = serve(
            Arc::clone(&engine),
            ServerConfig {
                workers: 1,
                queue_capacity: 1,
                request_timeout: Duration::from_millis(400),
                ..ServerConfig::default()
            },
        )
        .expect("serve");
        let addr = server.addr();

        // occupy the single worker: connected but silent until read timeout
        let wedge = TcpStream::connect(addr).expect("wedge connect");
        std::thread::sleep(Duration::from_millis(50));
        // fill the queue
        let _queued = TcpStream::connect(addr).expect("queued connect");
        std::thread::sleep(Duration::from_millis(50));
        // queue is full now: this one must be shed immediately
        let shed = TcpStream::connect(addr).expect("shed connect");
        let mut reader = BufReader::new(shed);
        let mut line = String::new();
        reader.read_line(&mut line).expect("recv");
        assert_eq!(line.trim_end(), "ERR server overloaded");
        assert!(engine.stats().rejected_overload.get() >= 1);

        drop(wedge);
        server.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_unblocks_threads() {
        let mut server = serve(test_engine(), ServerConfig::default()).expect("serve");
        server.shutdown();
        server.shutdown();
        assert!(server.threads.is_empty());
    }
}
