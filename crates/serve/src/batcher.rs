//! The cross-connection dynamic micro-batcher: coalesces concurrent
//! `SCORE`/`RANK` requests into single [`Engine::run_batch`] calls.
//!
//! # Why
//!
//! The engine's batched scoring path (one pool fan-out amortising tape and
//! extraction scratch over many targets) sits idle when every wire request
//! carries one triple: each request pays a full engine round trip. Because
//! scoring is entity-independent — a target's score depends only on
//! `(graph, target, seed)`, never on batch-mates — requests from unrelated
//! connections can legally share one batch. The batcher exploits that: it
//! queues incoming items and flushes them together, trading a bounded wait
//! (the *batching window*) for much better per-score cost under concurrency.
//!
//! # State machine
//!
//! One dedicated thread runs a three-state loop:
//!
//! ```text
//!            +--------- idle: queue empty, wait on condvar ----------+
//!            |                                                       |
//!   item arrives                                        flush returns, queue empty
//!            v                                                       |
//!  collecting: deadline = first item's enqueue time + window         |
//!      take items while the flat-target budget (max_batch) allows;   |
//!      wait_timeout(deadline) for more                               |
//!            |                                                       |
//!   deadline reached OR budget filled OR shutdown                    |
//!            v                                                       |
//!        flushing: one Engine::run_batch for the whole batch --------+
//!                  deliver each item's own Result to its responder
//! ```
//!
//! The deadline is anchored to the **first** waiting item, so a lone request
//! waits at most `window` — load below the coalescing threshold pays the
//! window once, never repeatedly. A batch whose flat-target cost (scores
//! count one per triple, ranks one per ranking candidate) would exceed
//! `max_batch` flushes early; a single oversized item still goes through,
//! alone. Shutdown drains the queue — every queued item is flushed and
//! answered before the thread exits, and late submissions are answered with
//! a typed error instead of hanging.
//!
//! Every flush records the number of coalesced requests
//! (`serve.batch_size.count`) and each item's queue time
//! (`serve.batch_wait.us`) — the observable evidence that dynamic batching
//! is actually happening under load.

use crate::engine::{BatchItem, BatchOutcome, Engine};
use crate::error::ServeError;
use rmpi_runtime::panic_message;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Micro-batcher knobs.
#[derive(Clone, Copy, Debug)]
pub struct BatchConfig {
    /// How long the first item of a batch may wait for company before the
    /// batch flushes. The per-request latency floor under light load.
    pub window: Duration,
    /// Flat-target budget per flush (scores count one per triple, ranks one
    /// per ranking candidate): a full batch flushes before its deadline.
    pub max_batch: usize,
}

impl BatchConfig {
    /// Set the batching window.
    pub fn with_window(mut self, window: Duration) -> Self {
        self.window = window;
        self
    }

    /// Set the flat-target budget per flush.
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch.max(1);
        self
    }
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig { window: Duration::from_millis(1), max_batch: 256 }
    }
}

/// How a finished item's result leaves the batcher. Runs on the batcher
/// thread, so it must not block: send on a channel, don't write a socket.
pub type Responder = Box<dyn FnOnce(Result<BatchOutcome, ServeError>) + Send + 'static>;

struct Pending {
    item: BatchItem,
    responder: Responder,
    enqueued: Instant,
    /// Caller-supplied deadline (the wire `DEADLINE <ms>` hint): the batch
    /// holding this item flushes no later than this instant, and an item
    /// still queued past it is answered `ERR deadline expired` instead of
    /// being scored late.
    deadline: Option<Instant>,
}

#[derive(Default)]
struct Queue {
    pending: VecDeque<Pending>,
    shutdown: bool,
}

struct Inner {
    engine: Arc<Engine>,
    cfg: BatchConfig,
    queue: Mutex<Queue>,
    available: Condvar,
    batch_size: rmpi_obs::Histogram,
    batch_wait: rmpi_obs::Histogram,
    flushes: rmpi_obs::Counter,
}

/// Handle to the batching thread. Dropping it (or calling
/// [`Batcher::shutdown`]) drains and answers every queued item, then joins
/// the thread.
pub struct Batcher {
    inner: Arc<Inner>,
    thread: Mutex<Option<JoinHandle<()>>>,
}

impl Batcher {
    /// Spawn the batching thread over `engine`.
    pub fn new(engine: Arc<Engine>, cfg: BatchConfig) -> Self {
        let registry = engine.stats().registry();
        let inner = Arc::new(Inner {
            batch_size: registry.histogram("serve.batch_size.count"),
            batch_wait: registry.histogram("serve.batch_wait.us"),
            flushes: registry.counter("serve.batch_flushes.count"),
            engine,
            cfg: BatchConfig { max_batch: cfg.max_batch.max(1), ..cfg },
            queue: Mutex::new(Queue::default()),
            available: Condvar::new(),
        });
        let run_inner = Arc::clone(&inner);
        let thread = std::thread::Builder::new()
            .name("rmpi-batcher".into())
            .spawn(move || run(&run_inner))
            .expect("spawn batcher thread");
        Batcher { inner, thread: Mutex::new(Some(thread)) }
    }

    /// The engine this batcher flushes into.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.inner.engine
    }

    /// Enqueue one item; `responder` is called exactly once with its result
    /// — possibly before `submit` returns (after shutdown), usually from the
    /// batcher thread after a flush.
    pub fn submit(
        &self,
        item: BatchItem,
        responder: impl FnOnce(Result<BatchOutcome, ServeError>) + Send + 'static,
    ) {
        self.submit_with_deadline(item, None, responder);
    }

    /// [`Batcher::submit`] with an optional deadline: the open window is
    /// tightened so the batch flushes no later than the earliest deadline
    /// it holds, and an item that is still *queued* (not yet collected)
    /// when its deadline passes is answered `ERR deadline expired` rather
    /// than scored late. This is the engine side of the wire `DEADLINE`
    /// hint.
    pub fn submit_with_deadline(
        &self,
        item: BatchItem,
        deadline: Option<Instant>,
        responder: impl FnOnce(Result<BatchOutcome, ServeError>) + Send + 'static,
    ) {
        let responder: Responder = Box::new(responder);
        {
            let mut q = self.inner.queue.lock().expect("batcher queue");
            if !q.shutdown {
                q.pending.push_back(Pending {
                    item,
                    responder,
                    enqueued: Instant::now(),
                    deadline,
                });
                drop(q);
                self.inner.available.notify_one();
                return;
            }
        }
        responder(Err(ServeError::Internal("batcher is shut down".into())));
    }

    /// Enqueue one item and block until its flush delivers the result —
    /// the v1 wire path: the calling worker waits, so v1 connections keep
    /// strict one-response-per-request ordering while still coalescing with
    /// everything else in the window.
    pub fn submit_wait(&self, item: BatchItem) -> Result<BatchOutcome, ServeError> {
        let (tx, rx) = std::sync::mpsc::sync_channel(1);
        self.submit(item, move |result| {
            // the waiter never drops the receiver first, but a send error
            // must not panic the batcher thread
            let _ = tx.send(result);
        });
        rx.recv().unwrap_or_else(|_| {
            Err(ServeError::Internal("batcher dropped a pending request".into()))
        })
    }

    /// Drain and answer everything queued, then stop the thread. Idempotent;
    /// also runs on drop.
    pub fn shutdown(&self) {
        self.inner.queue.lock().expect("batcher queue").shutdown = true;
        self.inner.available.notify_all();
        if let Some(thread) = self.thread.lock().expect("batcher thread").take() {
            let _ = thread.join();
        }
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn run(inner: &Inner) {
    while let Some(batch) = collect(inner) {
        if !batch.is_empty() {
            flush(inner, batch);
        }
    }
}

/// Block until a batch is ready (first item's deadline reached, budget
/// filled, or shutdown), or return `None` when shut down with nothing left.
fn collect(inner: &Inner) -> Option<Vec<Pending>> {
    let rank_width = inner.engine.rank_width();
    let mut q = inner.queue.lock().expect("batcher queue");
    loop {
        if !q.pending.is_empty() {
            break;
        }
        if q.shutdown {
            return None;
        }
        q = inner.available.wait(q).expect("batcher queue");
    }
    let mut deadline = q.pending.front().expect("nonempty").enqueued + inner.cfg.window;
    let mut batch: Vec<Pending> = Vec::new();
    let mut cost = 0usize;
    loop {
        let now = Instant::now();
        while let Some(front) = q.pending.front() {
            // an item still queued past its own deadline is shed, not
            // scored late — its caller has already stopped waiting
            if front.deadline.is_some_and(|d| now >= d) {
                let expired = q.pending.pop_front().expect("nonempty");
                inner.engine.stats().rejected_deadline.inc();
                (expired.responder)(Err(ServeError::DeadlineExpired));
                continue;
            }
            // the first item always fits: an oversized item flushes alone
            let c = front.item.cost(rank_width).max(1);
            if !batch.is_empty() && cost.saturating_add(c) > inner.cfg.max_batch {
                break;
            }
            let p = q.pending.pop_front().expect("nonempty");
            // a collected item tightens the window: the batch flushes no
            // later than the earliest deadline it holds
            if let Some(d) = p.deadline {
                deadline = deadline.min(d);
            }
            cost += c;
            batch.push(p);
        }
        if cost >= inner.cfg.max_batch || q.shutdown {
            return Some(batch);
        }
        let now = Instant::now();
        if now >= deadline {
            return Some(batch);
        }
        let (guard, _timeout) =
            inner.available.wait_timeout(q, deadline - now).expect("batcher queue");
        // loop re-drains whatever arrived, then re-checks budget and deadline
        q = guard;
    }
}

/// One flush: a single `run_batch` over every collected item, each result
/// delivered to its own responder. A panic anywhere in the flush answers
/// every item with a fresh internal error — the batcher thread survives.
fn flush(inner: &Inner, batch: Vec<Pending>) {
    let flush_start = Instant::now();
    inner.batch_size.record(batch.len() as u64);
    let mut items = Vec::with_capacity(batch.len());
    let mut responders = Vec::with_capacity(batch.len());
    for p in batch {
        inner.batch_wait.record_duration(flush_start.saturating_duration_since(p.enqueued));
        items.push(p.item);
        responders.push(p.responder);
    }
    let results = catch_unwind(AssertUnwindSafe(|| inner.engine.run_batch(&items)));
    inner.flushes.inc();
    match results {
        Ok(results) => {
            debug_assert_eq!(results.len(), responders.len());
            for (result, responder) in results.into_iter().zip(responders) {
                responder(result);
            }
        }
        Err(panic) => {
            let msg = panic_message(panic.as_ref());
            for responder in responders {
                responder(Err(ServeError::Internal(msg.clone())));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmpi_core::{RmpiConfig, RmpiModel};
    use rmpi_kg::{EntityId, KnowledgeGraph, RelationId, Triple};
    use rmpi_obs::MetricsRegistry;
    use std::sync::mpsc;

    fn test_engine(registry: Arc<MetricsRegistry>) -> Arc<Engine> {
        let graph = KnowledgeGraph::from_triples(vec![
            Triple::new(0u32, 0u32, 1u32),
            Triple::new(1u32, 1u32, 3u32),
            Triple::new(0u32, 2u32, 2u32),
            Triple::new(2u32, 3u32, 3u32),
            Triple::new(3u32, 4u32, 4u32),
        ]);
        let model = RmpiModel::new(RmpiConfig { dim: 8, ne: true, ..RmpiConfig::base() }, 6, 0);
        Arc::new(Engine::with_registry(
            model,
            graph,
            crate::engine::EngineConfig { seed: 9, cache_capacity: 64, threads: 1 },
            registry,
        ))
    }

    #[test]
    fn single_item_flushes_at_the_deadline_with_the_right_answer() {
        let registry = Arc::new(MetricsRegistry::new());
        let engine = test_engine(Arc::clone(&registry));
        let t = Triple::new(0u32, 1u32, 2u32);
        let direct = engine.score(t).unwrap();
        let batcher = Batcher::new(
            Arc::clone(&engine),
            BatchConfig { window: Duration::from_millis(5), max_batch: 64 },
        );
        let t0 = Instant::now();
        let out = batcher.submit_wait(BatchItem::Score(vec![t])).unwrap();
        assert!(
            t0.elapsed() >= Duration::from_millis(4),
            "a lone item waits out the window: {:?}",
            t0.elapsed()
        );
        assert_eq!(out, BatchOutcome::Scores(vec![direct]));
        let size = registry.histogram("serve.batch_size.count");
        assert_eq!((size.count(), size.max()), (1, 1), "one flush of one item");
        assert!(registry.histogram("serve.batch_wait.us").max() >= 4_000);
    }

    #[test]
    fn full_budget_flushes_before_the_deadline() {
        let registry = Arc::new(MetricsRegistry::new());
        let engine = test_engine(Arc::clone(&registry));
        // window far beyond the test timeout: only the budget can flush
        let batcher = Batcher::new(
            Arc::clone(&engine),
            BatchConfig { window: Duration::from_secs(600), max_batch: 4 },
        );
        let (tx, rx) = mpsc::channel();
        for i in 0..4u32 {
            let tx = tx.clone();
            let t = Triple::new(i % 5, 1u32, (i + 1) % 5);
            batcher.submit(BatchItem::Score(vec![t]), move |r| tx.send((i, r)).unwrap());
        }
        let mut answered: Vec<u32> = Vec::new();
        for _ in 0..4 {
            let (i, r) = rx.recv_timeout(Duration::from_secs(30)).expect("budget flush");
            let BatchOutcome::Scores(scores) = r.unwrap() else { panic!("score item") };
            let t = Triple::new(i % 5, 1u32, (i + 1) % 5);
            assert_eq!(scores, vec![engine.score(t).unwrap()], "item {i} got its own score");
            answered.push(i);
        }
        answered.sort_unstable();
        assert_eq!(answered, vec![0, 1, 2, 3]);
        let size = registry.histogram("serve.batch_size.count");
        assert_eq!(size.max(), 4, "all four items coalesced into one flush");
    }

    #[test]
    fn oversized_rank_item_flushes_alone() {
        let registry = Arc::new(MetricsRegistry::new());
        let engine = test_engine(Arc::clone(&registry));
        // rank_width = 5 present entities > max_batch = 2
        assert!(engine.rank_width() > 2);
        let batcher = Batcher::new(
            Arc::clone(&engine),
            BatchConfig { window: Duration::from_secs(600), max_batch: 2 },
        );
        let direct = engine.rank_tails(EntityId(0), RelationId(1), 3).unwrap();
        let out = batcher
            .submit_wait(BatchItem::Rank { head: EntityId(0), relation: RelationId(1), k: 3 })
            .unwrap();
        assert_eq!(out, BatchOutcome::Ranked(direct));
    }

    #[test]
    fn shutdown_drains_queued_items_and_rejects_late_ones() {
        let registry = Arc::new(MetricsRegistry::new());
        let engine = test_engine(registry);
        let t = Triple::new(0u32, 1u32, 2u32);
        let direct = engine.score(t).unwrap();
        let batcher = Batcher::new(
            Arc::clone(&engine),
            BatchConfig { window: Duration::from_secs(600), max_batch: 64 },
        );
        let (tx, rx) = mpsc::channel();
        batcher.submit(BatchItem::Score(vec![t]), move |r| tx.send(r).unwrap());
        // shutdown races the window: the queued item must still be answered,
        // with its real score
        batcher.shutdown();
        let out = rx.recv_timeout(Duration::from_secs(5)).expect("drained on shutdown");
        assert_eq!(out.unwrap(), BatchOutcome::Scores(vec![direct]));
        // after shutdown, a submit gets a typed error, never a hang
        let err = batcher.submit_wait(BatchItem::Score(vec![t])).unwrap_err();
        assert!(matches!(err, ServeError::Internal(_)), "{err}");
    }

    #[test]
    fn reload_mid_window_scores_the_whole_batch_under_one_snapshot() {
        use rmpi_testutil::failpoint;
        let _lock = failpoint::exclusive();
        let dir = std::env::temp_dir().join(format!("rmpi-batch-reload-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("next.bundle");
        let next = RmpiModel::new(RmpiConfig { dim: 8, ne: true, ..RmpiConfig::base() }, 6, 7);
        crate::bundle::save_bundle_file(&path, &next, &[]).unwrap();

        let registry = Arc::new(MetricsRegistry::new());
        let engine = test_engine(Arc::clone(&registry));
        let a = Triple::new(0u32, 1u32, 2u32);
        let b = Triple::new(1u32, 2u32, 3u32);
        let old_a = engine.score(a).unwrap();

        let batcher = Batcher::new(
            Arc::clone(&engine),
            BatchConfig { window: Duration::from_millis(800), max_batch: 64 },
        );
        let (tx_a, rx_a) = mpsc::channel();
        batcher.submit(BatchItem::Score(vec![a]), move |r| tx_a.send(r).unwrap());
        // swap the model while item A sits in the open window, then give the
        // same window a second item
        engine.reload_from(&path).unwrap();
        let (tx_b, rx_b) = mpsc::channel();
        batcher.submit(BatchItem::Score(vec![b]), move |r| tx_b.send(r).unwrap());

        let out_a = rx_a.recv_timeout(Duration::from_secs(30)).unwrap().unwrap();
        let out_b = rx_b.recv_timeout(Duration::from_secs(30)).unwrap().unwrap();
        // the flush ran after the swap, so one snapshot means BOTH items are
        // scored by the new model — item A may not carry a stale score
        let new_a = engine.score(a).unwrap();
        let new_b = engine.score(b).unwrap();
        assert_eq!(out_a, BatchOutcome::Scores(vec![new_a]));
        assert_eq!(out_b, BatchOutcome::Scores(vec![new_b]));
        assert_ne!(new_a, old_a, "reload must actually change item A's score");
        let size = registry.histogram("serve.batch_size.count");
        assert_eq!((size.count(), size.max()), (1, 2), "one flush served both items");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn item_deadline_tightens_the_window() {
        let registry = Arc::new(MetricsRegistry::new());
        let engine = test_engine(registry);
        let t = Triple::new(0u32, 1u32, 2u32);
        let direct = engine.score(t).unwrap();
        // a window far beyond the test timeout: only the item's own
        // deadline can trigger the flush
        let batcher = Batcher::new(
            Arc::clone(&engine),
            BatchConfig { window: Duration::from_secs(600), max_batch: 64 },
        );
        let (tx, rx) = mpsc::channel();
        batcher.submit_with_deadline(
            BatchItem::Score(vec![t]),
            Some(Instant::now() + Duration::from_millis(30)),
            move |r| tx.send(r).unwrap(),
        );
        let out = rx
            .recv_timeout(Duration::from_secs(10))
            .expect("the item deadline must flush the batch long before the window");
        assert_eq!(out.unwrap(), BatchOutcome::Scores(vec![direct]));
    }

    #[test]
    fn expired_item_is_shed_not_scored_late() {
        let registry = Arc::new(MetricsRegistry::new());
        let engine = test_engine(Arc::clone(&registry));
        let t = Triple::new(0u32, 1u32, 2u32);
        let direct = engine.score(t).unwrap();
        let batcher = Batcher::new(
            Arc::clone(&engine),
            BatchConfig { window: Duration::from_millis(50), max_batch: 64 },
        );
        let (dead_tx, dead_rx) = mpsc::channel();
        let (live_tx, live_rx) = mpsc::channel();
        // a deadline already in the past when the batcher sees the item
        let expired = Instant::now();
        std::thread::sleep(Duration::from_millis(2));
        batcher.submit_with_deadline(BatchItem::Score(vec![t]), Some(expired), move |r| {
            dead_tx.send(r).unwrap()
        });
        batcher.submit(BatchItem::Score(vec![t]), move |r| live_tx.send(r).unwrap());
        let dead = dead_rx.recv_timeout(Duration::from_secs(10)).unwrap();
        assert!(matches!(dead.unwrap_err(), ServeError::DeadlineExpired));
        // the batch-mate without a deadline is served normally
        let live = live_rx.recv_timeout(Duration::from_secs(10)).unwrap();
        assert_eq!(live.unwrap(), BatchOutcome::Scores(vec![direct]));
        assert_eq!(engine.stats().rejected_deadline.get(), 1);
    }

    #[test]
    fn per_item_errors_do_not_poison_batch_mates() {
        let registry = Arc::new(MetricsRegistry::new());
        let engine = test_engine(registry);
        let good = Triple::new(0u32, 1u32, 2u32);
        let direct = engine.score(good).unwrap();
        let batcher = Batcher::new(
            Arc::clone(&engine),
            BatchConfig { window: Duration::from_millis(50), max_batch: 64 },
        );
        let (good_tx, good_rx) = mpsc::channel();
        let (bad_tx, bad_rx) = mpsc::channel();
        batcher.submit(BatchItem::Score(vec![good]), move |r| good_tx.send(r).unwrap());
        batcher.submit(BatchItem::Score(vec![Triple::new(0u32, 17u32, 1u32)]), move |r| {
            bad_tx.send(r).unwrap()
        });
        let good_out = good_rx.recv_timeout(Duration::from_secs(30)).unwrap();
        let bad_out = bad_rx.recv_timeout(Duration::from_secs(30)).unwrap();
        assert_eq!(good_out.unwrap(), BatchOutcome::Scores(vec![direct]));
        assert!(matches!(bad_out.unwrap_err(), ServeError::UnknownRelation(17)));
    }
}
