//! Bounded line reading: the building block that keeps every line-oriented
//! parser in the serving layer — the TCP front end and the bundle manifest
//! parser — from buffering an attacker-sized "line" into memory.
//!
//! `BufRead::read_line` happily grows its buffer until the peer sends a
//! newline or the process runs out of memory. [`read_line_bounded`] instead
//! enforces a caller-chosen cap: once a line exceeds it, the function stops
//! accumulating (it keeps *consuming* the buffered bytes it inspected, so the
//! stream position stays deterministic) and reports [`LineRead::TooLong`].
//! Callers decide how to answer — the server replies `ERR request too long`
//! and closes, the bundle parser fails with a manifest error.
//!
//! Bytes are converted with `from_utf8_lossy`, so hostile binary input parses
//! as garbage text (and is rejected by the protocol layer with a normal
//! `ERR bad request`) instead of killing the connection without an answer.

use std::io::BufRead;

/// Outcome of one bounded line read.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LineRead {
    /// A complete newline-terminated line is in the caller's buffer
    /// (terminator and any trailing `\r` stripped).
    Line,
    /// The stream ended with unterminated bytes; they are in the caller's
    /// buffer. Line-oriented *network* callers should treat this as a
    /// damaged exchange (a cut connection), file parsers as a final line.
    Partial,
    /// The stream ended cleanly with no pending bytes.
    Eof,
    /// The line exceeded the cap before a newline arrived. The buffer is
    /// empty; the inspected bytes were consumed.
    TooLong,
}

/// Read one `\n`-terminated line of at most `max_len` bytes (terminator
/// excluded) into `out`. I/O errors — including read timeouts surfacing as
/// `WouldBlock`/`TimedOut` — propagate untouched so callers can classify
/// them.
pub fn read_line_bounded<R: BufRead>(
    reader: &mut R,
    out: &mut String,
    max_len: usize,
) -> std::io::Result<LineRead> {
    out.clear();
    let mut bytes: Vec<u8> = Vec::new();
    loop {
        let available = reader.fill_buf()?;
        if available.is_empty() {
            if bytes.is_empty() {
                return Ok(LineRead::Eof);
            }
            strip_and_set(bytes, out);
            return Ok(LineRead::Partial);
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(newline) => {
                let consumed = newline + 1;
                if bytes.len() + newline > max_len {
                    reader.consume(consumed);
                    return Ok(LineRead::TooLong);
                }
                bytes.extend_from_slice(&available[..newline]);
                reader.consume(consumed);
                strip_and_set(bytes, out);
                return Ok(LineRead::Line);
            }
            None => {
                let n = available.len();
                if bytes.len() + n > max_len {
                    reader.consume(n);
                    return Ok(LineRead::TooLong);
                }
                bytes.extend_from_slice(available);
                reader.consume(n);
            }
        }
    }
}

fn strip_and_set(mut bytes: Vec<u8>, out: &mut String) {
    while bytes.last() == Some(&b'\r') {
        bytes.pop();
    }
    *out = String::from_utf8_lossy(&bytes).into_owned();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufReader, Cursor};

    fn read_all(input: &[u8], max: usize) -> Vec<(LineRead, String)> {
        let mut reader = BufReader::new(Cursor::new(input.to_vec()));
        let mut out = String::new();
        let mut seen = Vec::new();
        loop {
            let r = read_line_bounded(&mut reader, &mut out, max).unwrap();
            seen.push((r, out.clone()));
            if matches!(r, LineRead::Eof | LineRead::Partial) {
                return seen;
            }
        }
    }

    #[test]
    fn reads_lines_and_strips_terminators() {
        let seen = read_all(b"alpha\nbeta\r\n\ngamma", 100);
        assert_eq!(
            seen,
            vec![
                (LineRead::Line, "alpha".into()),
                (LineRead::Line, "beta".into()),
                (LineRead::Line, "".into()),
                (LineRead::Partial, "gamma".into()),
            ]
        );
        assert_eq!(read_all(b"", 100), vec![(LineRead::Eof, "".into())]);
        assert_eq!(
            read_all(b"one\n", 100),
            vec![(LineRead::Line, "one".into()), (LineRead::Eof, "".into())]
        );
    }

    #[test]
    fn exact_cap_is_allowed_and_one_past_is_not() {
        let seen = read_all(b"12345\nok\n", 5);
        assert_eq!(seen[0], (LineRead::Line, "12345".into()));
        let seen = read_all(b"123456\nok\n", 5);
        assert_eq!(seen[0].0, LineRead::TooLong);
        // the overlong line was consumed through its newline: the stream is
        // positioned at the next line
        assert_eq!(seen[1], (LineRead::Line, "ok".into()));
    }

    #[test]
    fn overlong_without_newline_consumes_and_reports() {
        let big = vec![b'x'; 1000];
        let mut reader = BufReader::with_capacity(64, Cursor::new(big));
        let mut out = String::new();
        assert_eq!(read_line_bounded(&mut reader, &mut out, 100).unwrap(), LineRead::TooLong);
        assert!(out.is_empty());
    }

    #[test]
    fn invalid_utf8_is_lossy_not_fatal() {
        let seen = read_all(b"\xff\xfe bad\n", 100);
        assert_eq!(seen[0].0, LineRead::Line);
        assert!(seen[0].1.contains("bad"));
    }

    #[test]
    fn bound_is_independent_of_bufreader_chunking() {
        // a line split across many tiny fill_buf() chunks must still honour
        // the cap exactly
        let input = b"abcdefghij\n".to_vec();
        for cap in 1..=12 {
            let mut reader = BufReader::with_capacity(cap.max(1), Cursor::new(input.clone()));
            let mut out = String::new();
            let r = read_line_bounded(&mut reader, &mut out, 9).unwrap();
            assert_eq!(r, LineRead::TooLong, "bufcap={cap}");
            let mut reader = BufReader::with_capacity(cap.max(1), Cursor::new(input.clone()));
            let r = read_line_bounded(&mut reader, &mut out, 10).unwrap();
            assert_eq!((r, out.as_str()), (LineRead::Line, "abcdefghij"), "bufcap={cap}");
        }
    }
}
