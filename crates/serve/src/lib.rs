//! `rmpi-serve` — model-bundle artifacts and a batched, subgraph-caching
//! inference service for trained RMPI models.
//!
//! Three layers, each usable on its own:
//!
//! - [`bundle`]: a self-describing artifact format (`rmpi-bundle v1`) that
//!   packages a model's configuration, relation vocabulary, optional schema
//!   vectors and the `rmpi-params v1` tensor payload into one file, with
//!   bit-exact round-tripping ([`save_bundle`] / [`load_bundle`]).
//! - [`engine`]: an in-process [`Engine`] that binds a loaded model to an
//!   immutable context graph and answers `score` / `score_batch` /
//!   `rank_tails` queries through a seeded LRU cache of extracted subgraphs,
//!   sharding batches across an `rmpi-runtime` thread pool. Served scores
//!   are bit-identical to offline `RmpiModel::score` with the same seed.
//! - [`server`]: a dependency-free TCP front end speaking a line-delimited
//!   protocol ([`protocol`]), with a bounded queue (backpressure via
//!   `ERR server overloaded`), per-request deadlines, graceful shutdown, and
//!   hardened connection handling — bounded request lines ([`lineio`]),
//!   read/write socket timeouts, idle-connection reaping and a
//!   concurrent-connection cap.
//!
//! Throughput, latency and cache-hit metrics are registry-backed
//! ([`ServeStats`] holds `rmpi-obs` counter/histogram handles): the legacy
//! single-line JSON survives unchanged (`Engine::stats_json`, wire command
//! `STATS`), and the full registry — per-verb latency percentiles, queue
//! wait, cache gauges, plus trainer/pool metrics when they share the
//! process — dumps via `Engine::metrics_json` / wire command `METRICS`.
//!
//! The service is self-healing: request panics are isolated per line
//! (`ERR internal`), `HEALTH` reports readiness, and `RELOAD <path>`
//! hot-swaps the served bundle with validation-before-swap and rollback —
//! see [`Engine::reload_from`]. Bundles are written atomically, and parse
//! errors carry byte offsets ([`ServeError::Manifest`],
//! [`ServeError::Checkpoint`]).

pub mod batcher;
pub mod bundle;
pub mod bundledir;
pub mod engine;
pub mod error;
pub mod lineio;
pub mod protocol;
pub mod server;
pub mod stats;

pub use batcher::{BatchConfig, Batcher};
pub use bundle::{load_bundle, load_bundle_file, save_bundle, save_bundle_file, Bundle};
pub use bundledir::{load_bundle_dir, save_bundle_dir, scrub_bundle_dir, DIR_MANIFEST_NAME};
pub use engine::{
    BatchItem, BatchOutcome, Engine, EngineConfig, GraphBackend, ModelSnapshot, SCORE_FAILPOINT,
};
pub use error::ServeError;
pub use protocol::{parse_request, parse_tagged, Request};
pub use server::{serve, ServerConfig, ServerHandle};
pub use stats::ServeStats;
