//! Model bundles: everything needed to re-instantiate a trained model
//! outside the trainer, in one artifact.
//!
//! A bundle is a single UTF-8 file with two sections:
//!
//! ```text
//! rmpi-bundle v1
//! variant RMPI-NE(S)            # informational, re-derived on load
//! dim 32
//! layers 2
//! hop 2
//! ne true
//! ta false
//! fusion sum                    # sum | concat | gated
//! leaky_slope 0.2
//! edge_dropout 0.5
//! init random                   # random | schema
//! schema_hidden 0
//! max_edges 300
//! entity_clues false
//! relations 12
//! rel 0 bornIn                  # optional vocabulary, one line per relation
//! onto 12 10 <values...>        # schema init only: rows cols data
//! params
//! rmpi-params v1                # the existing checkpoint format verbatim
//! <name> <rank> <dim...> <value...>
//! ```
//!
//! The manifest carries the full [`RmpiConfig`] (floats in round-trip
//! precision), the relation id-space size, an optional relation vocabulary
//! and — for schema-initialised models — the fixed ontology vectors, which
//! live outside the parameter store. The `params` marker hands the rest of
//! the stream to [`rmpi_autograd::io::load_params`] unchanged, so bundle and
//! checkpoint parsing share one strict tensor parser. Save → load is
//! bit-exact: a reloaded model scores identically to the one that was saved.
//!
//! Every parse error names its section and carries the **byte offset** into
//! the bundle (the line start for manifest errors, the section start for
//! parameter errors), so a corrupt artifact can be localised with `head -c`.
//! [`save_bundle_file`] writes atomically (temp + fsync + rename): a crash
//! mid-save never clobbers the bundle a server might reload next.

use crate::error::{checkpoint_at, ServeError};
use crate::lineio::LineRead;
use rmpi_autograd::io::{atomic_write_bytes, load_params, save_params};
use rmpi_autograd::Tensor;
use rmpi_core::{Fusion, RelationInit, RmpiConfig, RmpiModel, ScoringModel};
use rmpi_store::{fnv64, Fnv64};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Bundle header line.
const MAGIC: &str = "rmpi-bundle v1";
/// Marker separating the manifest from the parameter section.
const PARAMS_MARKER: &str = "params";

/// A loaded bundle: the re-instantiated model plus its relation vocabulary.
#[derive(Clone, Debug)]
pub struct Bundle {
    /// The reassembled model, bit-identical to the one saved.
    pub model: RmpiModel,
    /// Relation names by id (empty when the bundle carried no vocabulary).
    pub relation_names: Vec<String>,
}

/// Serialise `model` (config, optional vocabulary, optional schema vectors,
/// parameters) into `w`. `relation_names` must be empty or cover the model's
/// whole relation id space.
pub fn save_bundle<W: Write>(
    w: &mut W,
    model: &RmpiModel,
    relation_names: &[String],
) -> Result<(), ServeError> {
    let cfg = model.config();
    assert!(
        relation_names.is_empty() || relation_names.len() == model.num_relations(),
        "vocabulary must be empty or cover all {} relations",
        model.num_relations()
    );
    writeln!(w, "{MAGIC}")?;
    writeln!(w, "variant {}", cfg.variant_name())?;
    writeln!(w, "dim {}", cfg.dim)?;
    writeln!(w, "layers {}", cfg.num_layers)?;
    writeln!(w, "hop {}", cfg.hop)?;
    writeln!(w, "ne {}", cfg.ne)?;
    writeln!(w, "ta {}", cfg.ta)?;
    let fusion = match cfg.fusion {
        Fusion::Sum => "sum",
        Fusion::Concat => "concat",
        Fusion::Gated => "gated",
    };
    writeln!(w, "fusion {fusion}")?;
    writeln!(w, "leaky_slope {}", cfg.leaky_slope)?;
    writeln!(w, "edge_dropout {}", cfg.edge_dropout)?;
    let init = match cfg.init {
        RelationInit::Random => "random",
        RelationInit::Schema => "schema",
    };
    writeln!(w, "init {init}")?;
    writeln!(w, "schema_hidden {}", cfg.schema_hidden)?;
    writeln!(w, "max_edges {}", cfg.max_subgraph_edges)?;
    writeln!(w, "entity_clues {}", cfg.entity_clues)?;
    writeln!(w, "relations {}", model.num_relations())?;
    for (i, name) in relation_names.iter().enumerate() {
        writeln!(w, "rel {i} {name}")?;
    }
    if let Some(onto) = model.schema_vectors() {
        write!(w, "onto {} {}", onto.rows(), onto.cols())?;
        for v in onto.data() {
            write!(w, " {v}")?;
        }
        writeln!(w)?;
    }
    // The parameter section is serialised first so its FNV-64 can ride in
    // the manifest; the loader re-hashes the section and refuses a bundle
    // whose bytes no longer match (detects bit-rot the tensor parser would
    // happily accept as different-but-valid floats).
    let mut params = Vec::new();
    save_params(&mut params, model.param_store())?;
    writeln!(w, "params_checksum {:016x}", fnv64(&params))?;
    writeln!(w, "{PARAMS_MARKER}")?;
    w.write_all(&params)?;
    Ok(())
}

/// A [`BufRead`] adapter that counts — and FNV-hashes — every byte the
/// parser actually consumed. `Read` is routed through `fill_buf`/`consume`
/// so the two interfaces share one tally and nothing is counted (or hashed)
/// twice. The hash can be reset at a section boundary, after which it covers
/// exactly that section's bytes.
struct CountingReader<R> {
    inner: BufReader<R>,
    consumed: u64,
    hash: Fnv64,
}

impl<R: Read> CountingReader<R> {
    fn new(r: R) -> Self {
        CountingReader { inner: BufReader::new(r), consumed: 0, hash: Fnv64::new() }
    }

    /// Start hashing from here (a section boundary).
    fn reset_hash(&mut self) {
        self.hash = Fnv64::new();
    }
}

impl<R: Read> Read for CountingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let available = self.fill_buf()?;
        let n = available.len().min(buf.len());
        buf[..n].copy_from_slice(&available[..n]);
        self.consume(n);
        Ok(n)
    }
}

impl<R: Read> BufRead for CountingReader<R> {
    fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
        self.inner.fill_buf()
    }
    fn consume(&mut self, amt: usize) {
        // `fill_buf` on a non-empty buffer returns that buffer without any
        // IO, so re-asking for it here sees exactly the bytes about to be
        // consumed — which is what lets `consume` hash them.
        if amt > 0 {
            if let Ok(buf) = self.inner.fill_buf() {
                self.hash.update(&buf[..amt.min(buf.len())]);
            }
        }
        self.consumed += amt as u64;
        self.inner.consume(amt);
    }
}

/// Position of a manifest line: line number plus the byte offset of its
/// first character. Threaded into every manifest error.
#[derive(Clone, Copy)]
struct At {
    line: usize,
    offset: u64,
}

impl At {
    fn err(self, message: String) -> ServeError {
        ServeError::Manifest { line: self.line, offset: self.offset, message }
    }
}

/// Longest manifest line [`load_bundle`] will buffer. Vocabulary lines carry
/// one relation name each, so even generous names fit in a fraction of this;
/// a "line" longer than 4 MiB is a corrupt or hostile artifact and is
/// rejected with a manifest error instead of buffering it unbounded.
pub const MAX_MANIFEST_LINE: usize = 1 << 22;

/// Parse a bundle and reassemble the model.
pub fn load_bundle<R: Read>(r: R) -> Result<Bundle, ServeError> {
    let mut reader = CountingReader::new(r);
    let mut at = At { line: 0, offset: 0 };
    let mut line = String::new();
    let mut next_line =
        |reader: &mut CountingReader<R>, at: &mut At| -> Result<Option<String>, ServeError> {
            at.offset = reader.consumed;
            at.line += 1;
            match crate::lineio::read_line_bounded(reader, &mut line, MAX_MANIFEST_LINE)? {
                LineRead::Eof => {
                    at.line -= 1;
                    Ok(None)
                }
                // a file's unterminated last line is still a line
                LineRead::Line | LineRead::Partial => Ok(Some(line.clone())),
                LineRead::TooLong => {
                    Err(at.err(format!("manifest line longer than {MAX_MANIFEST_LINE} bytes")))
                }
            }
        };

    let header = next_line(&mut reader, &mut at)?.unwrap_or_default();
    if header != MAGIC {
        return Err(At { line: 1, offset: 0 }.err(format!("bad header {header:?}")));
    }

    let mut manifest = ManifestBuilder::default();
    loop {
        let Some(text) = next_line(&mut reader, &mut at)? else {
            return Err(at.err(format!("bundle ended before the {PARAMS_MARKER:?} marker")));
        };
        if text.trim().is_empty() {
            continue;
        }
        if text.trim() == PARAMS_MARKER {
            break;
        }
        manifest.apply(&text, at)?;
    }

    // Everything past the marker is the parameter section; failures in it
    // are reported against the section's start, which is deterministic
    // regardless of how far the tensor parser read ahead.
    reader.reset_hash();
    let params_start = reader.consumed;
    let store = load_params(&mut reader).map_err(|e| checkpoint_at(params_start, e))?;
    if let Some(expected) = manifest.params_checksum {
        // The tensor parser may stop short of EOF (e.g. at a count it read
        // from a header); drain the remainder so the hash covers the whole
        // section exactly as it was saved.
        let mut sink = [0u8; 8192];
        while reader.read(&mut sink)? > 0 {}
        let actual = reader.hash.finish();
        if actual != expected {
            return Err(ServeError::Checksum { section: "params".into(), expected, actual });
        }
    }
    manifest.finish(store)
}

/// Save a bundle to `path` **atomically**: the serialised bytes land under a
/// temporary name, are fsynced, and replace `path` in one rename. A crash or
/// injected I/O failure mid-save leaves any previous bundle untouched.
pub fn save_bundle_file<P: AsRef<Path>>(
    path: P,
    model: &RmpiModel,
    relation_names: &[String],
) -> Result<(), ServeError> {
    let mut buf = Vec::new();
    save_bundle(&mut buf, model, relation_names)?;
    atomic_write_bytes(path, &buf)?;
    Ok(())
}

/// Load a bundle from `path`.
pub fn load_bundle_file<P: AsRef<Path>>(path: P) -> Result<Bundle, ServeError> {
    load_bundle(std::fs::File::open(path)?)
}

/// Accumulates manifest fields as lines arrive, then assembles the model.
#[derive(Default)]
struct ManifestBuilder {
    cfg: RmpiConfig,
    num_relations: Option<usize>,
    relation_names: Vec<(usize, String)>,
    onto: Option<Tensor>,
    seen_dim: bool,
    params_checksum: Option<u64>,
}

impl ManifestBuilder {
    fn apply(&mut self, text: &str, at: At) -> Result<(), ServeError> {
        let err = |message: String| at.err(message);
        let (key, rest) = match text.split_once(char::is_whitespace) {
            Some((k, r)) => (k, r.trim()),
            None => (text.trim(), ""),
        };
        match key {
            "variant" => {} // informational; re-derived from the config
            "dim" => {
                self.cfg.dim = parse(rest, "dim", at)?;
                self.seen_dim = true;
            }
            "layers" => self.cfg.num_layers = parse(rest, "layers", at)?,
            "hop" => self.cfg.hop = parse(rest, "hop", at)?,
            "ne" => self.cfg.ne = parse(rest, "ne", at)?,
            "ta" => self.cfg.ta = parse(rest, "ta", at)?,
            "fusion" => {
                self.cfg.fusion = match rest {
                    "sum" => Fusion::Sum,
                    "concat" => Fusion::Concat,
                    "gated" => Fusion::Gated,
                    other => return Err(err(format!("unknown fusion {other:?}"))),
                }
            }
            "leaky_slope" => self.cfg.leaky_slope = parse(rest, "leaky_slope", at)?,
            "edge_dropout" => self.cfg.edge_dropout = parse(rest, "edge_dropout", at)?,
            "init" => {
                self.cfg.init = match rest {
                    "random" => RelationInit::Random,
                    "schema" => RelationInit::Schema,
                    other => return Err(err(format!("unknown init {other:?}"))),
                }
            }
            "schema_hidden" => self.cfg.schema_hidden = parse(rest, "schema_hidden", at)?,
            "max_edges" => self.cfg.max_subgraph_edges = parse(rest, "max_edges", at)?,
            "entity_clues" => self.cfg.entity_clues = parse(rest, "entity_clues", at)?,
            "relations" => self.num_relations = Some(parse(rest, "relations", at)?),
            // absent in bundles written before the checksum landed — those
            // still load, they just skip verification
            "params_checksum" => {
                self.params_checksum = Some(
                    u64::from_str_radix(rest, 16)
                        .map_err(|e| err(format!("bad params_checksum: {e}")))?,
                )
            }
            "rel" => {
                let (id, name) = rest
                    .split_once(char::is_whitespace)
                    .ok_or_else(|| err("rel needs an id and a name".into()))?;
                let id: usize = parse(id, "rel id", at)?;
                self.relation_names.push((id, name.trim().to_owned()));
            }
            "onto" => {
                let mut parts = rest.split_whitespace();
                let rows: usize = parse(
                    parts.next().ok_or_else(|| err("onto needs rows".into()))?,
                    "onto rows",
                    at,
                )?;
                let cols: usize = parse(
                    parts.next().ok_or_else(|| err("onto needs cols".into()))?,
                    "onto cols",
                    at,
                )?;
                let mut data = Vec::with_capacity(rows * cols);
                for p in parts {
                    let v: f32 = parse(p, "onto value", at)?;
                    if !v.is_finite() {
                        return Err(err(format!("non-finite onto value {v}")));
                    }
                    data.push(v);
                }
                if data.len() != rows * cols {
                    return Err(err(format!(
                        "onto expects {} values, got {}",
                        rows * cols,
                        data.len()
                    )));
                }
                self.onto = Some(Tensor::matrix(rows, cols, data));
            }
            other => return Err(err(format!("unknown manifest key {other:?}"))),
        }
        Ok(())
    }

    fn finish(self, store: rmpi_autograd::ParamStore) -> Result<Bundle, ServeError> {
        let missing =
            |what: &str| At { line: 0, offset: 0 }.err(format!("manifest is missing {what}"));
        if !self.seen_dim {
            return Err(missing("dim"));
        }
        let num_relations = self.num_relations.ok_or_else(|| missing("relations"))?;
        let mut relation_names = Vec::new();
        if !self.relation_names.is_empty() {
            relation_names = vec![String::new(); num_relations];
            for (id, name) in self.relation_names {
                let slot = relation_names.get_mut(id).ok_or_else(|| {
                    At { line: 0, offset: 0 }
                        .err(format!("rel id {id} outside the {num_relations}-relation space"))
                })?;
                *slot = name;
            }
        }
        let model = RmpiModel::from_store(self.cfg, num_relations, store, self.onto)?;
        Ok(Bundle { model, relation_names })
    }
}

/// Parse one manifest scalar, mapping failures to a labelled manifest error.
fn parse<T: std::str::FromStr>(s: &str, what: &str, at: At) -> Result<T, ServeError>
where
    T::Err: std::fmt::Display,
{
    s.parse().map_err(|e| at.err(format!("bad {what}: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rmpi_kg::{KnowledgeGraph, Triple};
    use std::io::Cursor;

    fn toy_graph() -> KnowledgeGraph {
        KnowledgeGraph::from_triples(vec![
            Triple::new(0u32, 0u32, 1u32),
            Triple::new(1u32, 1u32, 3u32),
            Triple::new(0u32, 2u32, 2u32),
            Triple::new(2u32, 3u32, 3u32),
        ])
    }

    fn roundtrip(model: &RmpiModel, names: &[String]) -> Bundle {
        let mut buf = Vec::new();
        save_bundle(&mut buf, model, names).unwrap();
        load_bundle(Cursor::new(buf)).unwrap()
    }

    #[test]
    fn roundtrip_scores_bit_identically() {
        let g = toy_graph();
        let target = Triple::new(0u32, 4u32, 3u32);
        for cfg in [
            RmpiConfig { dim: 8, ..RmpiConfig::base() },
            RmpiConfig { dim: 8, ..RmpiConfig::ne_ta() },
            RmpiConfig { dim: 8, fusion: Fusion::Gated, entity_clues: true, ..RmpiConfig::ne() },
        ] {
            let model = RmpiModel::new(cfg, 5, 7);
            let loaded = roundtrip(&model, &[]);
            let a = model.score(&g, target, &mut StdRng::seed_from_u64(0));
            let b = loaded.model.score(&g, target, &mut StdRng::seed_from_u64(0));
            assert_eq!(a, b, "{}", model.name());
            assert_eq!(loaded.model.config().variant_name(), cfg.variant_name());
        }
    }

    #[test]
    fn schema_bundle_carries_onto_vectors() {
        let g = toy_graph();
        let target = Triple::new(0u32, 4u32, 3u32);
        let onto = Tensor::matrix(5, 6, (0..30).map(|i| (i as f32 * 0.31).cos()).collect());
        let cfg = RmpiConfig { dim: 8, ..RmpiConfig::base().with_schema() };
        let model = RmpiModel::with_schema_vectors(cfg, onto, 9);
        let loaded = roundtrip(&model, &[]);
        let a = model.score(&g, target, &mut StdRng::seed_from_u64(3));
        let b = loaded.model.score(&g, target, &mut StdRng::seed_from_u64(3));
        assert_eq!(a, b);
    }

    #[test]
    fn vocabulary_roundtrips_including_spaced_names() {
        let model = RmpiModel::new(RmpiConfig { dim: 4, ..RmpiConfig::base() }, 3, 0);
        let names = vec!["born in".to_owned(), "capital_of".to_owned(), "r2".to_owned()];
        let loaded = roundtrip(&model, &names);
        assert_eq!(loaded.relation_names, names);
    }

    #[test]
    fn rejects_bad_header() {
        let err = load_bundle(Cursor::new("not-a-bundle\n")).unwrap_err();
        assert!(matches!(err, ServeError::Manifest { line: 1, .. }), "{err}");
    }

    #[test]
    fn rejects_overlong_manifest_line_without_buffering_it() {
        // a hostile "bundle" whose second line never ends must fail with a
        // manifest error at that line, not grow a multi-gigabyte String
        let mut bytes = format!("{MAGIC}\n").into_bytes();
        bytes.extend(std::iter::repeat(b'x').take(MAX_MANIFEST_LINE + 1));
        let err = load_bundle(Cursor::new(bytes)).unwrap_err();
        match err {
            ServeError::Manifest { line, message, .. } => {
                assert_eq!(line, 2);
                assert!(message.contains("longer than"), "{message}");
            }
            other => panic!("expected manifest error, got {other}"),
        }
    }

    #[test]
    fn rejects_truncated_bundle() {
        let model = RmpiModel::new(RmpiConfig { dim: 4, ..RmpiConfig::base() }, 3, 0);
        let mut buf = Vec::new();
        save_bundle(&mut buf, &model, &[]).unwrap();
        // cut in the middle of the parameter section
        let cut = buf.len() - buf.len() / 4;
        let err = load_bundle(Cursor::new(&buf[..cut])).unwrap_err();
        assert!(
            matches!(err, ServeError::Checkpoint { .. } | ServeError::Assembly(_)),
            "truncation must fail parsing or assembly: {err}"
        );
        // cut before the params marker
        let head = String::from_utf8_lossy(&buf);
        let manifest_only = head.split(PARAMS_MARKER).next().unwrap();
        let err = load_bundle(Cursor::new(manifest_only.as_bytes())).unwrap_err();
        assert!(matches!(err, ServeError::Manifest { .. }), "{err}");
    }

    #[test]
    fn rejects_nan_params_and_unknown_keys() {
        let model = RmpiModel::new(RmpiConfig { dim: 4, ..RmpiConfig::base() }, 3, 0);
        let mut buf = Vec::new();
        save_bundle(&mut buf, &model, &[]).unwrap();
        let text = String::from_utf8(buf).unwrap();
        // poison a tensor value inside the parameter section
        let idx = text.find("rmpi-params v1").unwrap();
        let poisoned = format!("{}{}", &text[..idx], text[idx..].replacen("0.", "NaN ", 1));
        let err = load_bundle(Cursor::new(poisoned.into_bytes())).unwrap_err();
        assert!(matches!(err, ServeError::Checkpoint { .. }), "{err}");
        let unknown = text.replace("hop 2", "hops 2");
        let err = load_bundle(Cursor::new(unknown.into_bytes())).unwrap_err();
        assert!(err.to_string().contains("unknown manifest key"), "{err}");
    }

    #[test]
    fn errors_carry_byte_offsets_and_section_names() {
        let model = RmpiModel::new(RmpiConfig { dim: 4, ..RmpiConfig::base() }, 3, 0);
        let mut buf = Vec::new();
        save_bundle(&mut buf, &model, &[]).unwrap();
        let text = String::from_utf8(buf).unwrap();

        // A bad manifest key is reported at the byte offset of its line start.
        let bad = text.replace("hop 2", "hops 2");
        let key_offset = bad.find("hops 2").unwrap() as u64;
        let err = load_bundle(Cursor::new(bad.clone().into_bytes())).unwrap_err();
        match &err {
            ServeError::Manifest { offset, .. } => assert_eq!(*offset, key_offset, "{err}"),
            other => panic!("expected manifest error, got {other}"),
        }
        assert!(err.to_string().contains(&format!("byte {key_offset}")), "{err}");

        // A corrupt parameter section is reported against the section start
        // (the byte right after the "params" marker line) and names itself.
        let params_start = (text.find("\nparams\n").unwrap() + "\nparams\n".len()) as u64;
        let idx = text.find("rmpi-params v1").unwrap();
        let poisoned = format!("{}{}", &text[..idx], text[idx..].replacen("0.", "NaN ", 1));
        let err = load_bundle(Cursor::new(poisoned.into_bytes())).unwrap_err();
        match &err {
            ServeError::Checkpoint { offset, .. } => assert_eq!(*offset, params_start, "{err}"),
            other => panic!("expected checkpoint error, got {other}"),
        }
        let msg = err.to_string();
        assert!(msg.contains("parameter section"), "{msg}");
        assert!(msg.contains(&format!("byte {params_start}")), "{msg}");
    }

    #[test]
    fn rejects_tampered_params_via_checksum() {
        let model = RmpiModel::new(RmpiConfig { dim: 4, ..RmpiConfig::base() }, 3, 0);
        let mut buf = Vec::new();
        save_bundle(&mut buf, &model, &[]).unwrap();
        // flip the last digit of the parameter section: still a valid finite
        // float of the same shape, so the tensor parser and model assembly
        // both accept it — only the checksum can catch the tampering
        let needle = b"rmpi-params v1";
        let params_at = buf.windows(needle.len()).position(|w| w == needle).unwrap();
        let idx = (params_at..buf.len()).rev().find(|&i| buf[i].is_ascii_digit()).unwrap();
        buf[idx] = if buf[idx] == b'9' { b'8' } else { buf[idx] + 1 };
        let err = load_bundle(Cursor::new(buf)).unwrap_err();
        match err {
            ServeError::Checksum { ref section, expected, actual } => {
                assert_eq!(section, "params");
                assert_ne!(expected, actual);
            }
            other => panic!("expected checksum error, got {other}"),
        }
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
    }

    #[test]
    fn legacy_bundles_without_checksum_still_load() {
        let model = RmpiModel::new(RmpiConfig { dim: 4, ..RmpiConfig::base() }, 3, 0);
        let mut buf = Vec::new();
        save_bundle(&mut buf, &model, &[]).unwrap();
        let text = String::from_utf8(buf).unwrap();
        // a bundle written before the checksum existed has no such line;
        // it must still load (verification is simply skipped)
        let legacy: String = text
            .lines()
            .filter(|l| !l.starts_with("params_checksum"))
            .map(|l| format!("{l}\n"))
            .collect();
        assert_ne!(legacy, text, "fixture must actually drop the key");
        let loaded = load_bundle(Cursor::new(legacy.into_bytes())).unwrap();
        assert_eq!(loaded.model.num_relations(), 3);
    }

    #[test]
    fn rejects_config_param_mismatch() {
        let model = RmpiModel::new(RmpiConfig { dim: 4, ..RmpiConfig::base() }, 3, 0);
        let mut buf = Vec::new();
        save_bundle(&mut buf, &model, &[]).unwrap();
        let text = String::from_utf8(buf).unwrap();
        // manifest claims ne=true but the store has no NE weights
        let lying = text.replace("ne false", "ne true");
        let err = load_bundle(Cursor::new(lying.into_bytes())).unwrap_err();
        assert!(matches!(err, ServeError::Assembly(_)), "{err}");
    }

    #[test]
    fn file_helpers_roundtrip() {
        let _lock = rmpi_testutil::failpoint::exclusive();
        let dir = std::env::temp_dir().join(format!("rmpi-bundle-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.bundle");
        let model = RmpiModel::new(RmpiConfig { dim: 4, ne: true, ..RmpiConfig::base() }, 3, 1);
        save_bundle_file(&path, &model, &[]).unwrap();
        let loaded = load_bundle_file(&path).unwrap();
        assert_eq!(loaded.model.num_relations(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_save_leaves_existing_bundle_untouched() {
        use rmpi_testutil::failpoint::{self, Action};
        let _lock = failpoint::exclusive();
        let dir = std::env::temp_dir().join(format!("rmpi-bundle-atomic-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.bundle");
        let model = RmpiModel::new(RmpiConfig { dim: 4, ..RmpiConfig::base() }, 3, 1);
        save_bundle_file(&path, &model, &[]).unwrap();
        let original = std::fs::read(&path).unwrap();

        failpoint::arm(rmpi_autograd::io::WRITE_FAILPOINT, Action::IoError("disk gone".into()));
        let bigger = RmpiModel::new(RmpiConfig { dim: 8, ..RmpiConfig::base() }, 3, 2);
        let err = save_bundle_file(&path, &bigger, &[]).unwrap_err();
        failpoint::disarm_all();
        assert!(err.to_string().contains("disk gone"), "{err}");

        assert_eq!(std::fs::read(&path).unwrap(), original, "failed save must not clobber");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| e.as_ref().unwrap().file_name() != "model.bundle")
            .collect();
        assert!(leftovers.is_empty(), "no temp litter: {leftovers:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
