//! Serving metrics: registry-backed counters and latency histograms shared
//! by the engine and the TCP front end.
//!
//! Each [`ServeStats`] is a bundle of handles into one
//! [`MetricsRegistry`] — by default the process-global registry, so a
//! `METRICS` dump shows serving counters next to trainer, pool and cache
//! metrics. Recording stays what it always was on the hot path: a handful of
//! relaxed atomic operations, never a lock. The legacy `STATS` JSON wire
//! shape is preserved byte for byte by [`ServeStats::to_json`], now routed
//! through the shared [`rmpi_obs::json`] writer.

use rmpi_obs::json::JsonObject;
use rmpi_obs::{Counter, Gauge, Histogram, MetricsRegistry};
use std::sync::Arc;
use std::time::Duration;

/// Counters and histograms shared by the engine and the TCP front end.
/// Clones share the same underlying storage.
#[derive(Clone, Debug)]
pub struct ServeStats {
    registry: Arc<MetricsRegistry>,
    /// `serve.scores.count` — individual triple scores computed.
    pub scores: Counter,
    /// `serve.score_requests.count` — `score`/`score_batch` engine calls.
    pub score_requests: Counter,
    /// `serve.rank_requests.count` — `rank_tails` engine calls.
    pub rank_requests: Counter,
    /// `serve.wire_requests.count` — protocol requests answered.
    pub wire_requests: Counter,
    /// `serve.rejected_overload.count` — connections shed at a full queue.
    pub rejected_overload: Counter,
    /// `serve.rejected_deadline.count` — requests shed after queue-wait
    /// exceeded the deadline.
    pub rejected_deadline: Counter,
    /// `serve.bad_requests.count` — malformed lines answered `ERR`.
    pub bad_requests: Counter,
    /// `serve.reloads.count` — successful hot bundle reloads.
    pub reloads: Counter,
    /// `serve.reload_failures.count` — reloads rejected before the swap.
    pub reload_failures: Counter,
    /// `serve.internal_errors.count` — panicking requests answered
    /// `ERR internal`.
    pub internal_errors: Counter,
    /// `serve.degraded_rejects.count` — requests answered `ERR degraded`
    /// because they needed fresh disk reads from a corrupt store.
    pub degraded_rejects: Counter,
    /// `serve.rejected_overlong.count` — request lines over the configured
    /// byte cap, answered `ERR request too long` and disconnected.
    pub rejected_overlong: Counter,
    /// `serve.idle_closed.count` — connections closed because the peer sent
    /// nothing for the idle timeout.
    pub idle_closed: Counter,
    /// `serve.rejected_conn_limit.count` — connections shed at the
    /// concurrent-connection cap.
    pub rejected_conn_limit: Counter,
    /// `serve.sock_config_failures.count` — accepted sockets dropped because
    /// their read/write timeouts could not be set (serving an unbounded
    /// socket is worse than shedding the connection).
    pub sock_config_failures: Counter,
    /// `serve.score.us` — per-call scoring latency (`score`/`score_batch`).
    pub score_latency: Histogram,
    /// `serve.rank.us` — per-call ranking latency.
    pub rank_latency: Histogram,
    /// `serve.queue_wait.us` — time jobs sat in the connection queue.
    pub queue_wait: Histogram,
    /// `serve.queue_depth.count` — connection-queue depth after the last
    /// enqueue/dequeue.
    pub queue_depth: Gauge,
}

impl ServeStats {
    /// Handles into the process-global registry (production default: one
    /// `METRICS` dump covers every subsystem).
    pub fn new() -> Self {
        Self::with_registry(Arc::clone(rmpi_obs::global()))
    }

    /// Handles into an explicit registry — tests pass a fresh one so
    /// per-engine counts stay exact under concurrent test execution.
    pub fn with_registry(registry: Arc<MetricsRegistry>) -> Self {
        ServeStats {
            scores: registry.counter("serve.scores.count"),
            score_requests: registry.counter("serve.score_requests.count"),
            rank_requests: registry.counter("serve.rank_requests.count"),
            wire_requests: registry.counter("serve.wire_requests.count"),
            rejected_overload: registry.counter("serve.rejected_overload.count"),
            rejected_deadline: registry.counter("serve.rejected_deadline.count"),
            bad_requests: registry.counter("serve.bad_requests.count"),
            reloads: registry.counter("serve.reloads.count"),
            reload_failures: registry.counter("serve.reload_failures.count"),
            internal_errors: registry.counter("serve.internal_errors.count"),
            degraded_rejects: registry.counter("serve.degraded_rejects.count"),
            rejected_overlong: registry.counter("serve.rejected_overlong.count"),
            idle_closed: registry.counter("serve.idle_closed.count"),
            rejected_conn_limit: registry.counter("serve.rejected_conn_limit.count"),
            sock_config_failures: registry.counter("serve.sock_config_failures.count"),
            score_latency: registry.histogram("serve.score.us"),
            rank_latency: registry.histogram("serve.rank.us"),
            queue_wait: registry.histogram("serve.queue_wait.us"),
            queue_depth: registry.gauge("serve.queue_depth.count"),
            registry,
        }
    }

    /// The registry these handles record into.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Per-verb wire latency histogram: `serve.wire.<verb>.us`.
    pub fn wire_latency(&self, verb: &str) -> Histogram {
        self.registry.histogram(&format!("serve.wire.{verb}.us"))
    }

    /// Record one `score`/`score_batch` engine call that scored `scored`
    /// triples in `elapsed`.
    pub fn record_score_call(&self, scored: u64, elapsed: Duration) {
        self.score_requests.inc();
        self.scores.add(scored);
        self.score_latency.record_duration(elapsed);
    }

    /// Record one `rank_tails` engine call that scored `scored` candidates
    /// in `elapsed`.
    pub fn record_rank_call(&self, scored: u64, elapsed: Duration) {
        self.rank_requests.inc();
        self.scores.add(scored);
        self.rank_latency.record_duration(elapsed);
    }

    /// Render every counter (plus derived means and cache state) as one JSON
    /// object — the `STATS` wire payload, identical in shape to what the
    /// pre-registry implementation emitted plus the engine's sticky
    /// `degraded` flag (so fleet monitors scraping `STATS` see degradation
    /// without a second `HEALTH` round trip). `cache_hits`/`cache_misses`/
    /// `cache_len` come from the engine's cache, which lives behind its own
    /// lock; `degraded` from the engine's store-failure state.
    pub fn to_json(
        &self,
        cache_hits: u64,
        cache_misses: u64,
        cache_len: usize,
        degraded: bool,
    ) -> String {
        let score = self.score_latency.summary();
        let rank = self.rank_latency.summary();
        let calls = score.count + rank.count;
        let sum_us = score.sum + rank.sum;
        let mean_us = if calls > 0 { sum_us as f64 / calls as f64 } else { 0.0 };
        let lookups = cache_hits + cache_misses;
        let hit_rate = if lookups > 0 { cache_hits as f64 / lookups as f64 } else { 0.0 };
        let mut o = JsonObject::new();
        o.field_u64("scores", self.scores.get());
        o.field_u64("score_requests", self.score_requests.get());
        o.field_u64("rank_requests", self.rank_requests.get());
        o.field_u64("wire_requests", self.wire_requests.get());
        o.field_u64("rejected_overload", self.rejected_overload.get());
        o.field_u64("rejected_deadline", self.rejected_deadline.get());
        o.field_u64("bad_requests", self.bad_requests.get());
        o.field_u64("reloads", self.reloads.get());
        o.field_u64("reload_failures", self.reload_failures.get());
        o.field_u64("internal_errors", self.internal_errors.get());
        o.field_u64("degraded_rejects", self.degraded_rejects.get());
        o.field_bool("degraded", degraded);
        o.field_u64("rejected_overlong", self.rejected_overlong.get());
        o.field_u64("idle_closed", self.idle_closed.get());
        o.field_u64("rejected_conn_limit", self.rejected_conn_limit.get());
        o.field_u64("latency_us_sum", sum_us);
        o.field_u64("latency_us_max", score.max.max(rank.max));
        o.field_f64("latency_us_mean", mean_us, 1);
        o.field_u64("cache_hits", cache_hits);
        o.field_u64("cache_misses", cache_misses);
        o.field_f64("cache_hit_rate", hit_rate, 4);
        o.field_u64("cache_len", cache_len as u64);
        o.finish()
    }
}

impl Default for ServeStats {
    fn default() -> Self {
        ServeStats::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> ServeStats {
        ServeStats::with_registry(Arc::new(MetricsRegistry::new()))
    }

    #[test]
    fn record_accumulates_and_tracks_max() {
        let s = fresh();
        s.record_score_call(3, Duration::from_micros(100));
        s.record_score_call(1, Duration::from_micros(50));
        assert_eq!(s.scores.get(), 4);
        assert_eq!(s.score_requests.get(), 2);
        assert_eq!(s.score_latency.sum(), 150);
        assert_eq!(s.score_latency.max(), 100);
    }

    #[test]
    fn json_has_every_field_and_derived_rates() {
        let s = fresh();
        s.record_rank_call(10, Duration::from_micros(200));
        let json = s.to_json(3, 1, 2, false);
        for field in [
            "\"scores\": 10",
            "\"rank_requests\": 1",
            "\"degraded\": false",
            "\"cache_hits\": 3",
            "\"cache_misses\": 1",
            "\"cache_hit_rate\": 0.7500",
            "\"cache_len\": 2",
            "\"latency_us_mean\": 200.0",
            "\"latency_us_sum\": 200",
            "\"latency_us_max\": 200",
            "\"reloads\": 0",
            "\"reload_failures\": 0",
            "\"internal_errors\": 0",
            "\"rejected_overlong\": 0",
            "\"idle_closed\": 0",
            "\"rejected_conn_limit\": 0",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(!json.contains('\n'), "stats JSON must be a single line for the wire protocol");
    }

    #[test]
    fn empty_stats_have_zero_rates() {
        let json = fresh().to_json(0, 0, 0, false);
        assert!(json.contains("\"cache_hit_rate\": 0.0000"));
        assert!(json.contains("\"latency_us_mean\": 0.0"));
    }

    #[test]
    fn degraded_flag_is_surfaced_in_stats_json() {
        assert!(fresh().to_json(0, 0, 0, true).contains("\"degraded\": true"));
        assert!(fresh().to_json(0, 0, 0, false).contains("\"degraded\": false"));
    }

    #[test]
    fn clones_share_storage_and_registry_sees_metrics() {
        let s = fresh();
        let clone = s.clone();
        clone.wire_requests.inc();
        assert_eq!(s.wire_requests.get(), 1);
        let dump = s.registry().to_json();
        assert!(dump.contains("\"serve.wire_requests.count\": 1"), "{dump}");
        assert!(dump.contains("\"serve.score.us\""), "{dump}");
    }

    #[test]
    fn per_verb_wire_histograms_register_on_demand() {
        let s = fresh();
        s.wire_latency("ping").record(7);
        assert!(s.registry().contains("serve.wire.ping.us"));
        assert_eq!(s.wire_latency("ping").count(), 1);
    }
}
