//! Lock-free serving counters, exported as JSON.
//!
//! Every counter is a relaxed atomic: stats recording must never contend
//! with the scoring hot path, and exact cross-counter consistency is not a
//! requirement for monitoring output.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Counters shared by the engine and the TCP front end.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Individual triple scores computed (cache hit or miss).
    pub scores: AtomicU64,
    /// `score`/`score_batch` engine calls.
    pub score_requests: AtomicU64,
    /// `rank_tails` engine calls.
    pub rank_requests: AtomicU64,
    /// Protocol requests answered by the TCP front end.
    pub wire_requests: AtomicU64,
    /// Connections rejected because the bounded queue was full.
    pub rejected_overload: AtomicU64,
    /// Requests dropped because their deadline expired in the queue.
    pub rejected_deadline: AtomicU64,
    /// Malformed protocol lines answered with `ERR`.
    pub bad_requests: AtomicU64,
    /// Successful hot bundle reloads (model swaps).
    pub reloads: AtomicU64,
    /// Reload attempts rejected before the swap (bad bundle or validation).
    pub reload_failures: AtomicU64,
    /// Requests that panicked and were answered `ERR internal`.
    pub internal_errors: AtomicU64,
    /// Total scoring latency in microseconds (per engine call).
    pub latency_us_sum: AtomicU64,
    /// Worst single engine-call latency in microseconds.
    pub latency_us_max: AtomicU64,
}

impl ServeStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one engine call that scored `scored` triples in `elapsed`.
    pub fn record_call(&self, counter: &AtomicU64, scored: u64, elapsed: Duration) {
        counter.fetch_add(1, Ordering::Relaxed);
        self.scores.fetch_add(scored, Ordering::Relaxed);
        let us = elapsed.as_micros().min(u64::MAX as u128) as u64;
        self.latency_us_sum.fetch_add(us, Ordering::Relaxed);
        self.latency_us_max.fetch_max(us, Ordering::Relaxed);
    }

    /// Render every counter (plus derived means and cache state) as one JSON
    /// object. `cache_hits`/`cache_misses`/`cache_len` come from the engine's
    /// cache, which lives behind its own lock.
    pub fn to_json(&self, cache_hits: u64, cache_misses: u64, cache_len: usize) -> String {
        let scores = self.scores.load(Ordering::Relaxed);
        let calls = self.score_requests.load(Ordering::Relaxed) + self.rank_requests.load(Ordering::Relaxed);
        let sum_us = self.latency_us_sum.load(Ordering::Relaxed);
        let mean_us = if calls > 0 { sum_us as f64 / calls as f64 } else { 0.0 };
        let lookups = cache_hits + cache_misses;
        let hit_rate = if lookups > 0 { cache_hits as f64 / lookups as f64 } else { 0.0 };
        format!(
            "{{\"scores\": {scores}, \"score_requests\": {}, \"rank_requests\": {}, \
             \"wire_requests\": {}, \"rejected_overload\": {}, \"rejected_deadline\": {}, \
             \"bad_requests\": {}, \"reloads\": {}, \"reload_failures\": {}, \
             \"internal_errors\": {}, \"latency_us_sum\": {sum_us}, \"latency_us_max\": {}, \
             \"latency_us_mean\": {mean_us:.1}, \"cache_hits\": {cache_hits}, \
             \"cache_misses\": {cache_misses}, \"cache_hit_rate\": {hit_rate:.4}, \
             \"cache_len\": {cache_len}}}",
            self.score_requests.load(Ordering::Relaxed),
            self.rank_requests.load(Ordering::Relaxed),
            self.wire_requests.load(Ordering::Relaxed),
            self.rejected_overload.load(Ordering::Relaxed),
            self.rejected_deadline.load(Ordering::Relaxed),
            self.bad_requests.load(Ordering::Relaxed),
            self.reloads.load(Ordering::Relaxed),
            self.reload_failures.load(Ordering::Relaxed),
            self.internal_errors.load(Ordering::Relaxed),
            self.latency_us_max.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_and_tracks_max() {
        let s = ServeStats::new();
        s.record_call(&s.score_requests, 3, Duration::from_micros(100));
        s.record_call(&s.score_requests, 1, Duration::from_micros(50));
        assert_eq!(s.scores.load(Ordering::Relaxed), 4);
        assert_eq!(s.score_requests.load(Ordering::Relaxed), 2);
        assert_eq!(s.latency_us_sum.load(Ordering::Relaxed), 150);
        assert_eq!(s.latency_us_max.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn json_has_every_field_and_derived_rates() {
        let s = ServeStats::new();
        s.record_call(&s.rank_requests, 10, Duration::from_micros(200));
        let json = s.to_json(3, 1, 2);
        for field in [
            "\"scores\": 10",
            "\"rank_requests\": 1",
            "\"cache_hits\": 3",
            "\"cache_misses\": 1",
            "\"cache_hit_rate\": 0.7500",
            "\"cache_len\": 2",
            "\"latency_us_mean\": 200.0",
            "\"reloads\": 0",
            "\"reload_failures\": 0",
            "\"internal_errors\": 0",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(!json.contains('\n'), "stats JSON must be a single line for the wire protocol");
    }

    #[test]
    fn empty_stats_have_zero_rates() {
        let json = ServeStats::new().to_json(0, 0, 0);
        assert!(json.contains("\"cache_hit_rate\": 0.0000"));
        assert!(json.contains("\"latency_us_mean\": 0.0"));
    }
}
