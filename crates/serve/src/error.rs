//! One error type for the whole serving layer.
//!
//! Bundle-parsing variants carry the **byte offset** into the bundle stream
//! and name the section (`manifest` vs `parameter section`) so a corrupt
//! artifact can be inspected with `dd`/`head -c` instead of a debugger.

use rmpi_autograd::io::CheckpointError;
use rmpi_core::ModelAssemblyError;
use rmpi_runtime::PoolError;
use std::fmt;

/// Errors from bundle IO, engine queries and the TCP front end.
#[derive(Debug)]
pub enum ServeError {
    /// A malformed bundle manifest line.
    Manifest {
        /// 1-based line number within the bundle.
        line: usize,
        /// Byte offset of the offending line's start within the bundle.
        offset: u64,
        /// What was wrong.
        message: String,
    },
    /// The parameter section failed to parse.
    Checkpoint {
        /// Byte offset into the bundle at which parsing stopped.
        offset: u64,
        /// The underlying parser error.
        source: CheckpointError,
    },
    /// The parameters do not match the manifest's configuration.
    Assembly(ModelAssemblyError),
    /// A bundle section's bytes do not hash to the checksum its manifest
    /// recorded — bit-rot or tampering between save and load.
    Checksum {
        /// Which section failed (`"params"` for the in-file parameter
        /// section, or a file's bundle-relative path for directory bundles).
        section: String,
        /// The checksum the manifest promised.
        expected: u64,
        /// The checksum the bytes actually hash to.
        actual: u64,
    },
    /// An on-disk graph section failed the store's own validation.
    Store(rmpi_store::StoreError),
    /// A query referenced a relation outside the model's id space.
    UnknownRelation(u32),
    /// A malformed wire-protocol request.
    BadRequest(String),
    /// The server's bounded queue was full (backpressure).
    Overloaded,
    /// The request's deadline expired before it was processed.
    DeadlineExpired,
    /// A request line exceeded the server's maximum length; the connection
    /// is closed (the stream cannot be resynchronised mid-line).
    OverlongRequest {
        /// The configured per-line byte cap.
        limit: usize,
    },
    /// The server is at its concurrent-connection cap.
    ConnLimit,
    /// A hot-reload candidate bundle failed validation; the previous model
    /// keeps serving.
    Reload(String),
    /// The engine's store backend hit confirmed corruption and the request
    /// needed fresh disk reads: answered `ERR degraded` rather than a
    /// possibly-wrong score. Cache hits keep serving.
    Degraded(String),
    /// A request handler panicked; the worker survived and answered `ERR`.
    Internal(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Manifest { line, offset, message } => {
                write!(f, "bundle manifest error at line {line} (byte {offset}): {message}")
            }
            ServeError::Checkpoint { offset, source } => {
                write!(f, "bundle parameter section at byte {offset}: {source}")
            }
            ServeError::Assembly(e) => write!(f, "bundle does not assemble: {e}"),
            ServeError::Checksum { section, expected, actual } => write!(
                f,
                "bundle section {section:?} checksum mismatch: manifest says {expected:016x}, \
                 bytes hash to {actual:016x}"
            ),
            ServeError::Store(e) => write!(f, "bundle graph section: {e}"),
            ServeError::UnknownRelation(r) => write!(f, "unknown relation id {r}"),
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServeError::Overloaded => write!(f, "server overloaded"),
            ServeError::DeadlineExpired => write!(f, "deadline expired"),
            ServeError::OverlongRequest { limit } => {
                write!(f, "request too long (over {limit} bytes)")
            }
            ServeError::ConnLimit => write!(f, "too many connections"),
            ServeError::Reload(msg) => write!(f, "reload rejected: {msg}"),
            ServeError::Degraded(msg) => write!(f, "degraded: {msg}"),
            ServeError::Internal(msg) => write!(f, "internal: {msg}"),
            ServeError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Checkpoint { source, .. } => Some(source),
            ServeError::Assembly(e) => Some(e),
            ServeError::Store(e) => Some(e),
            ServeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<rmpi_store::StoreError> for ServeError {
    fn from(e: rmpi_store::StoreError) -> Self {
        match e {
            // an Io failure while reading a graph section is an Io failure
            // of the bundle, same flattening as checkpoint Io
            rmpi_store::StoreError::Io(io) => ServeError::Io(io),
            other => ServeError::Store(other),
        }
    }
}

impl From<ModelAssemblyError> for ServeError {
    fn from(e: ModelAssemblyError) -> Self {
        ServeError::Assembly(e)
    }
}

impl From<PoolError> for ServeError {
    fn from(e: PoolError) -> Self {
        ServeError::Internal(e.to_string())
    }
}

impl From<CheckpointError> for ServeError {
    fn from(e: CheckpointError) -> Self {
        // the save path has no meaningful stream offset
        checkpoint_at(0, e)
    }
}

/// Attach a byte offset to a [`CheckpointError`], flattening plain I/O
/// failures to [`ServeError::Io`] (an Io failure mid-params is an Io failure
/// of the bundle, not a format problem).
pub(crate) fn checkpoint_at(offset: u64, e: CheckpointError) -> ServeError {
    match e {
        CheckpointError::Io(io) => ServeError::Io(io),
        other => ServeError::Checkpoint { offset, source: other },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ServeError::Manifest { line: 3, offset: 41, message: "bad dim".into() };
        assert!(e.to_string().contains("line 3"));
        assert!(e.to_string().contains("byte 41"));
        assert!(std::error::Error::source(&e).is_none());

        let io = ServeError::from(std::io::Error::other("boom"));
        assert!(std::error::Error::source(&io).is_some());

        let ck = checkpoint_at(120, CheckpointError::BadMagic("x".into()));
        assert!(matches!(ck, ServeError::Checkpoint { offset: 120, .. }));
        assert!(ck.to_string().contains("parameter section at byte 120"), "{ck}");
        assert!(std::error::Error::source(&ck).is_some());

        // checkpoint Io failures flatten to ServeError::Io
        let flat = checkpoint_at(
            7,
            CheckpointError::Io(std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "eof")),
        );
        assert!(matches!(flat, ServeError::Io(_)));

        let internal =
            ServeError::from(PoolError::WorkerPanicked { index: 4, message: "boom".into() });
        assert!(internal.to_string().starts_with("internal: "), "{internal}");
        assert!(ServeError::Reload("bad probe".into()).to_string().contains("reload rejected"));
    }
}
