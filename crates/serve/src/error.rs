//! One error type for the whole serving layer.

use rmpi_autograd::io::CheckpointError;
use rmpi_core::ModelAssemblyError;
use std::fmt;

/// Errors from bundle IO, engine queries and the TCP front end.
#[derive(Debug)]
pub enum ServeError {
    /// A malformed bundle manifest line.
    Manifest {
        /// 1-based line number within the bundle.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// The parameter section failed to parse.
    Checkpoint(CheckpointError),
    /// The parameters do not match the manifest's configuration.
    Assembly(ModelAssemblyError),
    /// A query referenced a relation outside the model's id space.
    UnknownRelation(u32),
    /// A malformed wire-protocol request.
    BadRequest(String),
    /// The server's bounded queue was full (backpressure).
    Overloaded,
    /// The request's deadline expired before it was processed.
    DeadlineExpired,
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Manifest { line, message } => {
                write!(f, "bundle manifest error at line {line}: {message}")
            }
            ServeError::Checkpoint(e) => write!(f, "bundle parameter section: {e}"),
            ServeError::Assembly(e) => write!(f, "bundle does not assemble: {e}"),
            ServeError::UnknownRelation(r) => write!(f, "unknown relation id {r}"),
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServeError::Overloaded => write!(f, "server overloaded"),
            ServeError::DeadlineExpired => write!(f, "deadline expired"),
            ServeError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Checkpoint(e) => Some(e),
            ServeError::Assembly(e) => Some(e),
            ServeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<CheckpointError> for ServeError {
    fn from(e: CheckpointError) -> Self {
        // an Io failure mid-params is an Io failure of the bundle, not a
        // format problem — keep the distinction callers match on
        match e {
            CheckpointError::Io(io) => ServeError::Io(io),
            other => ServeError::Checkpoint(other),
        }
    }
}

impl From<ModelAssemblyError> for ServeError {
    fn from(e: ModelAssemblyError) -> Self {
        ServeError::Assembly(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ServeError::Manifest { line: 3, message: "bad dim".into() };
        assert!(e.to_string().contains("line 3"));
        assert!(std::error::Error::source(&e).is_none());

        let io = ServeError::from(std::io::Error::new(std::io::ErrorKind::Other, "boom"));
        assert!(std::error::Error::source(&io).is_some());

        let ck = ServeError::from(CheckpointError::BadMagic("x".into()));
        assert!(matches!(ck, ServeError::Checkpoint(_)));
        assert!(std::error::Error::source(&ck).is_some());

        // checkpoint Io failures flatten to ServeError::Io
        let flat = ServeError::from(CheckpointError::Io(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "eof",
        )));
        assert!(matches!(flat, ServeError::Io(_)));
    }
}
