#!/bin/bash
# Sequential experiment campaign (quick profile, reduced budgets for the big tables).
set -x
R=results
run() { name=$1; shift; cargo run --release -p rmpi-bench --bin "$name" -- "$@" > $R/$name.txt 2> $R/$name.err; echo "=== $name done rc=$? ==="; }
run table1_stats
run table2_semi_unseen --epochs 6 --max-samples 600
run table3_fully_unseen --epochs 6 --max-samples 600
run table4_maker --epochs 5 --max-samples 500
run table5_maker_schema --epochs 5 --max-samples 500
run table6_partial --datasets wn.v1,fb.v1,nell.v1,nell.v4 --epochs 5 --max-samples 500
run table7_fusion --datasets nell.v2,nell.v2.v3,nell.v4.v3 --epochs 5 --max-samples 500
run table8_schema_partial --epochs 5 --max-samples 500
run fig4_case_study --epochs 5 --max-samples 500
run ablation_extensions --epochs 5 --max-samples 500
echo ALL_EXPERIMENTS_DONE
