//! Cross-crate integration for the fully inductive setting: unseen
//! relations are scorable, and schema enhancement recovers signal in the
//! fully-unseen test graphs (the paper's headline claim).

use rmpi::core::config::RelationInit;
use rmpi::core::{train_model, RmpiConfig, RmpiModel, TrainConfig};
use rmpi::datasets::{build_benchmark, Scale};
use rmpi::eval::onto::schema_vectors;
use rmpi::eval::protocol::{evaluate, EvalConfig};

#[test]
fn schema_enhancement_beats_random_init_on_fully_unseen() {
    let b = build_benchmark("nell.v1.v3", Scale::Quick);
    let train_cfg = TrainConfig {
        epochs: 3,
        max_samples_per_epoch: 350,
        max_valid_samples: 60,
        patience: 0,
        ..Default::default()
    };
    let eval_cfg =
        EvalConfig { num_candidates: 15, max_targets: 60, seed: 4, ..Default::default() };
    let fully = b.test("TE(fully)").expect("TE(fully)");

    let cfg = RmpiConfig { dim: 12, ..RmpiConfig::base() };
    let mut random = RmpiModel::new(cfg, b.num_relations(), 0);
    train_model(&mut random, &b.train.graph, &b.train.targets, &b.train.valid, &train_cfg);
    let m_random = evaluate(&random, fully, &eval_cfg);

    let onto = schema_vectors(&b, 24, 60, 17);
    let cfg_s = RmpiConfig { init: RelationInit::Schema, ..cfg };
    let mut schema = RmpiModel::with_schema_vectors(cfg_s, onto, 0);
    train_model(&mut schema, &b.train.graph, &b.train.targets, &b.train.valid, &train_cfg);
    let m_schema = evaluate(&schema, fully, &eval_cfg);

    assert!(
        m_schema.auc_pr > m_random.auc_pr,
        "schema init should beat random on TE(fully): {} vs {}",
        m_schema.auc_pr,
        m_random.auc_pr
    );
}

#[test]
fn unseen_relations_score_without_panicking_across_test_sets() {
    use rand::SeedableRng;
    use rmpi::core::ScoringModel;
    let b = build_benchmark("nell.v2.v3", Scale::Quick);
    let model =
        RmpiModel::new(RmpiConfig { dim: 8, ne: true, ..Default::default() }, b.num_relations(), 1);
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    for test in &b.tests {
        for &t in test.targets.iter().take(10) {
            assert!(model.score(&test.graph, t, &mut rng).is_finite(), "{}: {t}", test.name);
        }
    }
}

#[test]
fn ext_benchmark_buckets_are_scorable() {
    use rand::SeedableRng;
    use rmpi::baselines::common::BaselineConfig;
    use rmpi::baselines::MakerLiteModel;
    use rmpi::core::ScoringModel;
    let b = build_benchmark("nell-ext", Scale::Quick);
    let model = MakerLiteModel::new(
        BaselineConfig { dim: 8, ..Default::default() },
        b.num_relations(),
        b.seen_relations.clone(),
        0,
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    for bucket in ["u_ent", "u_rel", "u_both"] {
        let test = b.test(bucket).unwrap();
        for &t in test.targets.iter().take(5) {
            assert!(model.score(&test.graph, t, &mut rng).is_finite(), "{bucket}: {t}");
        }
    }
}
