//! Mechanistic separation between one-hop relation correlation and deep
//! target-aware relational message passing, tested *deterministically*
//! (no training, no flakiness):
//!
//! 1. **TACT-base is additive in the target relation**: its score is
//!    `w·(ReLU(Σ_e Σ_j W_e h_j⁰) + h_rt⁰)`, so for a fixed context the
//!    score difference between two candidate relations is a
//!    context-independent constant. It can never decide *which* of two
//!    relations a context supports — the paper's motivation for moving past
//!    one-hop correlation (§IV-D.1).
//! 2. **Multi-layer relational passing is not additive**: even RMPI-base
//!    routes the target node's own embedding *out into the context and
//!    back* (relation-view edges are bidirectional), so after the ReLU the
//!    relation gap varies with the context;
//! 3. **Target-aware attention couples explicitly**: the attention logits
//!    `h_rt·h_rj` make aggregation weights depend on the target relation —
//!    at K = 2 the coupling reaches one-hop structure, at K = 3 it reaches
//!    the hop-2 middles of the confusable-long-chain situation planted by
//!    `rmpi_datasets`' LongPair groups.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rmpi::baselines::TactBaseModel;
use rmpi::core::{RmpiConfig, RmpiModel, ScoringModel};
use rmpi::kg::{KnowledgeGraph, Triple};

/// Two contexts for the target pair (0, 9): parallel double chains through
/// mid-relation `2` (context A) or mid-relation `3` (context B). Everything
/// else is identical; only the hop-2 relation differs.
fn context(mid_relation: u32) -> KnowledgeGraph {
    KnowledgeGraph::from_triples(vec![
        // chain 1: 0 --r0--> 1 --mid--> 2 --r1--> 9
        Triple::new(0u32, 0u32, 1u32),
        Triple::new(1u32, mid_relation, 2u32),
        Triple::new(2u32, 1u32, 9u32),
        // chain 2 (gives the target's H-H / T-T groups a second member, so
        // attention has something to arbitrate): 0 --r0--> 3 --mid--> 4 --r1--> 9
        Triple::new(0u32, 0u32, 3u32),
        Triple::new(3u32, mid_relation, 4u32),
        Triple::new(4u32, 1u32, 9u32),
    ])
}

/// score(rel_a | ctx) − score(rel_b | ctx): what the model thinks
/// distinguishes the two candidate relations *in this context*.
fn relation_gap<M: ScoringModel>(model: &M, g: &KnowledgeGraph, rel_a: u32, rel_b: u32) -> f32 {
    let mut rng = StdRng::seed_from_u64(0);
    model.score(g, Triple::new(0u32, rel_a, 9u32), &mut rng)
        - model.score(g, Triple::new(0u32, rel_b, 9u32), &mut rng)
}

#[test]
fn tact_base_relation_gap_is_context_independent() {
    let model = TactBaseModel::new(12, 2, 8, 3);
    let gap_a = relation_gap(&model, &context(2), 4, 5);
    let gap_b = relation_gap(&model, &context(3), 4, 5);
    assert!(
        (gap_a - gap_b).abs() < 1e-4,
        "TACT-base must be additive in the target relation: {gap_a} vs {gap_b}"
    );
    // and a completely different context gives the same gap too
    let tiny = KnowledgeGraph::from_triples(vec![Triple::new(0u32, 6u32, 9u32)]);
    let gap_c = relation_gap(&model, &tiny, 4, 5);
    assert!((gap_a - gap_c).abs() < 1e-4, "gap drifted across contexts: {gap_a} vs {gap_c}");
}

#[test]
fn rmpi_base_couples_through_roundtrip_paths() {
    // Unlike TACT-base, RMPI-base is NOT additive even without attention:
    // the target node sends its embedding to its relation-view neighbours at
    // layer 1 and reads the (ReLU-mixed) result back at layer 2, so the
    // relation gap varies with the context — the representational reason
    // multi-layer passing beats one-hop correlation on unseen relations
    // (paper §IV-D.1).
    let cfg = RmpiConfig { dim: 12, num_layers: 2, edge_dropout: 0.0, ..RmpiConfig::base() };
    let model = RmpiModel::new(cfg, 8, 3);
    let gap_a = relation_gap(&model, &context(2), 4, 5);
    let gap_b = relation_gap(&model, &context(3), 4, 5);
    assert!(
        (gap_a - gap_b).abs() > 1e-6,
        "RMPI-base should couple target and context via round-trip paths: {gap_a} vs {gap_b}"
    );
}

#[test]
fn target_aware_attention_couples_relation_identity_to_hop2_structure() {
    // K = 3 with TA: the target is re-attended at layer 2 over neighbours
    // whose layer-1 representations already contain the mid relation, so the
    // relation gap must differ between mid=2 and mid=3 contexts.
    let cfg =
        RmpiConfig { dim: 12, num_layers: 3, ta: true, edge_dropout: 0.0, ..RmpiConfig::base() };
    let model = RmpiModel::new(cfg, 8, 3);
    let gap_a = relation_gap(&model, &context(2), 4, 5);
    let gap_b = relation_gap(&model, &context(3), 4, 5);
    assert!(
        (gap_a - gap_b).abs() > 1e-6,
        "RMPI-TA (K=3) should couple relation identity to hop-2 context: {gap_a} vs {gap_b}"
    );
}

#[test]
fn attention_coupling_already_sees_one_hop_at_k2() {
    // At K = 2, TA coupling reaches one-hop structure: contexts differing in
    // a *one-hop* relation produce different gaps.
    let cfg =
        RmpiConfig { dim: 12, num_layers: 2, ta: true, edge_dropout: 0.0, ..RmpiConfig::base() };
    let model = RmpiModel::new(cfg, 8, 3);
    let ctx_one = KnowledgeGraph::from_triples(vec![
        Triple::new(0u32, 0u32, 1u32),
        Triple::new(1u32, 1u32, 9u32),
        Triple::new(0u32, 2u32, 9u32), // parallel edge r2 (one-hop difference)
        Triple::new(0u32, 6u32, 9u32),
    ]);
    let ctx_two = KnowledgeGraph::from_triples(vec![
        Triple::new(0u32, 0u32, 1u32),
        Triple::new(1u32, 1u32, 9u32),
        Triple::new(0u32, 3u32, 9u32), // parallel edge r3 instead
        Triple::new(0u32, 6u32, 9u32),
    ]);
    let gap_a = relation_gap(&model, &ctx_one, 4, 5);
    let gap_b = relation_gap(&model, &ctx_two, 4, 5);
    assert!(
        (gap_a - gap_b).abs() > 1e-6,
        "RMPI-TA (K=2) should couple relation identity to one-hop context: {gap_a} vs {gap_b}"
    );
}
