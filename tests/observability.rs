//! End-to-end observability: a short instrumented training run followed by a
//! serve session, all recording into the process-global metrics registry, then
//! assertions that every mandatory metric is present and nonzero — trainer
//! phase timings, pool utilisation, cache hit rate, and per-verb latency
//! percentiles — through both `METRICS` and the backward-compatible `STATS`
//! wire commands. `scripts/verify.sh` runs this test as its observability
//! gate.

use rmpi::prelude::*;
use rmpi::serve::{serve, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

/// Pull the integer value of `"key": <n>` out of a single-line JSON dump.
fn field_u64(json: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\": ");
    let at = json.find(&pat).unwrap_or_else(|| panic!("metric {key:?} missing from {json}"));
    json[at + pat.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("metric {key:?} is not an integer in {json}"))
}

fn query(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> String {
    writeln!(stream, "{line}").expect("send");
    let mut response = String::new();
    reader.read_line(&mut response).expect("recv");
    response.trim_end().to_string()
}

#[test]
fn train_and_serve_populate_the_global_registry() {
    let registry = metrics();

    // --- a short data-parallel training run -------------------------------
    let b = build_benchmark("nell.v1", Scale::Quick);
    let mut model =
        RmpiModel::new(RmpiConfig { dim: 8, ..RmpiConfig::base() }, b.num_relations(), 1);
    let cfg = TrainConfig {
        epochs: 1,
        batch_size: 16,
        max_samples_per_epoch: 32,
        max_valid_samples: 4,
        patience: 0,
        seed: 3,
        threads: 2,
        ..Default::default()
    };
    train_model(&mut model, &b.train.graph, &b.train.targets, &b.train.valid, &cfg);

    // trainer phase timings: every phase must have fired
    for phase in [
        "core.extract.us",
        "trainer.forward.us",
        "trainer.backward.us",
        "trainer.optim_step.us",
        "trainer.epoch.us",
    ] {
        let s = registry.histogram(phase).summary();
        assert!(s.count > 0, "{phase} never recorded");
    }
    assert!(
        registry.histogram("trainer.epoch.us").summary().sum > 0,
        "an epoch cannot take zero microseconds"
    );
    assert!(registry.counter("trainer.epochs.count").get() >= 1);
    assert!(registry.counter("trainer.batches.count").get() >= 1);
    assert!(registry.counter("trainer.samples.count").get() >= 32);

    // pool utilisation: threads=2 must have gone through the worker pool
    assert!(registry.counter("pool.maps.count").get() >= 1, "pool never dispatched");
    assert!(registry.counter("pool.items.count").get() >= 32);
    assert!(registry.histogram("pool.shard_busy.us").summary().count > 0);

    // --- a serve session against the same registry ------------------------
    let test = b.test("TE").expect("TE split");
    let engine = Arc::new(Engine::new(
        model,
        test.graph.clone(),
        EngineConfig::default().with_seed(5).with_cache_capacity(256).with_threads(1),
    ));
    let mut server = serve(Arc::clone(&engine), ServerConfig::default()).expect("serve");
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    let t = test.targets[0];
    let score_line = format!("SCORE {} {} {}", t.head.0, t.relation.0, t.tail.0);
    assert!(query(&mut stream, &mut reader, &score_line).starts_with("OK "));
    // the same triple again: this one is a guaranteed cache hit
    assert!(query(&mut stream, &mut reader, &score_line).starts_with("OK "));
    let rank_line = format!("RANK {} {} 3", t.head.0, t.relation.0);
    assert!(query(&mut stream, &mut reader, &rank_line).starts_with("OK "));

    // STATS keeps the legacy single-line wire shape
    let stats = query(&mut stream, &mut reader, "STATS");
    assert!(stats.starts_with("OK {"), "{stats}");
    for legacy in ["\"scores\": ", "\"cache_hit_rate\": ", "\"latency_us_mean\": "] {
        assert!(stats.contains(legacy), "STATS lost legacy field {legacy}: {stats}");
    }
    assert!(field_u64(&stats[3..], "scores") >= 2);

    // METRICS dumps the whole registry: serve, trainer and pool together
    let line = query(&mut stream, &mut reader, "METRICS");
    assert!(line.starts_with("OK {"), "{line}");
    let metrics_json = &line[3..];
    for name in [
        "serve.wire.score.us",
        "serve.wire.rank.us",
        "serve.queue_wait.us",
        "serve.score.us",
        "trainer.forward.us",
        "pool.shard_busy.us",
    ] {
        assert!(metrics_json.contains(&format!("\"{name}\"")), "METRICS missing {name}: {line}");
    }
    // per-verb latency percentiles are in the dump
    let wire_score = metrics_json
        .split("\"serve.wire.score.us\": ")
        .nth(1)
        .expect("serve.wire.score.us object");
    for pct in ["\"p50\"", "\"p90\"", "\"p99\""] {
        assert!(wire_score.starts_with('{') && wire_score.contains(pct), "{wire_score}");
    }
    // a nonzero cache hit rate: the repeated SCORE hit the LRU
    assert!(field_u64(metrics_json, "subgraph.cache_hits.count") >= 1, "{metrics_json}");
    assert!(field_u64(metrics_json, "subgraph.cache_entries.count") >= 1, "{metrics_json}");

    server.shutdown();

    // the in-process dump matches what came over the wire (modulo the
    // metrics that kept ticking during the dump itself)
    assert!(engine.metrics_json().contains("\"serve.wire.metrics.us\""));
}
