//! End-to-end observability: a short instrumented training run followed by a
//! serve session, all recording into the process-global metrics registry, then
//! assertions that every mandatory metric is present and nonzero — trainer
//! phase timings, pool utilisation, cache hit rate, and per-verb latency
//! percentiles — through both `METRICS` and the backward-compatible `STATS`
//! wire commands. `scripts/verify.sh` runs this test as its observability
//! gate.
//!
//! A second test exercises the resilience counters end to end: the server's
//! connection-hardening counters (overlong lines, idle reaping, the
//! connection cap) and the client's retry-layer counters (retries,
//! failovers, breaker trips), all recording into the same global registry.

use rmpi::client::{BackoffConfig, BreakerConfig};
use rmpi::prelude::*;
use rmpi::serve::{serve, ServerConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// Pull the integer value of `"key": <n>` out of a single-line JSON dump.
fn field_u64(json: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\": ");
    let at = json.find(&pat).unwrap_or_else(|| panic!("metric {key:?} missing from {json}"));
    json[at + pat.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("metric {key:?} is not an integer in {json}"))
}

fn query(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> String {
    writeln!(stream, "{line}").expect("send");
    let mut response = String::new();
    reader.read_line(&mut response).expect("recv");
    response.trim_end().to_string()
}

#[test]
fn train_and_serve_populate_the_global_registry() {
    let registry = metrics();

    // --- a short data-parallel training run -------------------------------
    let b = build_benchmark("nell.v1", Scale::Quick);
    let mut model =
        RmpiModel::new(RmpiConfig { dim: 8, ..RmpiConfig::base() }, b.num_relations(), 1);
    let cfg = TrainConfig {
        epochs: 1,
        batch_size: 16,
        max_samples_per_epoch: 32,
        max_valid_samples: 4,
        patience: 0,
        seed: 3,
        threads: 2,
        ..Default::default()
    };
    train_model(&mut model, &b.train.graph, &b.train.targets, &b.train.valid, &cfg);

    // trainer phase timings: every phase must have fired
    for phase in [
        "core.extract.us",
        "trainer.forward.us",
        "trainer.backward.us",
        "trainer.optim_step.us",
        "trainer.epoch.us",
    ] {
        let s = registry.histogram(phase).summary();
        assert!(s.count > 0, "{phase} never recorded");
    }
    assert!(
        registry.histogram("trainer.epoch.us").summary().sum > 0,
        "an epoch cannot take zero microseconds"
    );
    assert!(registry.counter("trainer.epochs.count").get() >= 1);
    assert!(registry.counter("trainer.batches.count").get() >= 1);
    assert!(registry.counter("trainer.samples.count").get() >= 32);

    // pool utilisation: threads=2 must have gone through the worker pool
    assert!(registry.counter("pool.maps.count").get() >= 1, "pool never dispatched");
    assert!(registry.counter("pool.items.count").get() >= 32);
    assert!(registry.histogram("pool.shard_busy.us").summary().count > 0);

    // --- a serve session against the same registry ------------------------
    let test = b.test("TE").expect("TE split");
    let engine = Arc::new(Engine::new(
        model,
        test.graph.clone(),
        EngineConfig::default().with_seed(5).with_cache_capacity(256).with_threads(1),
    ));
    let mut server = serve(Arc::clone(&engine), ServerConfig::default()).expect("serve");
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    let t = test.targets[0];
    let score_line = format!("SCORE {} {} {}", t.head.0, t.relation.0, t.tail.0);
    assert!(query(&mut stream, &mut reader, &score_line).starts_with("OK "));
    // the same triple again: this one is a guaranteed cache hit
    assert!(query(&mut stream, &mut reader, &score_line).starts_with("OK "));
    let rank_line = format!("RANK {} {} 3", t.head.0, t.relation.0);
    assert!(query(&mut stream, &mut reader, &rank_line).starts_with("OK "));

    // STATS keeps the legacy single-line wire shape
    let stats = query(&mut stream, &mut reader, "STATS");
    assert!(stats.starts_with("OK {"), "{stats}");
    for legacy in ["\"scores\": ", "\"cache_hit_rate\": ", "\"latency_us_mean\": "] {
        assert!(stats.contains(legacy), "STATS lost legacy field {legacy}: {stats}");
    }
    assert!(field_u64(&stats[3..], "scores") >= 2);
    // engine degraded state rides along in STATS so fleet monitors don't
    // need a second HEALTH round trip — this healthy engine reports false
    assert!(stats.contains("\"degraded\": false"), "STATS lost the degraded flag: {stats}");

    // METRICS dumps the whole registry: serve, trainer and pool together
    let line = query(&mut stream, &mut reader, "METRICS");
    assert!(line.starts_with("OK {"), "{line}");
    let metrics_json = &line[3..];
    for name in [
        "serve.wire.score.us",
        "serve.wire.rank.us",
        "serve.queue_wait.us",
        "serve.score.us",
        "trainer.forward.us",
        "pool.shard_busy.us",
    ] {
        assert!(metrics_json.contains(&format!("\"{name}\"")), "METRICS missing {name}: {line}");
    }
    // per-verb latency percentiles are in the dump
    let wire_score =
        metrics_json.split("\"serve.wire.score.us\": ").nth(1).expect("serve.wire.score.us object");
    for pct in ["\"p50\"", "\"p90\"", "\"p99\""] {
        assert!(wire_score.starts_with('{') && wire_score.contains(pct), "{wire_score}");
    }
    // a nonzero cache hit rate: the repeated SCORE hit the LRU
    assert!(field_u64(metrics_json, "subgraph.cache_hits.count") >= 1, "{metrics_json}");
    assert!(field_u64(metrics_json, "subgraph.cache_entries.count") >= 1, "{metrics_json}");

    server.shutdown();

    // the in-process dump matches what came over the wire (modulo the
    // metrics that kept ticking during the dump itself)
    assert!(engine.metrics_json().contains("\"serve.wire.metrics.us\""));
}

/// Wait (bounded) for a counter that a server thread increments
/// asynchronously after the client-visible effect.
fn await_counter(name: &str, floor: u64) -> u64 {
    let registry = metrics();
    for _ in 0..100 {
        let v = registry.counter(name).get();
        if v >= floor {
            return v;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("counter {name} never reached {floor} (at {})", registry.counter(name).get());
}

#[test]
fn hardening_and_retry_layers_populate_the_resilience_counters() {
    let registry = metrics();
    let graph = KnowledgeGraph::from_triples(vec![
        Triple::new(0u32, 0u32, 1u32),
        Triple::new(1u32, 1u32, 2u32),
        Triple::new(2u32, 2u32, 0u32),
    ]);
    let model = RmpiModel::new(RmpiConfig { dim: 8, ..RmpiConfig::base() }, 4, 0);
    let engine = || {
        Arc::new(Engine::new(
            model.clone(),
            graph.clone(),
            EngineConfig::default().with_seed(11).with_cache_capacity(32).with_threads(1),
        ))
    };

    // --- server hardening counters ----------------------------------------
    let mut hardened = serve(
        engine(),
        ServerConfig {
            workers: 2,
            max_line_len: 64,
            idle_timeout: Duration::from_millis(150),
            max_connections: 1,
            ..ServerConfig::default()
        },
    )
    .expect("hardened server");

    // the connection cap: one held connection, then a second that must be
    // shed with `ERR too many connections`
    let base = registry.counter("serve.rejected_conn_limit.count").get();
    let held = TcpStream::connect(hardened.addr()).expect("held connection");
    let mut rejections = 0;
    while rejections == 0 {
        let shed = TcpStream::connect(hardened.addr()).expect("shed connection");
        let mut line = String::new();
        // the held connection races its way from the accept queue to a
        // worker; until it counts as active, extra connections are admitted
        // (and closed unanswered when dropped) rather than shed
        if BufReader::new(shed).read_line(&mut line).unwrap_or(0) > 0 {
            assert_eq!(line.trim_end(), "ERR too many connections");
            rejections += 1;
        }
    }
    assert!(await_counter("serve.rejected_conn_limit.count", base + 1) > base);
    drop(held);

    // an overlong request line: rejected, counted, connection closed (the
    // dropped held connection releases its slot asynchronously, so a few
    // early attempts may still be shed by the cap — retry those)
    let base = registry.counter("serve.rejected_overlong.count").get();
    let response = loop {
        let mut stream = TcpStream::connect(hardened.addr()).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
        stream.write_all(&[b'A'; 200]).expect("send overlong");
        stream.write_all(b"\n").expect("send newline");
        let mut response = String::new();
        BufReader::new(stream).read_line(&mut response).expect("read rejection");
        if response.trim_end() != "ERR too many connections" {
            break response;
        }
        std::thread::sleep(Duration::from_millis(5));
    };
    assert_eq!(response.trim_end(), "ERR request too long (over 64 bytes)");
    assert!(await_counter("serve.rejected_overlong.count", base + 1) > base);

    // an idle connection: reaped by the read timeout, counted, EOF for us
    // (a shed connection is told `ERR too many connections` first; an
    // admitted-then-reaped one sees EOF with no bytes at all)
    let base = registry.counter("serve.idle_closed.count").get();
    loop {
        let idle = TcpStream::connect(hardened.addr()).expect("idle connection");
        idle.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
        let mut buf = [0u8; 64];
        if (&idle).read(&mut buf).expect("read on idle connection") == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(await_counter("serve.idle_closed.count", base + 1) > base);
    hardened.shutdown();

    // --- client retry-layer counters ---------------------------------------
    // a dead endpoint (bound then dropped: connections are refused) first in
    // the list, a live replica second: the first request must retry, fail
    // over, and trip the dead endpoint's breaker — one event on each counter
    let dead = {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        listener.local_addr().expect("addr")
    };
    let mut live = serve(engine(), ServerConfig::default()).expect("live server");
    let (retries, failovers, trips) = (
        registry.counter("client.retries.count").get(),
        registry.counter("client.failovers.count").get(),
        registry.counter("client.breaker_open.count").get(),
    );
    let mut client = FailoverClient::new(
        vec![dead, live.addr()],
        FailoverConfig {
            client: ClientConfig {
                max_retries: 4,
                backoff: BackoffConfig {
                    base: Duration::from_millis(1),
                    max: Duration::from_millis(10),
                    ..Default::default()
                },
                ..Default::default()
            }
            .with_seed(23),
            breaker: BreakerConfig { trip_after: 1, cooldown: Duration::from_secs(60) },
        },
    );
    let score = client.score(0, 0, 1).expect("the live replica must answer");
    assert!(score.is_finite());
    assert!(registry.counter("client.retries.count").get() > retries);
    assert!(registry.counter("client.failovers.count").get() > failovers);
    assert!(registry.counter("client.breaker_open.count").get() > trips);
    assert!(registry.counter("client.requests.count").get() >= 1);

    // everything above is one registry dump away
    let dump = registry.to_json();
    for name in [
        "serve.rejected_overlong.count",
        "serve.idle_closed.count",
        "serve.rejected_conn_limit.count",
        "client.retries.count",
        "client.failovers.count",
        "client.breaker_open.count",
    ] {
        assert!(dump.contains(&format!("\"{name}\"")), "dump lost {name}");
    }
    live.shutdown();
}
