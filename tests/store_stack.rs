//! The out-of-core stack end to end, through the facade crate: stream a
//! synthetic world straight to disk, train on it with streaming minibatches,
//! package params + graph as a bundle directory, and serve it from a
//! store-backed engine — with store-backed scores pinned bit-identical to
//! the in-memory engine the whole way.

use rmpi::core::{train_streaming, RmpiConfig, RmpiModel, TrainConfig};
use rmpi::datasets::world::GraphGenConfig;
use rmpi::datasets::{StreamingWorld, World, WorldConfig};
use rmpi::kg::{KnowledgeGraph, Triple};
use rmpi::serve::{load_bundle_dir, save_bundle_dir, Engine, EngineConfig};
use rmpi::store::{build_from_sorted, ReadMode, StoreConfig, StoreReader};
use std::path::PathBuf;
use std::sync::Arc;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rmpi-store-stack-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn generate_train_bundle_and_serve_from_disk() {
    let root = scratch("e2e");
    let store_dir = root.join("world.store");

    // Stream-generate a chunked world to sorted segments: at no point does
    // the full triple set exist in memory.
    let world = World::new(WorldConfig::default());
    let active: Vec<usize> = (0..world.groups().len()).collect();
    let gen = GraphGenConfig {
        num_entities: 600,
        num_base_triples: 1800,
        max_triples: 7200,
        seed: 11,
        ..Default::default()
    };
    let sw = StreamingWorld::new(&world, &active, gen, 200);
    let summary = build_from_sorted(
        &store_dir,
        StoreConfig { seg_records: 512, ..StoreConfig::default() },
        sw.iter(),
    )
    .unwrap();
    assert!(summary.num_triples > 100, "world too small to exercise anything");

    // Train with streaming minibatches against the store.
    let reader = StoreReader::open(&store_dir, ReadMode::Stream { cache_blocks: 16 }).unwrap();
    let mut valid = Vec::new();
    for i in (0..summary.num_triples as u64).step_by(37).take(24) {
        valid.push(reader.triple_at(i).unwrap());
    }
    let mut model =
        RmpiModel::new(RmpiConfig { dim: 8, ..RmpiConfig::base() }, reader.num_relations(), 3);
    let cfg = TrainConfig {
        epochs: 2,
        batch_size: 8,
        max_samples_per_epoch: 32,
        max_valid_samples: 24,
        seed: 5,
        threads: 2,
        ..Default::default()
    };
    let report = train_streaming(&mut model, &reader, &valid, &cfg);
    assert_eq!(report.epoch_losses.len(), 2);
    assert!(report.epoch_losses.iter().all(|l| l.is_finite()));

    // Package the trained params together with the graph it was trained on.
    let bdir = root.join("model.bundled");
    save_bundle_dir(&bdir, &model, &[], Some(&store_dir)).unwrap();
    let (bundle, graph_reader) = load_bundle_dir(&bdir, ReadMode::Resident).unwrap();
    let graph_reader = graph_reader.expect("bundle dir must carry the graph");
    assert_eq!(graph_reader.num_triples(), summary.num_triples);

    // Serve from the bundle's own graph — and pin bit-identity against an
    // in-memory engine over the same triples.
    let mut triples = Vec::new();
    graph_reader.for_each_triple(|t| triples.push(t)).unwrap();
    let ecfg = EngineConfig { seed: 9, cache_capacity: 64, threads: 1 };
    let store_engine = Engine::with_store(bundle.model.clone(), Arc::new(graph_reader), ecfg);
    let mem_engine = Engine::new(bundle.model, KnowledgeGraph::from_triples(triples), ecfg);

    let targets: Vec<Triple> = valid.iter().copied().take(8).collect();
    let from_store = store_engine.score_batch(&targets).unwrap();
    let from_memory = mem_engine.score_batch(&targets).unwrap();
    assert_eq!(from_store, from_memory, "store-backed serving must be bit-identical");

    std::fs::remove_dir_all(&root).unwrap();
}
