//! Cross-crate integration: every model trains end-to-end on a generated
//! benchmark and learns something (beats chance on held-out validation).

use rmpi::baselines::common::BaselineConfig;
use rmpi::baselines::{CompileModel, GrailModel, MakerLiteModel, TactBaseModel, TactModel};
use rmpi::core::{train_model, RmpiConfig, RmpiModel, ScoringModel, TrainConfig};
use rmpi::datasets::{build_benchmark, Benchmark, Scale};

fn benchmark() -> Benchmark {
    build_benchmark("nell.v1", Scale::Quick)
}

fn train_epochs<M: ScoringModel + Sync>(
    model: &mut M,
    b: &Benchmark,
    seed: u64,
    epochs: usize,
) -> f32 {
    let cfg = TrainConfig {
        epochs,
        max_samples_per_epoch: 250,
        max_valid_samples: 60,
        patience: 0,
        seed,
        ..Default::default()
    };
    let report = train_model(model, &b.train.graph, &b.train.targets, &b.train.valid, &cfg);
    report.best_accuracy()
}

fn quick_train<M: ScoringModel + Sync>(model: &mut M, b: &Benchmark, seed: u64) -> f32 {
    train_epochs(model, b, seed, 2)
}

#[test]
fn rmpi_variants_learn_above_chance() {
    let b = benchmark();
    for cfg in [
        RmpiConfig { dim: 12, ..RmpiConfig::base() },
        RmpiConfig { dim: 12, ..RmpiConfig::ne() },
        RmpiConfig { dim: 12, ..RmpiConfig::ta() },
        RmpiConfig { dim: 12, ..RmpiConfig::ne_ta() },
    ] {
        let mut model = RmpiModel::new(cfg, b.num_relations(), 1);
        let acc = quick_train(&mut model, &b, 1);
        assert!(acc > 0.55, "{} validation accuracy {acc} not above chance", model.name());
    }
}

#[test]
fn grail_learns_above_chance() {
    let b = benchmark();
    let mut model =
        GrailModel::new(BaselineConfig { dim: 12, ..Default::default() }, b.num_relations(), 2);
    // GraIL's loss falls more slowly than the other baselines on this quick
    // benchmark; give it one extra epoch to clear the above-chance bar.
    let acc = train_epochs(&mut model, &b, 2, 3);
    assert!(acc > 0.55, "GraIL validation accuracy {acc}");
}

#[test]
fn tact_models_learn_above_chance() {
    let b = benchmark();
    let mut base = TactBaseModel::new(12, 2, b.num_relations(), 3);
    let acc = quick_train(&mut base, &b, 3);
    assert!(acc > 0.55, "TACT-base validation accuracy {acc}");

    let mut full =
        TactModel::new(BaselineConfig { dim: 12, ..Default::default() }, b.num_relations(), 3);
    let acc = quick_train(&mut full, &b, 3);
    assert!(acc > 0.55, "TACT validation accuracy {acc}");
}

#[test]
fn compile_and_maker_learn_above_chance() {
    let b = benchmark();
    let mut compile =
        CompileModel::new(BaselineConfig { dim: 12, ..Default::default() }, b.num_relations(), 4);
    let acc = quick_train(&mut compile, &b, 4);
    assert!(acc > 0.55, "CoMPILE validation accuracy {acc}");

    let mut maker = MakerLiteModel::new(
        BaselineConfig { dim: 12, ..Default::default() },
        b.num_relations(),
        b.seen_relations.clone(),
        4,
    );
    let acc = quick_train(&mut maker, &b, 4);
    assert!(acc > 0.55, "MaKEr validation accuracy {acc}");
}

#[test]
fn trained_model_beats_untrained_on_test_graph() {
    use rmpi::eval::protocol::{evaluate, EvalConfig};
    let b = benchmark();
    let cfg = RmpiConfig { dim: 12, ..RmpiConfig::base() };
    let untrained = RmpiModel::new(cfg, b.num_relations(), 5);
    let mut trained = RmpiModel::new(cfg, b.num_relations(), 5);
    quick_train(&mut trained, &b, 5);

    let ec = EvalConfig { num_candidates: 15, max_targets: 60, seed: 9, ..Default::default() };
    let test = b.test("TE").unwrap();
    let m_untrained = evaluate(&untrained, test, &ec);
    let m_trained = evaluate(&trained, test, &ec);
    assert!(
        m_trained.mrr > m_untrained.mrr,
        "training should improve test MRR: {} vs {}",
        m_trained.mrr,
        m_untrained.mrr
    );
}
