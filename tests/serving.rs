//! The serving layer through the facade crate: bundle round trip in memory,
//! engine parity with offline scoring, and one TCP query — the downstream
//! user's view of `rmpi::serve`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rmpi::core::{RmpiConfig, RmpiModel, ScoringModel};
use rmpi::kg::{KnowledgeGraph, Triple};
use rmpi::serve::{load_bundle, save_bundle, serve, Engine, EngineConfig, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

fn small_graph() -> KnowledgeGraph {
    KnowledgeGraph::from_triples(vec![
        Triple::new(0u32, 0u32, 1u32),
        Triple::new(1u32, 1u32, 2u32),
        Triple::new(2u32, 2u32, 3u32),
        Triple::new(0u32, 3u32, 3u32),
    ])
}

#[test]
fn bundle_engine_and_server_through_facade() {
    let model = RmpiModel::new(RmpiConfig { dim: 8, ..Default::default() }, 5, 2);
    let names: Vec<String> = (0..5).map(|r| format!("r{r}")).collect();

    // bundle round trip in memory
    let mut buf = Vec::new();
    save_bundle(&mut buf, &model, &names).unwrap();
    let bundle = load_bundle(std::io::Cursor::new(buf)).unwrap();
    assert_eq!(bundle.relation_names, names);

    // engine parity with offline scoring
    let graph = small_graph();
    let target = Triple::new(0u32, 2u32, 2u32);
    let offline = model.score(&graph, target, &mut StdRng::seed_from_u64(4));
    let engine = Arc::new(Engine::new(
        bundle.model,
        graph,
        EngineConfig { seed: 4, cache_capacity: 16, threads: 1 },
    ));
    assert_eq!(engine.score(target).unwrap(), offline);

    // one query over the wire
    let mut server = serve(Arc::clone(&engine), ServerConfig::default()).unwrap();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    writeln!(stream, "SCORE 0 2 2").unwrap();
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line).unwrap();
    let wire: f32 = line.trim_end().strip_prefix("OK ").unwrap().parse().unwrap();
    assert_eq!(wire, offline, "wire score must equal offline score");
    server.shutdown();
}
