//! The `rmpi` facade crate re-exports every workspace layer; exercise the
//! public paths a downstream user touches first, including model
//! checkpointing through the facade.

use rmpi::autograd::{load_params, save_params, ParamStore, Tape, Tensor};
use rmpi::kg::{KnowledgeGraph, Triple};
use rmpi::schema::{SchemaBuilder, TransEConfig, TransEModel};

#[test]
fn facade_exposes_all_layers() {
    // kg
    let g = KnowledgeGraph::from_triples(vec![Triple::new(0u32, 0u32, 1u32)]);
    assert_eq!(g.num_triples(), 1);
    // autograd
    let mut tape = Tape::new();
    let a = tape.constant(Tensor::vector(vec![1.0, 2.0]));
    let s = tape.sum(a);
    assert_eq!(tape.value(s).item(), 3.0);
    // subgraph
    let sg = rmpi::subgraph::enclosing_subgraph(&g, Triple::new(0u32, 1u32, 1u32), 2);
    assert!(sg.entities.len() >= 2);
    // schema
    let schema = SchemaBuilder::new(1, 1).build();
    let model =
        TransEModel::train(&schema, TransEConfig { dim: 4, epochs: 1, ..Default::default() });
    assert_eq!(model.dim(), 4);
    // datasets
    assert!(rmpi::datasets::registry_names().contains(&"nell.v1"));
    // eval
    assert_eq!(rmpi::eval::hits_at(&[1, 20], 10), 0.5);
}

#[test]
fn checkpoint_roundtrip_through_facade() {
    let mut store = ParamStore::new();
    store.create("layer", Tensor::matrix(2, 2, vec![1.0, -2.0, 3.5, 0.25]));
    let mut buf = Vec::new();
    save_params(&mut buf, &store).unwrap();
    let loaded = load_params(std::io::Cursor::new(buf)).unwrap();
    let id = loaded.get("layer").unwrap();
    assert_eq!(loaded.value(id).data(), &[1.0, -2.0, 3.5, 0.25]);
}

#[test]
fn trained_model_checkpoint_restores_scores() {
    use rand::SeedableRng;
    use rmpi::core::{RmpiConfig, RmpiModel, ScoringModel};
    let g = KnowledgeGraph::from_triples(vec![
        Triple::new(0u32, 0u32, 1u32),
        Triple::new(1u32, 1u32, 2u32),
        Triple::new(0u32, 2u32, 2u32),
    ]);
    let model = RmpiModel::new(RmpiConfig { dim: 8, ..Default::default() }, 4, 3);
    let target = Triple::new(0u32, 3u32, 2u32);
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let before = model.score(&g, target, &mut rng);

    // snapshot, rebuild a fresh model with a different seed, restore weights
    let mut buf = Vec::new();
    save_params(&mut buf, model.param_store()).unwrap();
    let mut other = RmpiModel::new(RmpiConfig { dim: 8, ..Default::default() }, 4, 99);
    let restored = load_params(std::io::Cursor::new(buf)).unwrap();
    *other.param_store_mut() = restored;
    let after = other.score(&g, target, &mut rng);
    assert_eq!(before, after, "checkpoint restore must reproduce scores exactly");
}
