//! Cross-crate persistence: benchmarks round-trip through the TSV directory
//! format, and a model trained on the original data behaves identically on
//! the reloaded data.

use rand::SeedableRng;
use rmpi::core::{RmpiConfig, RmpiModel, ScoringModel};
use rmpi::datasets::io::{load_benchmark, save_benchmark};
use rmpi::datasets::{build_benchmark, Scale};

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("rmpi-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn saved_benchmark_supports_identical_scoring() {
    let b = build_benchmark("nell.v1", Scale::Quick);
    let dir = tmpdir("score");
    save_benchmark(&dir, &b).unwrap();
    let loaded = load_benchmark(&dir).unwrap();

    let model = RmpiModel::new(RmpiConfig { dim: 8, ..Default::default() }, b.num_relations(), 0);
    let orig_test = b.test("TE").unwrap();
    let load_test = loaded.test("TE").unwrap();
    for (&a, &bt) in orig_test.targets.iter().zip(&load_test.targets).take(8) {
        assert_eq!(a, bt, "target triples must round-trip exactly");
        // fresh identically-seeded rngs: the only stochastic element in eval
        // mode is the subgraph size-cap sampling, which must then agree too
        let s1 = model.score(&orig_test.graph, a, &mut rand::rngs::StdRng::seed_from_u64(3));
        let s2 = model.score(&load_test.graph, bt, &mut rand::rngs::StdRng::seed_from_u64(3));
        assert_eq!(s1, s2, "scores on original vs reloaded graph must agree");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn fully_inductive_metadata_survives() {
    let b = build_benchmark("nell.v1.v3", Scale::Quick);
    let dir = tmpdir("meta");
    save_benchmark(&dir, &b).unwrap();
    let loaded = load_benchmark(&dir).unwrap();
    assert_eq!(loaded.seen_relations, b.seen_relations);
    assert!(loaded.test("TE(semi)").is_some());
    assert!(loaded.test("TE(fully)").is_some());
    // the unseen-only property of TE(fully) survives the round trip
    for t in &loaded.test("TE(fully)").unwrap().targets {
        assert!(!loaded.seen_relations.contains(&t.relation));
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
