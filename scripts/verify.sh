#!/usr/bin/env bash
# Release build + tier-1 test suite + thread-count determinism check.
#
# Usage: scripts/verify.sh
# Run from the repository root (or anywhere inside it).

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo clippy --workspace -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q (tier-1: root package) =="
cargo test -q

echo "== determinism: threads=1 vs threads=4 vs threads=0 =="
cargo test -q -p rmpi-core --test parallel_determinism

echo "== extraction equivalence: CSR + dense-scratch path vs reference (proptest) =="
cargo test -q -p rmpi-subgraph --test proptests

echo "== zero-allocation steady state: counting allocator over warm extraction =="
cargo test -q -p rmpi-subgraph --test zero_alloc

echo "== kernel micro-bench smoke: matmuls, reductions, scratch backward (10 ms window) =="
RMPI_BENCH_MS=10 cargo bench -q -p rmpi-bench --bench bench_kernels >/dev/null

echo "== store: tiny on-disk world, extraction equivalence (proptest), corruption rejection =="
cargo test -q -p rmpi-store
cargo test -q -p rmpi-core stream::
cargo test -q --test store_stack

echo "== store bench smoke: build + seek + scan + extract on a tiny world (10 ms scale) =="
SCRUB_DIR="$(mktemp -d)/world.store"
cargo run --release -q -p rmpi-bench --bin bench_store -- --smoke --dir "$SCRUB_DIR" >/dev/null

echo "== scrub smoke: integrity pass over the store the bench just built =="
cargo run --release -q -p rmpi-bench --bin rmpi_scrub -- "$SCRUB_DIR" >/dev/null
rm -rf "$(dirname "$SCRUB_DIR")"

echo "== worker pool unit tests =="
cargo test -q -p rmpi-runtime

echo "== serving layer: bundle + engine + protocol + micro-batcher unit tests =="
cargo test -q -p rmpi-serve --lib

echo "== serve smoke test: ephemeral-port server, scripted query batch, offline parity =="
cargo test -q -p rmpi-serve --test serving

echo "== fault suite: divergence guards, worker panics, checkpoint write failures =="
cargo test -q -p rmpi-core --test fault_injection

echo "== crash-resume suite: kill mid-epoch, resume, bit-identical at every thread count =="
cargo test -q -p rmpi-core --test crash_resume

echo "== serve fault suite: hot reload atomicity, panic isolation, byte-offset diagnostics =="
cargo test -q -p rmpi-serve --test faults

echo "== bundle durability: single-bit flips never serve silently wrong scores (proptest) =="
cargo test -q -p rmpi-serve --test bitflip

echo "== protocol fuzz: garbage, binary, overlong lines, interleaved v1/v2 tagged pipelining =="
cargo test -q -p rmpi-serve --test fuzz_protocol

echo "== resilient client unit tests: sessions, retry classification, backoff, budget, breaker =="
cargo test -q -p rmpi-client --lib

echo "== chaos soak: faulty replicas, pipelined sessions, mid-pipeline cuts, zero wrong scores =="
cargo test -q -p rmpi-client --test soak

echo "== edge load smoke: oneshot vs session vs pipelined, micro-batcher coalescing evidence =="
cargo run --release -q -p rmpi-bench --bin bench_load -- --smoke >/dev/null

echo "== observability: instrumented train + serve + resilience counters, present and nonzero =="
cargo test -q --test observability

echo "== crash-recovery smoke: train -> SIGKILL mid-epoch -> resume -> metrics bit-identical =="
cargo run --release -q -p rmpi-bench --bin bench_resume

echo "== chaos smoke: availability under injected faults, failover to a healthy standby =="
cargo run --release -q -p rmpi-bench --bin bench_chaos -- --requests 30 --rates 0.0,0.25

echo "== disk-fault smoke: retried transients, checksum-caught bit flips, degraded mode =="
cargo run --release -q -p rmpi-bench --bin bench_diskfault -- --smoke >/dev/null

echo "== router chaos: shard kill mid-rank -> bit-identical partial top-k, hedging, fail policy =="
cargo test -q -p rmpi-router

echo "== router smoke: availability + rank coverage vs single-shard fault rate, standby rescue =="
cargo run --release -q -p rmpi-bench --bin bench_router -- --smoke

echo "verify.sh: all checks passed"
