#!/usr/bin/env bash
# Release build + tier-1 test suite + thread-count determinism check.
#
# Usage: scripts/verify.sh
# Run from the repository root (or anywhere inside it).

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q (tier-1: root package) =="
cargo test -q

echo "== determinism: threads=1 vs threads=4 vs threads=0 =="
cargo test -q -p rmpi-core --test parallel_determinism

echo "== worker pool unit tests =="
cargo test -q -p rmpi-runtime

echo "== serving layer: bundle + engine + protocol unit tests =="
cargo test -q -p rmpi-serve --lib

echo "== serve smoke test: ephemeral-port server, scripted query batch, offline parity =="
cargo test -q -p rmpi-serve --test serving

echo "verify.sh: all checks passed"
