//! Offline drop-in subset of the `criterion` API.
//!
//! The build environment has no network access, so this workspace vendors
//! the slice of criterion the benches use: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] with [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`black_box`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Measurement is a simple calibrated wall-clock
//! loop reporting mean ns/iter — no statistics, plots or HTML reports — which
//! is enough to compare kernels and thread counts across PRs.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimiser from deleting benched code.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one parameterised benchmark case.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { name: format!("{}/{}", function_name.into(), parameter) }
    }

    /// `parameter`-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { name: parameter.to_string() }
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    measured: Option<MeasuredRun>,
    measurement_time: Duration,
}

struct MeasuredRun {
    iters: u64,
    total: Duration,
}

impl Bencher {
    /// Measure `routine`, first calibrating an iteration count that fills
    /// the group's measurement window.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // warmup + calibration: find how many iterations fit the window
        let probe_start = Instant::now();
        black_box(routine());
        let one = probe_start.elapsed().max(Duration::from_nanos(1));
        let target = self.measurement_time;
        let iters = (target.as_nanos() / one.as_nanos()).clamp(1, 1_000_000) as u64;

        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.measured = Some(MeasuredRun { iters, total: start.elapsed() });
    }
}

fn report(name: &str, run: &MeasuredRun) {
    let ns = run.total.as_nanos() as f64 / run.iters.max(1) as f64;
    let (value, unit) = if ns >= 1e9 {
        (ns / 1e9, "s")
    } else if ns >= 1e6 {
        (ns / 1e6, "ms")
    } else if ns >= 1e3 {
        (ns / 1e3, "µs")
    } else {
        (ns, "ns")
    };
    println!("{name:<48} time: {value:>10.3} {unit}/iter  ({} iters)", run.iters);
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, measurement_time: Duration, mut f: F) {
    let mut b = Bencher { measured: None, measurement_time };
    f(&mut b);
    match &b.measured {
        Some(run) => report(name, run),
        None => println!("{name:<48} (no measurement recorded)"),
    }
}

/// A named set of related benchmark cases.
pub struct BenchmarkGroup<'a> {
    name: String,
    measurement_time: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Lower the per-case measurement window (upstream tunes sample counts;
    /// here fewer samples simply means a shorter window).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        let n = n.clamp(10, 1000) as u64;
        self.measurement_time = Duration::from_millis(10 * n);
        self
    }

    /// Explicit measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmark `routine` against one `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.name);
        run_one(&label, self.measurement_time, |b| routine(b, input));
        self
    }

    /// Benchmark an input-free routine inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: BenchmarkId,
        routine: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.name);
        run_one(&label, self.measurement_time, routine);
        self
    }

    /// End the group (upstream finalises reports here; a no-op offline).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, routine: F) -> &mut Self {
        run_one(name, default_measurement_time(), routine);
        self
    }

    /// Open a named group of cases.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            measurement_time: default_measurement_time(),
            _parent: self,
        }
    }
}

fn default_measurement_time() -> Duration {
    // keep `cargo bench` for the whole workspace in the minutes range;
    // RMPI_BENCH_MS overrides the per-case window
    let ms = std::env::var("RMPI_BENCH_MS").ok().and_then(|v| v.parse().ok()).unwrap_or(300);
    Duration::from_millis(ms)
}

/// Collect benchmark functions into a runner (mirrors upstream's macro).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups (mirrors upstream's macro).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_reports() {
        std::env::set_var("RMPI_BENCH_MS", "5");
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("group");
        g.sample_size(10);
        g.measurement_time(Duration::from_millis(5));
        g.bench_with_input(BenchmarkId::new("case", 4), &4usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>())
        });
        g.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).name, "f/8");
        assert_eq!(BenchmarkId::from_parameter("x").name, "x");
    }
}
