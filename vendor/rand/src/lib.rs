//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no network access, so this workspace vendors
//! the slice of `rand` it actually uses: the [`Rng`] / [`RngCore`] /
//! [`SeedableRng`] traits, [`rngs::StdRng`] / [`rngs::SmallRng`] backed by a
//! deterministic xoshiro256++ engine, and [`seq::SliceRandom`]
//! (`shuffle` / `choose`). Streams are fully deterministic for a given seed,
//! which is all the reproduction needs — no claim of bit-compatibility with
//! upstream `rand` generators is made.

/// Low-level uniform bit generation.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high-entropy bits -> uniform in [0, 1)
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // 128-bit multiply-shift keeps the modulo bias negligible
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range on empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (start as i128 + hi) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
float_range!(f32, f64);

/// The user-facing random value interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform value in `range`.
    fn gen_range<T, B: SampleRange<T>>(&mut self, range: B) -> T {
        range.sample_one(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} outside [0,1]");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of seeded generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Build from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64` seed (splitmix64-expanded).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut sm).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for `rand`'s StdRng).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }

        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                *word = u64::from_le_bytes(seed[i * 8..(i + 1) * 8].try_into().unwrap());
            }
            // xoshiro must not start from the all-zero state
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 0xBF58_476D_1CE4_E5B9, 0x94D0_49BB_1331_11EB, 1];
            }
            StdRng { s }
        }
    }

    /// Alias of [`StdRng`] (one engine serves both roles offline).
    pub type SmallRng = StdRng;
}

/// Random sequence operations (subset of `rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling and selection.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// `rand::prelude` subset.
pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0f64;
        for _ in 0..10_000 {
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x as f64;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "uniform mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
        }
        // all values of a small range are reachable
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "gen_bool(0.25) hits {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes_and_choose_selects() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(v, orig, "shuffle of 50 elements should move something");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
        assert!(orig.contains(v.choose(&mut rng).unwrap()));
        let empty: Vec<u32> = Vec::new();
        assert!(empty.choose(&mut rng).is_none());
    }
}
