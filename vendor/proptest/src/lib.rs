//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no network access, so this workspace vendors a
//! minimal property-testing engine covering exactly what the test suites
//! use: the [`proptest!`] / [`prop_assert!`] family, [`Strategy`] with
//! `prop_map`, integer/float range strategies, tuple strategies,
//! [`collection::vec`], simple `"[a-z]{1,8}"`-style string patterns and
//! [`arbitrary::any`]. Cases are generated deterministically (seeded from
//! the test name); there is no shrinking — a failing case reports its inputs
//! and case number instead.

use rand::rngs::StdRng;
use rand::Rng;

#[doc(hidden)]
pub use rand as __rand;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// A failed property (carries the rendered assertion message).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Build a failure from a rendered message.
    pub fn fail(msg: String) -> Self {
        TestCaseError(msg)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Runner configuration (subset of proptest's `ProptestConfig`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // upstream defaults to 256; 64 keeps the graph-heavy suites quick
        // while still exercising plenty of structure
        ProptestConfig { cases: 64 }
    }
}

/// A value generator. Unlike upstream there is no value tree / shrinking —
/// `generate` directly produces one value.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// [`Strategy::prop_map`] adaptor.
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! numeric_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
numeric_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10, L.11)
}

/// Strings from a `"[chars]{min,max}"` pattern (the only regex shape the
/// suites use). `chars` supports literal characters and `a-z` ranges.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, min, max) = parse_pattern(self).unwrap_or_else(|| {
            panic!("unsupported string pattern {self:?} (expected \"[chars]{{m,n}}\")")
        });
        let len = rng.gen_range(min..max + 1);
        (0..len).map(|_| alphabet[rng.gen_range(0..alphabet.len())]).collect()
    }
}

fn parse_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let (class, rest) = rest.split_once(']')?;
    let counts = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (min, max) = counts.split_once(',')?;
    let (min, max) = (min.trim().parse().ok()?, max.trim().parse().ok()?);
    if min > max {
        return None;
    }
    let mut alphabet = Vec::new();
    let mut chars = class.chars().peekable();
    while let Some(c) = chars.next() {
        if chars.peek() == Some(&'-') {
            chars.next();
            let hi = chars.next()?;
            if c > hi {
                return None;
            }
            alphabet.extend(c..=hi);
        } else {
            alphabet.push(c);
        }
    }
    if alphabet.is_empty() {
        return None;
    }
    Some((alphabet, min, max))
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Length specification for [`vec`]: an exact `usize`, a half-open
    /// `Range<usize>` or an inclusive `RangeInclusive<usize>`.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max_inclusive: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange { min: r.start, max_inclusive: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec length range");
            SizeRange { min: *r.start(), max_inclusive: *r.end() }
        }
    }

    /// `Vec`s of `elem` with length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    /// Strategy returned by [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..=self.size.max_inclusive);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generate one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_via_gen {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.gen()
                }
            }
        )*};
    }
    arb_via_gen!(bool, u32, u64, usize, f32, f64);

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(core::marker::PhantomData)
    }

    /// Strategy returned by [`any`].
    #[derive(Clone, Copy, Debug)]
    pub struct AnyStrategy<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Mirror of upstream's `proptest::prop` namespace re-export.
pub mod prop {
    pub use super::arbitrary;
    pub use super::collection;
}

/// Deterministic per-test seed: FNV-1a of the test's name.
pub fn seed_for(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Everything the test suites import.
pub mod prelude {
    pub use super::arbitrary::any;
    pub use super::prop;
    pub use super::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use super::{Just, ProptestConfig, Strategy, TestCaseError};
}

/// Assert a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Assert inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, $($fmt)*);
    }};
}

/// Define property tests. Each body runs for `config.cases` deterministic
/// cases; a `prop_assert*` failure reports the case number and seed.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let seed = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let mut rng = <$crate::TestRng as $crate::__rand::SeedableRng>::seed_from_u64(
                        seed.wrapping_add(case as u64),
                    );
                    let ($($pat,)*) = ($($crate::Strategy::generate(&($strat), &mut rng),)*);
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!(
                            "property {} failed at case {case}/{} (seed {seed}): {e}",
                            stringify!($name),
                            config.cases,
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use rand::SeedableRng;

    #[test]
    fn string_pattern_parses() {
        let mut rng = crate::TestRng::seed_from_u64(0);
        for _ in 0..100 {
            let s = Strategy::generate(&"[a-z]{1,8}", &mut rng);
            assert!((1..=8).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_and_tuples((a, b) in (0u32..10, -2.0f32..2.0), v in prop::collection::vec(0usize..5, 1..20)) {
            prop_assert!(a < 10);
            prop_assert!((-2.0..2.0).contains(&b));
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn map_and_any(x in (0u32..100).prop_map(|v| v * 2), flag in any::<bool>()) {
            prop_assert!(x % 2 == 0);
            prop_assert!(usize::from(flag) <= 1);
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failures_report_case() {
        proptest! {
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
